"""Minimal asyncio HTTP/1.1 transport for the reliability service.

Hand-rolled on ``asyncio.start_server`` — stdlib only, no framework —
because the API surface is small and fully JSON:

========  ==============================  =======================================
method    path                            answer
========  ==============================  =======================================
GET       /healthz                        liveness (also 503 while draining)
GET       /metrics                        service metrics snapshot
POST      /v1/fleets                      register a fleet (JSON body)
GET       /v1/fleets                      list fleets (``?tenant=`` to scope)
GET       /v1/fleets/{ref}/q1             Q1 spare provisioning
GET       /v1/fleets/{ref}/q2             Q2 SKU ranking
GET       /v1/fleets/{ref}/q3             Q3 operating ranges
GET       /v1/fleets/{ref}/predict        online failure-prediction evaluation
GET       /v1/fleets/{ref}/autonomics     closed-loop policy shootout
GET       /v1/fleets/{ref}/events         event-trace window (offset/limit)
========  ==============================  =======================================

Query parameters map 1:1 onto the query-kind knobs (see
:mod:`repro.serve.queries`); the tenant rides in the ``X-Tenant``
header (or the registration body) and defaults to ``public``.

Errors are structured JSON — ``{"schema": 1, "error": {"code",
"message"}}`` — with conventional statuses: 400 malformed request,
404 unknown fleet/route, 405 wrong method, 413 oversized body,
422 invalid query parameters, 503 draining, 504 query timeout.

Graceful shutdown (:meth:`ServeApp.shutdown`) closes the listener,
lets in-flight requests finish (the service refuses new ones with
503 meanwhile), then stops the worker pool.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from ..errors import ConfigError, DataError, ReproError
from .service import QueryTimeout, ReliabilityService, ServiceUnavailable

#: Request bodies above this size are refused with 413.
MAX_BODY_BYTES = 64 * 1024
#: Ceiling on one request's header block.
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request-level failure carrying its HTTP status and code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def error_body(code: str, message: str) -> dict[str, Any]:
    """The structured error payload shape every failure uses."""
    return {"schema": 1, "error": {"code": code, "message": message}}


class Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, target: str,
                 headers: dict[str, str], body: bytes):
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = dict(parse_qsl(parts.query))
        self.headers = headers
        self.body = body

    @property
    def tenant(self) -> str | None:
        return self.headers.get("x-tenant")

    def json(self) -> dict[str, Any]:
        """The request body decoded as a JSON object."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as error:
            raise HttpError(400, "bad_json",
                            f"request body is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "bad_json",
                            "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream (None on clean EOF)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # connection closed between requests
        raise HttpError(400, "bad_request",
                        "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers_too_large",
                        "request head exceeds limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "headers_too_large",
                        "request head exceeds limit")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, "bad_request",
                        f"malformed request line {lines[0]!r}") from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "bad_request",
                            f"bad Content-Length {length!r}") from None
        if n > MAX_BODY_BYTES:
            raise HttpError(413, "body_too_large",
                            f"body of {n} bytes exceeds {MAX_BODY_BYTES}")
        if n:
            body = await reader.readexactly(n)
    return Request(method.upper(), target, headers, body)


def render_response(status: int, payload: dict[str, Any],
                    keep_alive: bool = True) -> bytes:
    """Serialize one JSON response with framing headers."""
    body = json.dumps(payload, sort_keys=True).encode()
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _int_param(query: dict[str, str], name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HttpError(422, "bad_parameter",
                        f"{name} must be an integer, got {raw!r}") from None


class ServeApp:
    """Routes HTTP requests onto a :class:`ReliabilityService`.

    Separate from the socket plumbing so tests can call
    :meth:`dispatch` with a synthetic :class:`Request` directly.
    """

    def __init__(self, service: ReliabilityService):
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}

    # -- routing ------------------------------------------------------

    async def dispatch(self, request: Request) -> tuple[int, dict[str, Any]]:
        """(status, payload) for one request."""
        try:
            return await self._route(request)
        except HttpError as error:
            return error.status, error_body(error.code, error.message)
        except ServiceUnavailable as error:
            return 503, error_body("draining", str(error))
        except QueryTimeout as error:
            return 504, error_body("timeout", str(error))
        except (DataError, ConfigError) as error:
            # Unknown fleets read as 404, bad parameters as 422.
            message = str(error)
            if message.startswith("unknown fleet"):
                return 404, error_body("unknown_fleet", message)
            return 422, error_body("invalid_request", message)
        except ReproError as error:
            return 500, error_body("internal", str(error))

    async def _route(self, request: Request) -> tuple[int, dict[str, Any]]:
        path, method = request.path, request.method
        if path == "/healthz":
            self._expect(method, "GET")
            if self.service.draining:
                return 503, error_body("draining", "service is draining")
            return 200, {"schema": 1, "status": "ok"}
        if path == "/metrics":
            self._expect(method, "GET")
            return 200, self.service.metrics_snapshot()
        if path == "/v1/fleets":
            if method == "POST":
                return await self._register(request)
            self._expect(method, "GET")
            tenant = request.query.get("tenant") or request.tenant
            return 200, dict(self.service.list_fleets(tenant), schema=1)
        if path.startswith("/v1/fleets/"):
            return await self._fleet_route(request)
        raise HttpError(404, "not_found", f"no route for {path}")

    async def _register(self, request: Request) -> tuple[int, dict]:
        body = request.json()
        tenant = request.tenant or str(body.pop("tenant", "") or "public")
        name = body.pop("name", None)
        if name is not None and not isinstance(name, str):
            raise HttpError(422, "bad_parameter", "fleet name must be a string")
        params = body.pop("params", body)
        if not isinstance(params, dict):
            raise HttpError(422, "bad_parameter",
                            "fleet params must be an object")
        result = self.service.register_fleet(params, tenant=tenant, name=name)
        return 200, dict(result, schema=1)

    async def _fleet_route(self, request: Request) -> tuple[int, dict]:
        tail = request.path[len("/v1/fleets/"):]
        fleet_ref, _, leaf = tail.partition("/")
        if not fleet_ref or not leaf or "/" in leaf:
            raise HttpError(404, "not_found",
                            f"no route for {request.path}")
        self._expect(request.method, "GET")
        tenant = request.tenant or "public"
        if leaf in ("q1", "q2", "q3", "predict", "autonomics"):
            payload = await self.service.query(
                fleet_ref, leaf, request.query, tenant=tenant,
            )
            return 200, dict(payload, schema=1)
        if leaf == "events":
            offset = _int_param(request.query, "offset", 0)
            limit = _int_param(request.query, "limit", 100)
            payload = await self.service.slice_events(
                fleet_ref, offset=offset, limit=limit, tenant=tenant,
            )
            return 200, dict(payload, schema=1)
        raise HttpError(404, "not_found",
                        f"unknown query {leaf!r}; "
                        "try q1, q2, q3, predict, autonomics or events")

    def _expect(self, method: str, allowed: str) -> None:
        if method != allowed:
            raise HttpError(405, "method_not_allowed",
                            f"use {allowed} for this endpoint")

    # -- connection plumbing ------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve requests on one connection until close/error."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(render_response(
                        error.status,
                        error_body(error.code, error.message),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self.dispatch(request)
                keep = (request.headers.get("connection", "")
                        .lower() != "close")
                writer.write(render_response(status, payload,
                                             keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _connection_entry(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
            task.add_done_callback(
                lambda done: self._connections.pop(done, None))
        await self.handle_connection(reader, writer)

    # -- lifecycle ----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._connection_entry, host=host, port=port,
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    @property
    def port(self) -> int | None:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self, drain_timeout_s: float = 30.0) -> int:
        """Stop accepting, drain in-flight queries, stop the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.service.begin_drain(drain_timeout_s)
        # Idle keep-alive connections would linger forever; closing the
        # transport hands their readers EOF so the handlers exit their
        # loops cleanly (in-flight queries already finished draining).
        for writer in list(self._connections.values()):
            writer.close()
        if self._connections:
            _, pending = await asyncio.wait(
                list(self._connections), timeout=5.0,
            )
            for task in pending:  # pragma: no cover - stuck handlers
                task.cancel()
        return drained

    async def serve_forever(self) -> None:
        """Block until the server is closed (cancelled externally)."""
        if self._server is None:
            raise ConfigError("call start() before serve_forever()")
        await self._server.serve_forever()
