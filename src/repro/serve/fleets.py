"""Per-tenant fleet registration with content-addressed fleet ids.

A *fleet* is one simulation scenario (seed, scale, observation window)
a tenant wants answers about.  Registration derives the fleet id from
the full config fingerprint (:func:`repro.cache.config_key`), so the
same scenario registered twice — by one tenant or by many — maps to one
id and therefore one set of artifacts in the shared store.  Tenants own
only their *names* for fleets; the artifacts themselves are shared,
which is exactly what makes the warm path multi-tenant-cheap.

The registry persists to ``<store-dir>/fleets.json`` (atomic
write-then-rename) so a restarted server — or a worker process in a
different interpreter — sees the same fleet table.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Mapping

from ..errors import ConfigError, DataError
from .ports import FleetSpec

REGISTRY_SCHEMA = 1

#: Tenant used when a request carries no tenant at all.
DEFAULT_TENANT = "public"

#: Registration knobs and their defaults; everything else is rejected
#: so typos fail loudly instead of silently keying a different fleet.
FLEET_PARAM_DEFAULTS: dict[str, Any] = {
    "seed": 0,
    "scale": 0.25,
    "days": 365,
}


def fleet_config(params: Mapping[str, Any]):
    """Build the :class:`~repro.config.SimulationConfig` for a fleet."""
    from ..config import SimulationConfig
    from ..datacenter.builder import FleetConfig

    return SimulationConfig(
        seed=int(params["seed"]),
        n_days=int(params["days"]),
        fleet=FleetConfig(scale=float(params["scale"]),
                          observation_days=int(params["days"])),
    )


def normalize_fleet_params(raw: Mapping[str, Any]) -> dict[str, Any]:
    """Validate raw registration knobs and fill defaults."""
    unknown = sorted(set(raw) - set(FLEET_PARAM_DEFAULTS))
    if unknown:
        raise DataError(
            f"unknown fleet parameter(s) {unknown}; "
            f"accepts {sorted(FLEET_PARAM_DEFAULTS)}"
        )
    params = dict(FLEET_PARAM_DEFAULTS)
    for name, value in raw.items():
        template = FLEET_PARAM_DEFAULTS[name]
        try:
            params[name] = (float(value) if isinstance(template, float)
                            else int(value))
        except (TypeError, ValueError):
            raise DataError(
                f"fleet parameter {name} must be a number, got {value!r}"
            ) from None
    if params["seed"] < 0:
        raise DataError(f"seed must be >= 0, got {params['seed']}")
    if not 0.0 < params["scale"] <= 4.0:
        raise DataError(f"scale must be in (0, 4], got {params['scale']}")
    if params["days"] < 1:
        raise DataError(f"days must be >= 1, got {params['days']}")
    return params


def fleet_spec(params: Mapping[str, Any]) -> FleetSpec:
    """Content-addressed :class:`FleetSpec` for normalized params."""
    from ..cache import config_key

    normalized = normalize_fleet_params(params)
    return FleetSpec(fleet_id=config_key(fleet_config(normalized)),
                     params=normalized)


class FleetRegistry:
    """Named, per-tenant fleet table over content-addressed specs.

    Args:
        path: JSON file to persist to, or None for an in-memory
            registry (tests, embedded use).
    """

    def __init__(self, path: str | pathlib.Path | None = None):
        self.path = pathlib.Path(path) if path is not None else None
        #: fleet_id -> FleetSpec
        self._fleets: dict[str, FleetSpec] = {}
        #: tenant -> name -> fleet_id
        self._names: dict[str, dict[str, str]] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence --------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError) as error:
            raise DataError(
                f"fleet registry {self.path} is corrupt: {error}"
            ) from error
        if payload.get("schema") != REGISTRY_SCHEMA:
            raise DataError(
                f"fleet registry {self.path}: schema "
                f"{payload.get('schema')!r} != {REGISTRY_SCHEMA}"
            )
        for fleet_id, params in payload.get("fleets", {}).items():
            self._fleets[fleet_id] = FleetSpec(fleet_id=fleet_id,
                                               params=dict(params))
        for tenant, names in payload.get("tenants", {}).items():
            self._names[tenant] = dict(names)

    def _save(self) -> None:
        if self.path is None:
            return
        payload = {
            "schema": REGISTRY_SCHEMA,
            "fleets": {fleet_id: dict(spec.params)
                       for fleet_id, spec in sorted(self._fleets.items())},
            "tenants": {tenant: dict(sorted(names.items()))
                        for tenant, names in sorted(self._names.items())},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp-{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    # -- registration -------------------------------------------------

    def register(
        self,
        raw_params: Mapping[str, Any],
        tenant: str = DEFAULT_TENANT,
        name: str | None = None,
    ) -> FleetSpec:
        """Register a scenario for ``tenant``; idempotent per content.

        Re-registering the same scenario (even under a new name or
        tenant) reuses the existing spec and its warm artifacts.
        """
        if not tenant:
            raise ConfigError("tenant must be non-empty")
        spec = fleet_spec(raw_params)
        self._fleets.setdefault(spec.fleet_id, spec)
        names = self._names.setdefault(tenant, {})
        label = name or spec.fleet_id[:12]
        existing = names.get(label)
        if existing is not None and existing != spec.fleet_id:
            raise DataError(
                f"tenant {tenant!r} already uses name {label!r} for a "
                "different fleet; pick another name"
            )
        names[label] = spec.fleet_id
        self._save()
        return spec

    # -- lookup -------------------------------------------------------

    def resolve(self, ref: str, tenant: str = DEFAULT_TENANT) -> FleetSpec:
        """Fleet by id, id prefix (>= 8 chars) or tenant-local name."""
        named = self._names.get(tenant, {}).get(ref)
        if named is not None:
            return self._fleets[named]
        if ref in self._fleets:
            return self._fleets[ref]
        if len(ref) >= 8:
            matches = [fleet_id for fleet_id in self._fleets
                       if fleet_id.startswith(ref)]
            if len(matches) == 1:
                return self._fleets[matches[0]]
            if len(matches) > 1:
                raise DataError(f"fleet reference {ref!r} is ambiguous")
        raise DataError(f"unknown fleet {ref!r} for tenant {tenant!r}")

    def list(self, tenant: str | None = None) -> list[dict[str, Any]]:
        """JSON-safe fleet listing, optionally restricted to a tenant."""
        tenants = [tenant] if tenant is not None else sorted(self._names)
        rows = []
        for entry in tenants:
            for name, fleet_id in sorted(self._names.get(entry, {}).items()):
                spec = self._fleets[fleet_id]
                rows.append({
                    "tenant": entry,
                    "name": name,
                    "fleet_id": fleet_id,
                    "params": dict(spec.params),
                })
        return rows

    def __len__(self) -> int:
        return len(self._fleets)
