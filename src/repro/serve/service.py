"""The reliability service core: ports in, answers out.

:class:`ReliabilityService` is the hexagon's inside — transport-free
async methods the HTTP layer (or an embedded caller, or a test) drives
directly.  Per query it:

1. resolves the fleet (tenant-scoped registry) and normalizes the
   query parameters,
2. asks the analysis backend for the answer's content-addressed
   reference,
3. tries the warm store (`served_from: "cache"`), and otherwise
4. coalesces with identical in-flight requests and computes on the
   bounded worker pool (`served_from: "computed"`), under the
   service-wide timeout.

Shutdown is graceful: ``begin_drain`` flips the service read-only-ish
(new queries are refused with 503) while in-flight work keeps the
worker pool alive until it settles or the drain deadline passes.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Mapping

from ..errors import DataError, ReproError
from ..parallel import WorkerPool
from .backend import compute_query_payload
from .coalesce import RequestCoalescer
from .fleets import DEFAULT_TENANT, FleetRegistry
from .metrics import ServiceMetrics
from .ports import (
    AnalysisBackendPort,
    ArtifactStorePort,
    EventSourcePort,
    FleetSpec,
    Query,
)
from .queries import parse_query

#: Default per-request budget in seconds (cold Q1-Q3 at report scale
#: fits comfortably; ``repro serve --timeout`` overrides).
DEFAULT_TIMEOUT_S = 120.0


class ServiceUnavailable(ReproError):
    """The service is draining and accepts no new queries."""


class QueryTimeout(ReproError):
    """A query exceeded the service's per-request budget."""


class ReliabilityService:
    """Multi-tenant Q1/Q2/Q3 answering over the serve ports.

    Args:
        backend: analysis backend port (addressing + cold compute).
        store: warm artifact lookups.
        events: event-trace slicing.
        registry: tenant fleet registry.
        pool: bounded compute pool; thread pools keep everything
            in-process (tests), process pools shard simulations.
        store_dir: forwarded to worker processes so they share the
            parent's on-disk store (None = workers compute memory-only
            and only the returned payload survives).
        timeout_s: per-request budget, warm or cold.
        metrics: injected metrics registry.
        clock: monotonic-seconds source for latency measurement.
    """

    def __init__(
        self,
        backend: AnalysisBackendPort,
        store: ArtifactStorePort,
        events: EventSourcePort,
        registry: FleetRegistry,
        pool: WorkerPool,
        store_dir: str | None = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.backend = backend
        self.store = store
        self.events = events
        self.registry = registry
        self.pool = pool
        self.store_dir = store_dir
        self.timeout_s = timeout_s
        self.metrics = metrics if metrics is not None else ServiceMetrics(clock)
        self.clock = clock
        self.coalescer = RequestCoalescer()
        self.draining = False
        self._in_flight: set[asyncio.Future] = set()

    # -- fleet management ---------------------------------------------

    def register_fleet(
        self,
        params: Mapping[str, Any],
        tenant: str = DEFAULT_TENANT,
        name: str | None = None,
    ) -> dict[str, Any]:
        """Register (or re-register) a scenario; returns its identity."""
        self._refuse_when_draining()
        spec = self.registry.register(params, tenant=tenant, name=name)
        return {
            "fleet_id": spec.fleet_id,
            "tenant": tenant,
            "name": name or spec.fleet_id[:12],
            "params": dict(spec.params),
        }

    def list_fleets(self, tenant: str | None = None) -> dict[str, Any]:
        """The fleet table, optionally scoped to one tenant."""
        return {"fleets": self.registry.list(tenant)}

    def resolve_fleet(self, ref: str,
                      tenant: str = DEFAULT_TENANT) -> FleetSpec:
        """Fleet spec by id/prefix/name (raises DataError when unknown)."""
        return self.registry.resolve(ref, tenant=tenant)

    # -- queries ------------------------------------------------------

    async def query(
        self,
        fleet_ref: str,
        kind: str,
        raw_params: Mapping[str, Any] | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> dict[str, Any]:
        """Answer one operator question for one fleet.

        Returns the payload extended with a ``meta`` envelope
        (fleet id, query kind, ``served_from``: cache/computed).
        """
        self._refuse_when_draining()
        fleet = self.resolve_fleet(fleet_ref, tenant=tenant)
        query = parse_query(kind, raw_params)
        start = self.clock()
        bucket = self.metrics.endpoint(query.kind)
        self.metrics.in_flight += 1
        done = self._track()
        error = True
        cache: str | None = None
        try:
            payload, cache = await asyncio.wait_for(
                self._resolve(fleet, query), timeout=self.timeout_s,
            )
            error = False
            return self._envelope(payload, fleet, query, cache)
        except asyncio.TimeoutError:
            raise QueryTimeout(
                f"{query.kind} on fleet {fleet.fleet_id[:12]} exceeded "
                f"{self.timeout_s:g}s"
            ) from None
        finally:
            self.metrics.in_flight -= 1
            self.metrics.coalesced = self.coalescer.coalesced
            bucket.observe(self.clock() - start, error=error, cache=cache)
            done()

    async def _resolve(
        self, fleet: FleetSpec, query: Query,
    ) -> tuple[dict[str, Any], str]:
        """(payload, "hit"|"miss") — warm lookup, else pooled compute."""
        ref = self.backend.query_ref(fleet, query)
        warm = self.store.lookup(ref)
        if warm is not None:
            return warm, "hit"

        async def compute() -> dict[str, Any]:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self.pool.executor,
                compute_query_payload,
                self.store_dir,
                fleet.fleet_id,
                dict(fleet.params),
                query.kind,
                query.params,
            )

        payload = await self.coalescer.run((ref.stage, ref.key), compute)
        return payload, "miss"

    async def slice_events(
        self,
        fleet_ref: str,
        offset: int = 0,
        limit: int = 100,
        tenant: str = DEFAULT_TENANT,
    ) -> dict[str, Any]:
        """A window of the fleet's event trace (materializing if cold)."""
        fleet = self.resolve_fleet(fleet_ref, tenant=tenant)
        window = self.events.slice_events(fleet, offset, limit)
        if window is None:
            # Cold: materialize the event_blocks artifact through the
            # normal query path (coalesced + pooled), then slice warm.
            await self.query(fleet.fleet_id, "events", tenant=tenant)
            window = self.events.slice_events(fleet, offset, limit)
            if window is None:
                raise DataError(
                    "event trace unavailable after materialization; "
                    "is the service running without a store directory?"
                )
        return self._envelope(window, fleet,
                              Query(kind="events", params=()), "hit")

    def _envelope(self, payload: dict[str, Any], fleet: FleetSpec,
                  query: Query, cache: str) -> dict[str, Any]:
        body = dict(payload)
        body["meta"] = {
            "fleet_id": fleet.fleet_id,
            "query": query.kind,
            "params": query.param_dict(),
            "served_from": "cache" if cache == "hit" else "computed",
        }
        return body

    # -- observability ------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` payload, including store facts."""
        self.metrics.coalesced = self.coalescer.coalesced
        return self.metrics.snapshot(extra={
            "draining": self.draining,
            "fleets": len(self.registry),
            "store": self.store.describe(),
        })

    # -- lifecycle ----------------------------------------------------

    def _refuse_when_draining(self) -> None:
        if self.draining:
            raise ServiceUnavailable("service is draining; retry elsewhere")

    def _track(self) -> Callable[[], None]:
        """Register an in-flight marker; returns its completion hook."""
        marker: asyncio.Future = asyncio.get_running_loop().create_future()
        self._in_flight.add(marker)

        def done() -> None:
            self._in_flight.discard(marker)
            if not marker.done():
                marker.set_result(None)

        return done

    async def begin_drain(self, drain_timeout_s: float = 30.0) -> int:
        """Refuse new queries, wait for in-flight ones, stop the pool.

        Returns the number of requests that were still in flight when
        draining began (all of which were awaited, up to the drain
        deadline).
        """
        self.draining = True
        pending = list(self._in_flight)
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout_s)
        self.pool.shutdown(wait=True)
        return len(pending)
