"""Adapters binding the serve ports to the artifact pipeline.

The hexagon's outside edge: everything here knows about
:mod:`repro.pipeline`, :mod:`repro.stream.blocks` and the on-disk store
layout, and none of it is visible to the HTTP handlers (which speak
:mod:`repro.serve.ports` only).

* :class:`PipelineAnalysisBackend` — resolves queries to pipeline
  stage/key pairs and computes cold answers by driving the report
  pipeline (simulating at most once per fleet, since the simulation is
  itself a shared content-addressed artifact).
* :class:`PipelineArtifactStore` — warm lookups against the two-tier
  :class:`~repro.pipeline.core.ArtifactStore`; a sqlite or remote
  implementation would subclass the port, not change the service.
* :class:`PipelineEventSource` — slices the fleet's memory-mapped
  ``event_blocks`` segment into JSON events.

:func:`compute_query_payload` is the module-level, picklable entry
point worker processes run; it persists every intermediate artifact to
the shared store so the parent's next lookup is warm.
"""

from __future__ import annotations

import pathlib
from typing import Any

from ..errors import DataError
from ..pipeline.core import ArtifactStore, Stage
from ..pipeline.stages import EVENT_BLOCKS_STAGE
from ..stream.blocks import KIND_BY_CODE, BlockSegment
from .fleets import fleet_config
from .ports import (
    AnalysisBackendPort,
    ArtifactStorePort,
    EventSourcePort,
    FleetSpec,
    Query,
    QueryRef,
)
from .queries import build_query_pipeline, json_safe, query_stage_name

#: Hard cap on one events-slice response (keeps payloads bounded).
MAX_EVENT_SLICE = 10_000


def _never_runs(inputs: dict, ctx: Any) -> Any:  # pragma: no cover
    raise DataError("synthetic lookup stage must never execute")


def _lookup_stage(name: str, codec: str) -> Stage:
    """A stage shell carrying just (name, codec) for store decoding.

    :meth:`ArtifactStore.fetch` needs a stage's name and codec to
    locate and decode an entry; warm lookups construct this shell
    instead of rebuilding the full fleet pipeline.
    """
    return Stage(name=name, run=_never_runs, codec=codec)


class PipelineArtifactStore(ArtifactStorePort):
    """Warm answer lookups over the shared two-tier artifact store."""

    def __init__(self, store: ArtifactStore):
        self.store = store

    def lookup(self, ref: QueryRef) -> dict[str, Any] | None:
        codec = "blocks" if ref.stage == EVENT_BLOCKS_STAGE else "json"
        hit = self.store.fetch(_lookup_stage(ref.stage, codec), ref.key)
        if hit is None:
            return None
        tier, artifact = hit
        if ref.stage == EVENT_BLOCKS_STAGE:
            # The event source slices the segment itself; report only
            # presence so the service can mark the query warm.
            return {"n_events": int(artifact.n_events), "tier": tier}
        return artifact

    def describe(self) -> dict[str, Any]:
        root = self.store.root
        stages: dict[str, int] = {}
        if root is not None and root.exists():
            for directory in sorted(root.iterdir()):
                if directory.is_dir():
                    entries = self.store.stage_entries(directory.name)
                    if entries:
                        stages[directory.name] = len(entries)
        return {
            "backend": "pipeline-disk",
            "root": str(root) if root is not None else None,
            "stages": stages,
        }


class PipelineAnalysisBackend(AnalysisBackendPort):
    """Queries answered by the content-addressed report pipeline.

    Args:
        store: the shared artifact store cold computations persist to.
            Key resolution itself never touches it.
    """

    def __init__(self, store: ArtifactStore):
        self.store = store
        #: (fleet_id, stage name) -> key; keys are pure hashes of the
        #: config + code fingerprints, so memoizing them is safe.
        self._refs: dict[tuple[str, str], QueryRef] = {}

    def query_ref(self, fleet: FleetSpec, query: Query) -> QueryRef:
        stage = query_stage_name(query)
        cached = self._refs.get((fleet.fleet_id, stage))
        if cached is not None:
            return cached
        pipeline = build_query_pipeline(fleet_config(fleet.params), query)
        ref = QueryRef(stage=stage, key=pipeline.key(stage))
        self._refs[(fleet.fleet_id, stage)] = ref
        return ref

    def compute(self, fleet: FleetSpec, query: Query) -> dict[str, Any]:
        pipeline = build_query_pipeline(
            fleet_config(fleet.params), query, store=self.store,
        )
        artifact = pipeline.get(query_stage_name(query))
        if query.kind == "events":
            return {"n_events": int(artifact.n_events), "tier": "computed"}
        return artifact


class PipelineEventSource(EventSourcePort):
    """JSON slices of a fleet's columnar ``event_blocks`` segment."""

    def __init__(self, store: ArtifactStore,
                 backend: PipelineAnalysisBackend):
        self.store = store
        self.backend = backend

    def slice_events(
        self, fleet: FleetSpec, offset: int, limit: int,
    ) -> dict[str, Any] | None:
        if offset < 0:
            raise DataError(f"offset must be >= 0, got {offset}")
        if not 0 < limit <= MAX_EVENT_SLICE:
            raise DataError(
                f"limit must be in [1, {MAX_EVENT_SLICE}], got {limit}"
            )
        ref = self.backend.query_ref(fleet, Query(kind="events", params=()))
        hit = self.store.fetch(_lookup_stage(ref.stage, "blocks"), ref.key)
        if hit is None:
            return None
        _, segment = hit
        return segment_slice(segment, offset, limit)


def segment_slice(segment: BlockSegment, offset: int, limit: int) -> dict:
    """One window of a block segment as JSON-safe event records."""
    records = segment.records[offset:offset + limit]
    events = [
        {
            "seq": segment.start_seq + offset + position,
            "time_hours": record["time_hours"],
            "kind": KIND_BY_CODE[int(record["kind"])].value,
            "rack_index": record["rack_index"],
            "server_offset": record["server_offset"],
            "fault_code": record["fault_code"],
            "repair_hours": record["repair_hours"],
            "value": record["value"],
            "value2": record["value2"],
        }
        for position, record in enumerate(records)
    ]
    return json_safe({
        "n_events": int(segment.n_events),
        "offset": int(offset),
        "count": len(events),
        "events": events,
    })


def open_store(store_dir: str | pathlib.Path | None) -> ArtifactStore:
    """The shared artifact store for a serve process (or memory-only)."""
    return ArtifactStore(store_dir) if store_dir else ArtifactStore()


# -- worker-process entry point ---------------------------------------------

_WORKER_STORES: dict[str | None, ArtifactStore] = {}


def compute_query_payload(
    store_dir: str | None,
    fleet_id: str,
    fleet_params: dict[str, Any],
    query_kind: str,
    query_params: tuple[tuple[str, Any], ...],
) -> dict[str, Any]:
    """Compute one query in a worker process against the shared store.

    Takes only primitives so the pool submission pickles cheaply; the
    per-process store is cached so a worker that already simulated a
    fleet serves its next cold query from memory.
    """
    store = _WORKER_STORES.get(store_dir)
    if store is None:
        store = open_store(store_dir)
        _WORKER_STORES[store_dir] = store
    backend = PipelineAnalysisBackend(store)
    fleet = FleetSpec(fleet_id=fleet_id, params=fleet_params)
    return backend.compute(fleet, Query(kind=query_kind, params=query_params))
