"""Reliability-as-a-service: async multi-tenant HTTP API over the pipeline.

The package answers the paper's three operator questions — Q1 spare
provisioning, Q2 SKU ranking, Q3 operating ranges — for many named
fleets concurrently, caching every answer in the content-addressed
artifact store so identical questions are warm across tenants.

Layout (hexagonal):

* :mod:`~repro.serve.ports` — the abstract boundary the core speaks.
* :mod:`~repro.serve.backend` — adapters binding the ports to
  :mod:`repro.pipeline` and the columnar event core.
* :mod:`~repro.serve.service` — the transport-free service core
  (coalescing, worker pool, timeouts, metrics, draining).
* :mod:`~repro.serve.http` — the stdlib asyncio HTTP/1.1 edge.
* :mod:`~repro.serve.app` — composition root wiring it all together
  (what ``repro serve`` runs).
"""

from .app import build_app, run_server
from .backend import (
    PipelineAnalysisBackend,
    PipelineArtifactStore,
    PipelineEventSource,
    open_store,
)
from .coalesce import RequestCoalescer
from .fleets import DEFAULT_TENANT, FleetRegistry, fleet_spec
from .http import ServeApp
from .metrics import LatencyHistogram, ServiceMetrics
from .ports import (
    QUERY_KINDS,
    AnalysisBackendPort,
    ArtifactStorePort,
    EventSourcePort,
    FleetSpec,
    Query,
    QueryRef,
)
from .queries import parse_query, query_stage_name
from .service import (
    DEFAULT_TIMEOUT_S,
    QueryTimeout,
    ReliabilityService,
    ServiceUnavailable,
)

__all__ = [
    "DEFAULT_TENANT",
    "DEFAULT_TIMEOUT_S",
    "QUERY_KINDS",
    "AnalysisBackendPort",
    "ArtifactStorePort",
    "EventSourcePort",
    "FleetRegistry",
    "FleetSpec",
    "LatencyHistogram",
    "PipelineAnalysisBackend",
    "PipelineArtifactStore",
    "PipelineEventSource",
    "Query",
    "QueryRef",
    "QueryTimeout",
    "ReliabilityService",
    "RequestCoalescer",
    "ServeApp",
    "ServiceMetrics",
    "ServiceUnavailable",
    "build_app",
    "fleet_spec",
    "open_store",
    "parse_query",
    "query_stage_name",
    "run_server",
]
