"""Composition root: wire the ports, serve until told to stop.

:func:`build_app` assembles one ready-to-start :class:`ServeApp` from
primitive settings (store directory, worker count, timeout) — the one
place that knows the concrete adapter classes.  :func:`run_server` adds
the process scaffolding ``repro serve`` needs: an event loop, signal
handlers, and a graceful drain on SIGINT/SIGTERM.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from typing import Any, Callable

from ..parallel import WorkerPool
from .backend import (
    PipelineAnalysisBackend,
    PipelineArtifactStore,
    PipelineEventSource,
    open_store,
)
from .fleets import FleetRegistry
from .http import ServeApp
from .service import DEFAULT_TIMEOUT_S, ReliabilityService


def build_app(
    store_dir: str | None = None,
    workers: int | None = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    use_threads: bool = False,
) -> ServeApp:
    """A fully wired :class:`ServeApp` (not yet bound to a socket).

    Args:
        store_dir: artifact-store root shared by server and workers;
            None keeps everything in memory (and forces thread
            workers, since process workers could not share results).
        workers: worker-pool size (None = all cores).
        timeout_s: per-request budget.
        use_threads: thread workers instead of processes (tests).
    """
    if store_dir is None:
        use_threads = True  # no shared disk → results must stay in-process
    store = open_store(store_dir)
    backend = PipelineAnalysisBackend(store)
    registry_path = (f"{store_dir}/fleets.json"
                     if store_dir is not None else None)
    service = ReliabilityService(
        backend=backend,
        store=PipelineArtifactStore(store),
        events=PipelineEventSource(store, backend),
        registry=FleetRegistry(registry_path),
        pool=WorkerPool(jobs=workers, use_threads=use_threads),
        store_dir=store_dir,
        timeout_s=timeout_s,
    )
    return ServeApp(service)


async def _serve(
    app: ServeApp,
    host: str,
    port: int,
    ready: Callable[[str, int], Any] | None,
    drain_timeout_s: float,
) -> None:
    bound_host, bound_port = await app.start(host=host, port=port)
    if ready is not None:
        ready(bound_host, bound_port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or unsupported platform
    try:
        serving = asyncio.ensure_future(app.serve_forever())
        waiting = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serving, waiting},
                           return_when=asyncio.FIRST_COMPLETED)
        for task in (serving, waiting):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        await app.shutdown(drain_timeout_s)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8787,
    store_dir: str | None = None,
    workers: int | None = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    drain_timeout_s: float = 30.0,
    ready: Callable[[str, int], Any] | None = None,
    out=sys.stderr,
) -> int:
    """Run the service until SIGINT/SIGTERM; returns an exit code.

    Args:
        ready: called with the bound (host, port) once listening —
            default prints a one-line banner to ``out``.
    """
    app = build_app(store_dir=store_dir, workers=workers,
                    timeout_s=timeout_s)

    def banner(bound_host: str, bound_port: int) -> None:
        store = store_dir or "<memory>"
        print(
            f"repro serve listening on http://{bound_host}:{bound_port} "
            f"(store={store}, workers={app.service.pool.jobs}, "
            f"timeout={timeout_s:g}s)",
            file=out, flush=True,
        )

    asyncio.run(_serve(app, host, port, ready or banner, drain_timeout_s))
    print("repro serve drained and stopped", file=out, flush=True)
    return 0
