"""Service observability: counters, latency histograms, gauges.

Everything is plain in-process state snapshotted as JSON by the
``/metrics`` endpoint — no third-party client, no sampling thread.
Latencies land in fixed log-spaced buckets (:class:`LatencyHistogram`),
so p50/p99 cost O(buckets) to read and memory stays constant no matter
how many requests the server has seen.

Clocks are injected (``repro`` invariant: no inline wall-clock reads),
defaulting to ``time.monotonic`` for durations.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

#: Histogram bucket geometry: upper bounds from 100µs to ~105s, eight
#: buckets per decade — resolution ~33% anywhere in the range, plenty
#: for p50/p99 on paths spanning 1ms (warm) to tens of seconds (cold).
_BUCKETS_PER_DECADE = 8
_MIN_BOUND_S = 1e-4
_N_BUCKETS = 49


def _bucket_bounds() -> tuple[float, ...]:
    ratio = 10.0 ** (1.0 / _BUCKETS_PER_DECADE)
    return tuple(_MIN_BOUND_S * ratio ** i for i in range(_N_BUCKETS))


class LatencyHistogram:
    """Fixed log-bucket latency histogram with percentile readout."""

    bounds: tuple[float, ...] = _bucket_bounds()

    def __init__(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.total = 0
        self.sum_s = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (negative durations clamp to zero)."""
        seconds = max(0.0, seconds)
        index = len(self.bounds)  # overflow unless a bound covers it
        if seconds <= self.bounds[-1]:
            # log-index straight into the geometric grid
            if seconds <= self.bounds[0]:
                index = 0
            else:
                index = math.ceil(
                    math.log10(seconds / _MIN_BOUND_S) * _BUCKETS_PER_DECADE
                )
                # guard the float edge: the computed bucket must cover it
                while self.bounds[index] < seconds:  # pragma: no cover
                    index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum_s += seconds

    def percentile(self, q: float) -> float | None:
        """The q-quantile in seconds (None before any observation).

        Reads the histogram: the returned value is the upper bound of
        the bucket holding the q-th observation, i.e. accurate to the
        bucket ratio (~33%).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return (self.bounds[index] if index < len(self.bounds)
                        else self.bounds[-1])
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe summary (count, mean, p50, p99)."""
        mean = self.sum_s / self.total if self.total else None
        p50 = self.percentile(0.50)
        p99 = self.percentile(0.99)
        return {
            "count": self.total,
            "mean_ms": None if mean is None else 1e3 * mean,
            "p50_ms": None if p50 is None else 1e3 * p50,
            "p99_ms": None if p99 is None else 1e3 * p99,
        }


class EndpointMetrics:
    """Counters and latency for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.latency = LatencyHistogram()

    def observe(self, seconds: float, error: bool = False,
                cache: str | None = None) -> None:
        """Record one finished request."""
        self.requests += 1
        if error:
            self.errors += 1
        if cache == "hit":
            self.cache_hits += 1
        elif cache == "miss":
            self.cache_misses += 1
        self.latency.record(seconds)

    def snapshot(self) -> dict[str, Any]:
        looked_up = self.cache_hits + self.cache_misses
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_ratio": (self.cache_hits / looked_up
                              if looked_up else None),
            },
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """Whole-service metrics registry behind ``/metrics``.

    Args:
        clock: monotonic-seconds source, injected for replayable tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self.started_at = clock()
        self.in_flight = 0
        self.coalesced = 0
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(self, name: str) -> EndpointMetrics:
        """The (auto-created) metrics bucket for one endpoint."""
        bucket = self._endpoints.get(name)
        if bucket is None:
            bucket = self._endpoints[name] = EndpointMetrics()
        return bucket

    def snapshot(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """The ``/metrics`` response body."""
        payload: dict[str, Any] = {
            "schema": 1,
            "uptime_s": self.clock() - self.started_at,
            "in_flight": self.in_flight,
            "coalesced_requests": self.coalesced,
            "endpoints": {
                name: bucket.snapshot()
                for name, bucket in sorted(self._endpoints.items())
            },
        }
        if extra:
            payload.update(extra)
        return payload
