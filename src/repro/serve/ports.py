"""Ports of the reliability service (hexagonal boundary).

``repro.serve`` answers the paper's operator questions — Q1 spare
provisioning, Q2 SKU ranking, Q3 operating ranges — over HTTP for many
named fleets at once.  The HTTP handlers and the service core speak
*only* the three abstract ports below; everything that knows about the
artifact pipeline, the disk store or the columnar event core lives in
adapters (:mod:`repro.serve.backend`).  Swapping the disk store for a
sqlite or remote backend is therefore a new adapter, not a handler
change.

* :class:`AnalysisBackendPort` — resolves a query to its
  content-addressed reference and computes cold answers.
* :class:`ArtifactStorePort` — warm lookups of previously computed
  answers by reference (the shared cache tier).
* :class:`EventSourcePort` — read access to a fleet's flattened event
  trace (warm only; materialization goes through the backend).

The small value types (:class:`FleetSpec`, :class:`Query`,
:class:`QueryRef`) are deliberately plain and picklable: cold
computations cross a process boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

#: Query kinds the service answers.  ``q1``/``q2``/``q3`` mirror the
#: paper's operator questions; ``predict`` serves the online
#: failure-prediction evaluation; ``autonomics`` serves the closed-loop
#: policy shootout; ``events`` materializes the flattened event trace
#: for the event-source port to slice.
QUERY_KINDS = ("q1", "q2", "q3", "predict", "autonomics", "events")


@dataclass(frozen=True)
class FleetSpec:
    """One registered fleet: a content-addressed scenario config.

    Attributes:
        fleet_id: content hash of the underlying simulation config —
            identical scenarios registered by different tenants share
            one id (and therefore one set of artifacts).
        params: the primitive config knobs (``seed``, ``scale``,
            ``days``) the id was derived from; enough to rebuild the
            :class:`~repro.config.SimulationConfig` in any process.
    """

    fleet_id: str
    params: Mapping[str, Any]


@dataclass(frozen=True)
class Query:
    """One normalized, validated query against a fleet.

    ``params`` is already defaulted and type-coerced (see
    :func:`repro.serve.queries.parse_query`), so equal queries compare
    equal — the property request coalescing keys on.
    """

    kind: str
    params: tuple[tuple[str, Any], ...]

    def param_dict(self) -> dict[str, Any]:
        """The params as a plain dict."""
        return dict(self.params)


@dataclass(frozen=True)
class QueryRef:
    """Content-addressed reference of one query's answer artifact.

    ``stage`` and ``key`` follow the artifact pipeline's addressing
    (stage name + recursive content key), but nothing in the service
    core interprets them — they are opaque coordinates for
    :meth:`ArtifactStorePort.lookup` and the coalescing map.
    """

    stage: str
    key: str


class AnalysisBackendPort(ABC):
    """Port for resolving and computing reliability answers."""

    @abstractmethod
    def query_ref(self, fleet: FleetSpec, query: Query) -> QueryRef:
        """The content-addressed reference of ``query``'s answer.

        Pure addressing: never computes or touches artifact payloads.
        """

    @abstractmethod
    def compute(self, fleet: FleetSpec, query: Query) -> dict[str, Any]:
        """Compute the answer payload (expensive; may simulate).

        Implementations must be safe to call from a worker process and
        must persist whatever intermediate artifacts they want warm
        lookups to find afterwards.
        """


class ArtifactStorePort(ABC):
    """Port for warm, read-only answer lookups."""

    @abstractmethod
    def lookup(self, ref: QueryRef) -> dict[str, Any] | None:
        """The stored answer payload for ``ref``, or None on miss."""

    @abstractmethod
    def describe(self) -> dict[str, Any]:
        """Store facts for observability (backend kind, entry counts)."""


class EventSourcePort(ABC):
    """Port for reading a fleet's flattened event trace."""

    @abstractmethod
    def slice_events(
        self, fleet: FleetSpec, offset: int, limit: int,
    ) -> dict[str, Any] | None:
        """A JSON-safe window of the fleet's event stream.

        Returns None when the trace is not materialized yet (the
        service then routes an ``events`` query through the backend to
        materialize it).
        """
