"""Request coalescing: N identical in-flight queries, one computation.

Cold queries cost seconds (a simulation) while identical requests
arrive together — the classic cache-stampede shape.  The coalescer
keys each computation by its content-addressed query reference; the
first arrival starts the work as a task, every later arrival awaits the
same future, and the key is dropped once the work settles (so a failed
computation is retried by the *next* request rather than poisoning the
key forever).

Single-event-loop only: the map is touched exclusively from coroutine
context, so no locking is needed — attach/await ordering is guaranteed
by the loop.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable


class RequestCoalescer:
    """Deduplicates concurrent awaits of one keyed computation."""

    def __init__(self) -> None:
        self._in_flight: dict[Hashable, asyncio.Future] = {}
        #: Requests that attached to an existing computation instead of
        #: starting their own (surfaced by /metrics).
        self.coalesced = 0
        #: Computations actually started.
        self.started = 0

    def pending(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._in_flight)

    async def run(
        self,
        key: Hashable,
        thunk: Callable[[], Awaitable[Any]],
    ) -> Any:
        """Await ``thunk()``'s result, sharing it with identical keys.

        The underlying task is shielded from any single awaiter's
        cancellation: a client that times out and disconnects must not
        cancel the computation nine other clients are waiting on.
        """
        existing = self._in_flight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing)
        task = asyncio.ensure_future(thunk())
        self._in_flight[key] = task
        self.started += 1
        task.add_done_callback(lambda _: self._in_flight.pop(key, None))
        return await asyncio.shield(task)
