"""Query model: validation, stage construction and payload builders.

A serve query is one of the paper's operator questions, normalized to a
canonical parameter tuple and answered as a JSON-safe payload:

* ``q1`` — spare provisioning (§VI-Q1): LB/SF/MF over-provision
  fractions plus the MF cluster plan, for a workload, SLA and window.
* ``q2`` — SKU ranking (§VI-Q2): normalized single-factor rates and
  the stratum-standardized S2/S4 comparison.
* ``q3`` — operating ranges (§VI-Q3): per-DC climate group rates and
  the CART-discovered temperature/RH thresholds.
* ``predict`` — online failure prediction (ISSUE 8): ranking metrics,
  one proactive-vs-reactive operating point and the top risk list from
  the ``predict:score`` evaluation payload.
* ``autonomics`` — the closed-loop policy shootout: the same seed
  replayed under each requested controller, scored on SLA attainment
  and TCO (the ``autonomics:compare`` payload when the defaults are
  requested).
* ``events`` — materializes the fleet's flattened event trace (the
  ``event_blocks`` stage) so the event-source port can slice it.

Each query maps to one content-addressed pipeline stage
(``serve:q1:...``) whose artifact is the payload itself (``codec=
"json"``), so a warm store serves answers without touching the
simulation — the property the service's latency targets rest on.
"""

from __future__ import annotations

import contextlib
import math
from typing import Any, Mapping

from ..decisions.availability import AvailabilitySla
from ..errors import DataError, ReproError
from ..pipeline import Stage, analysis_stages
from ..pipeline.core import ArtifactStore, Pipeline, StageContext
from ..pipeline.stages import EVENT_BLOCKS_STAGE
from ..reporting.context import SIMULATE_STAGE, AnalysisContext
from .ports import QUERY_KINDS, Query

#: Prefix of every serve-owned stage name.
SERVE_STAGE_PREFIX = "serve:"

#: Defaults applied by :func:`parse_query`, per query kind.  ``q1``
#: defaults mirror Fig 10's headline point (compute workload, 100% SLA,
#: daily windows).
QUERY_DEFAULTS: dict[str, dict[str, Any]] = {
    "q1": {"workload": "W1", "sla": 1.0, "window_hours": 24.0},
    "q2": {"peak_quantile": 0.999},
    "q3": {"dc": ""},  # "" = every datacenter in the fleet
    "predict": {"horizon_days": 3.0, "act_fraction": 0.05, "top": 10.0},
    "autonomics": {
        "policies": "null,reactive,predictive",
        "sla_level": 0.95,
        "decide_every_days": 7.0,
    },
    "events": {},
}


def parse_query(kind: str, raw: Mapping[str, Any] | None = None) -> Query:
    """Validate and normalize raw (string-ish) query parameters.

    Unknown kinds, unknown parameter names and out-of-domain values
    raise :class:`~repro.errors.DataError` — the service maps those to
    structured 4xx responses.
    """
    if kind not in QUERY_KINDS:
        raise DataError(
            f"unknown query kind {kind!r}; have {sorted(QUERY_KINDS)}"
        )
    defaults = QUERY_DEFAULTS[kind]
    raw = dict(raw or {})
    unknown = sorted(set(raw) - set(defaults))
    if unknown:
        raise DataError(
            f"{kind}: unknown parameter(s) {unknown}; "
            f"accepts {sorted(defaults)}"
        )
    params = dict(defaults)
    for name, value in raw.items():
        template = defaults[name]
        if isinstance(template, float):
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise DataError(
                    f"{kind}: {name} must be a number, got {value!r}"
                ) from None
        else:
            value = str(value)
        params[name] = value
    if kind == "q1":
        if not 0.0 < params["sla"] <= 1.0:
            raise DataError(f"q1: sla must be in (0, 1], got {params['sla']}")
        if params["window_hours"] <= 0:
            raise DataError(
                f"q1: window_hours must be > 0, got {params['window_hours']}"
            )
    if kind == "q2" and not 0.0 < params["peak_quantile"] < 1.0:
        raise DataError(
            f"q2: peak_quantile must be in (0, 1), got {params['peak_quantile']}"
        )
    if kind == "predict":
        if params["horizon_days"] < 1:
            raise DataError(
                f"predict: horizon_days must be >= 1, "
                f"got {params['horizon_days']}"
            )
        if not 0.0 < params["act_fraction"] <= 1.0:
            raise DataError(
                f"predict: act_fraction must be in (0, 1], "
                f"got {params['act_fraction']}"
            )
        if params["top"] < 1:
            raise DataError(f"predict: top must be >= 1, got {params['top']}")
    if kind == "autonomics":
        if not 0.0 < params["sla_level"] <= 1.0:
            raise DataError(
                f"autonomics: sla_level must be in (0, 1], "
                f"got {params['sla_level']}"
            )
        if params["decide_every_days"] < 1:
            raise DataError(
                f"autonomics: decide_every_days must be >= 1, "
                f"got {params['decide_every_days']}"
            )
        if not params["policies"].strip(","):
            raise DataError("autonomics: policies must name at least one policy")
    return Query(kind=kind, params=tuple(sorted(params.items())))


def query_stage_name(query: Query) -> str:
    """Deterministic stage name of one query's answer artifact."""
    if query.kind == "events":
        # The events query materializes the catalogue's own stage.
        return EVENT_BLOCKS_STAGE
    rendered = ",".join(
        f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
        for name, value in query.params
    )
    return f"{SERVE_STAGE_PREFIX}{query.kind}:{rendered}"


def json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars and non-finite floats for JSON.

    NaN/inf become None — ``json.dumps`` would otherwise emit invalid
    JSON (bare ``NaN``) that stdlib-only clients cannot parse.
    """
    if isinstance(value, dict):
        return {str(name): json_safe(entry) for name, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(entry) for entry in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int,)):
        return int(value)
    if hasattr(value, "item"):  # numpy scalar
        value = value.item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    return value


# -- payload builders -------------------------------------------------------

def q1_payload(context: AnalysisContext, params: Mapping[str, Any]) -> dict:
    """Q1: LB/SF/MF spare provisioning for one workload/SLA/window."""
    workload = params["workload"]
    sla = AvailabilitySla(params["sla"])
    window = params["window_hours"]
    provisioner = context.provisioner(window)
    plans = {
        "LB": provisioner.lower_bound(workload, sla),
        "SF": provisioner.single_factor(workload, sla),
        "MF": provisioner.multi_factor(workload, sla),
    }
    rendered: dict[str, Any] = {}
    for approach, plan in plans.items():
        entry: dict[str, Any] = {
            "overprovision": plan.overprovision,
            "n_racks": int(len(plan.rack_indices)),
        }
        if plan.clusters is not None:
            entry["clusters"] = [
                {
                    "description": cluster.description,
                    "n_racks": cluster.n_racks,
                    "fraction": cluster.fraction,
                }
                for cluster in sorted(plan.clusters, key=lambda c: c.fraction)
            ]
        rendered[approach] = entry
    sf = plans["SF"].overprovision
    mf = plans["MF"].overprovision
    return json_safe({
        "question": "q1",
        "workload": workload,
        "sla": sla.level,
        "window_hours": window,
        "plans": rendered,
        "mf_vs_sf_savings": (sf - mf) / sf if sf > 0 else None,
    })


def q2_payload(context: AnalysisContext, params: Mapping[str, Any]) -> dict:
    """Q2: SKU reliability ranking, SF view plus the MF S2/S4 check."""
    from ..decisions.sku_ranking import FIG14_SKUS, compare_skus

    comparison = compare_skus(
        context.result,
        table=context.hardware_failures,
        peak_quantile=params["peak_quantile"],
    )
    normalized = {
        statistic: comparison.normalized_sf(statistic=statistic)
        for statistic in ("mean", "peak")
    }
    ranking = sorted(FIG14_SKUS, key=lambda sku: normalized["mean"][sku])
    pair: dict[str, Any] = {}
    # Miniature fleets may lack overlapping strata for the MF pair.
    with contextlib.suppress(ReproError, KeyError):
        pair["sf_ratio"] = comparison.sf_ratio("S2", "S4")
        pair["mf_ratio"] = comparison.mf_ratio("S2", "S4")
    return json_safe({
        "question": "q2",
        "peak_quantile": params["peak_quantile"],
        "normalized_sf": normalized,
        "ranking_most_reliable_first": list(ranking),
        "s2_vs_s4": pair or None,
    })


def q3_payload(context: AnalysisContext, params: Mapping[str, Any]) -> dict:
    """Q3: per-DC climate group rates and discovered thresholds."""
    from ..decisions.climate import (
        climate_group_rates,
        discover_climate_thresholds,
    )

    fleet_dcs = [dc.name for dc in context.result.fleet.datacenters]
    wanted = [params["dc"]] if params["dc"] else fleet_dcs
    unknown = sorted(set(wanted) - set(fleet_dcs))
    if unknown:
        raise DataError(f"q3: unknown datacenter(s) {unknown}; have {fleet_dcs}")
    datacenters: dict[str, Any] = {}
    for dc_name in wanted:
        groups = climate_group_rates(
            context.result, dc_name, table=context.disk_failures,
        )
        thresholds = discover_climate_thresholds(context.result, dc_name)
        datacenters[dc_name] = {
            "group_rates": {
                "cool": groups.cool,
                "hot": groups.hot,
                "hot_dry": groups.hot_dry,
                "overall": groups.overall,
            },
            "thresholds": {
                "temp_f": thresholds.temp_threshold_f,
                "rh": thresholds.rh_threshold,
                "temp_gain_share": thresholds.temp_gain_share,
            },
        }
    return json_safe({
        "question": "q3",
        "datacenters": datacenters,
    })


def predict_payload(context: AnalysisContext, params: Mapping[str, Any]) -> dict:
    """Predict: ranking metrics + proactive point at one act-fraction."""
    from ..predict.experiment import predict_query_payload

    return json_safe(predict_query_payload(context, dict(params)))


def autonomics_payload(
    context: AnalysisContext, params: Mapping[str, Any],
) -> dict:
    """Autonomics: the policy shootout for the requested controllers."""
    from ..autonomics.experiment import autonomics_query_payload

    return json_safe(autonomics_query_payload(context, dict(params)))


_PAYLOAD_BUILDERS = {
    "q1": q1_payload,
    "q2": q2_payload,
    "q3": q3_payload,
    "predict": predict_payload,
    "autonomics": autonomics_payload,
}

#: Source modules whose edits must invalidate cached answers, per kind.
_QUERY_CODE: dict[str, tuple[str, ...]] = {
    "q1": ("repro.serve.queries", "repro.decisions.spares"),
    "q2": ("repro.serve.queries", "repro.decisions.sku_ranking"),
    "q3": ("repro.serve.queries", "repro.decisions.climate"),
    "predict": (
        "repro.serve.queries",
        "repro.predict.scoring",
        "repro.predict.experiment",
    ),
    "autonomics": (
        "repro.serve.queries",
        "repro.autonomics.whatif",
        "repro.autonomics.controller",
        "repro.autonomics.experiment",
    ),
}


def query_stage(query: Query) -> Stage:
    """The content-addressed stage computing one query's payload."""
    if query.kind == "events":
        raise DataError("events queries use the catalogue's event_blocks stage")
    builder = _PAYLOAD_BUILDERS[query.kind]
    params = query.param_dict()

    def run(inputs: dict, ctx: StageContext) -> dict:
        context = AnalysisContext(inputs[SIMULATE_STAGE],
                                  artifacts=ctx.pipeline)
        return builder(context, params)

    return Stage(
        name=query_stage_name(query),
        run=run,
        deps=(SIMULATE_STAGE,),
        fingerprint_inputs={"kind": query.kind, "params": params},
        code=_QUERY_CODE[query.kind],
        codec="json",
    )


def build_query_pipeline(
    config: Any,
    query: Query,
    store: ArtifactStore | None = None,
) -> Pipeline:
    """A pipeline carrying the analysis catalogue plus one query stage.

    ``events`` queries need no extra stage — the catalogue already
    carries ``event_blocks``.
    """
    stages = analysis_stages(config)
    if query.kind != "events":
        stages.append(query_stage(query))
    return Pipeline(stages, store=store)
