"""Failure substrate: hazards, fault model, repair, tickets, engine."""

from .diurnal import (
    DiurnalProfiles,
    business_hours_profile,
    load_following_profile,
    uniform_profile,
)
from .engine import SimulationResult, simulate
from .faultmodel import FaultModel, FaultRateConfig, RackContext
from .hazards import (
    bathtub_age_multiplier,
    humidity_interaction_multiplier,
    low_humidity_multiplier,
    seasonal_software_multiplier,
    thermal_disk_multiplier,
    utilization_multiplier,
    weekday_churn_multiplier,
)
from .queueing import (
    QueueingOutcome,
    apply_technician_queue,
    staffing_curve,
)
from .repair import DEFAULT_REPAIR, RepairDistribution, RepairModel
from .tickets import (
    FAULT_CATEGORY,
    FAULT_CODE,
    FAULT_TYPES,
    HARDWARE_FAULTS,
    FaultType,
    RmaTicket,
    TicketCategory,
    TicketLog,
)

__all__ = [
    "DEFAULT_REPAIR",
    "FAULT_CATEGORY",
    "FAULT_CODE",
    "FAULT_TYPES",
    "HARDWARE_FAULTS",
    "DiurnalProfiles",
    "FaultModel",
    "FaultRateConfig",
    "FaultType",
    "QueueingOutcome",
    "RackContext",
    "RepairDistribution",
    "RepairModel",
    "RmaTicket",
    "SimulationResult",
    "TicketCategory",
    "TicketLog",
    "bathtub_age_multiplier",
    "business_hours_profile",
    "humidity_interaction_multiplier",
    "load_following_profile",
    "low_humidity_multiplier",
    "seasonal_software_multiplier",
    "apply_technician_queue",
    "simulate",
    "staffing_curve",
    "thermal_disk_multiplier",
    "uniform_profile",
    "utilization_multiplier",
    "weekday_churn_multiplier",
]
