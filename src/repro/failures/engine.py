"""The failure engine: turns a configured fleet into 2.5 years of tickets.

Generation is vectorized over day-blocks × racks: the engine

1. evaluates every fault type's expected per-rack-day count matrix
   through the ground-truth hazard composition
   (:class:`~repro.failures.faultmodel.FaultModel`), consuming whole
   :class:`~repro.environment.conditions.EnvironmentSeries` and
   :class:`~repro.units.SimCalendar` columns at once,
2. Poisson-samples the full matrix per fault and materializes tickets
   (detection hour, affected server, resolution time, false-positive
   flag) in a handful of ``np.repeat``/``np.concatenate`` passes,
3. draws *correlated* events — SKU batch failures and rack-scale outages
   — as a sparse post-pass over the rare (day, rack) cells the event
   draw selects; these take several devices down simultaneously and are
   what give the concurrent-failure metric μ its heavy tail (Figs 11-13),
4. records everything in a columnar :class:`~repro.failures.tickets.TicketLog`
   (sorted by day and detection hour) alongside the BMS's observed
   environmental telemetry.

Determinism contract: every stochastic consumer draws from its own named
:class:`~repro.rng.RngRegistry` stream (``failures:<FAULT>`` for the
independent Poisson path, ``failures:batch`` and ``failures:outage`` for
the correlated post-passes), so equal configs give bit-identical ticket
logs and adding a new consumer never perturbs existing streams.  The
day-block chunking (:data:`CHUNK_DAYS`) bounds peak memory at paper
scale; it is a fixed constant, so results never depend on it at runtime.

The result object bundles everything an analysis needs; the analysis
layer must treat it the way the paper treats field data — tickets,
sensor readings and inventory only, never the hazard model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datacenter.builder import build_fleet
from ..datacenter.topology import Fleet
from ..environment.bms import BmsLog, BuildingManagementSystem
from ..environment.conditions import EnvironmentSeries
from ..errors import SimulationError
from ..rng import RngRegistry
from ..units import SimCalendar
from .diurnal import DiurnalProfiles
from .faultmodel import FaultModel
from .repair import RepairModel
from .tickets import FAULT_CODE, FaultType, TicketLog

if TYPE_CHECKING:  # avoid a circular import: config depends on faultmodel
    from ..config import SimulationConfig

# Day-block size for chunked matrix generation.  A fixed constant (not a
# knob): the per-fault draw sequence depends on where block boundaries
# fall, so changing this value changes the sampled realization — keep it
# stable to keep golden aggregates stable.
CHUNK_DAYS = 365


@dataclass
class SimulationResult:
    """Everything produced by one simulation run.

    Attributes:
        config: the configuration that produced this run.
        fleet: the simulated estate (topology + inventory).
        calendar: day-index → calendar-feature mapping.
        environment: *true* per-rack daily inlet conditions (ground
            truth — analyses should prefer ``bms`` readings).
        bms: observed (noisy) environmental telemetry and alarms.
        tickets: the full RMA ticket log.
    """

    config: "SimulationConfig"
    fleet: Fleet
    calendar: SimCalendar
    environment: EnvironmentSeries
    bms: BmsLog
    tickets: TicketLog

    @property
    def n_days(self) -> int:
        """Observation-window length."""
        return self.config.n_days

    def summary(self) -> str:
        """One-paragraph run description for logs and examples."""
        n_tickets = len(self.tickets)
        n_fp = int(self.tickets.false_positive.sum())
        return (
            f"{self.fleet.n_racks} racks / {self.fleet.n_servers} servers "
            f"simulated for {self.n_days} days: {n_tickets} RMA tickets "
            f"({n_fp} false positives, "
            f"{int(self.tickets.hardware_mask().sum())} hardware)"
        )


class _TicketColumns:
    """Accumulates aligned ticket-column chunks across the whole run."""

    def __init__(self) -> None:
        self.day_index: list[np.ndarray] = []
        self.start_hour: list[np.ndarray] = []
        self.rack_index: list[np.ndarray] = []
        self.server_offset: list[np.ndarray] = []
        self.fault_code: list[np.ndarray] = []
        self.false_positive: list[np.ndarray] = []
        self.repair_hours: list[np.ndarray] = []
        self.batch_id: list[np.ndarray] = []

    def emit(
        self,
        day_index: np.ndarray,
        start_hour: np.ndarray,
        rack_index: np.ndarray,
        server_offset: np.ndarray,
        fault: FaultType,
        false_positive: np.ndarray,
        repair_hours: np.ndarray,
        batch_id: np.ndarray,
    ) -> None:
        count = len(rack_index)
        if count == 0:
            return
        self.day_index.append(np.asarray(day_index, dtype=np.int64))
        self.start_hour.append(np.asarray(start_hour, dtype=float))
        self.rack_index.append(np.asarray(rack_index, dtype=np.int64))
        self.server_offset.append(np.asarray(server_offset, dtype=np.int64))
        self.fault_code.append(np.full(count, FAULT_CODE[fault], dtype=np.int64))
        self.false_positive.append(np.asarray(false_positive, dtype=bool))
        self.repair_hours.append(np.asarray(repair_hours, dtype=float))
        self.batch_id.append(np.asarray(batch_id, dtype=np.int64))

    def into_log(self) -> TicketLog:
        """Concatenate, day/hour-sort, and finalize the columnar log."""
        log = TicketLog()
        if self.rack_index:
            day_index = np.concatenate(self.day_index)
            start_hour = np.concatenate(self.start_hour)
            rack_index = np.concatenate(self.rack_index)
            server_offset = np.concatenate(self.server_offset)
            fault_code = np.concatenate(self.fault_code)
            false_positive = np.concatenate(self.false_positive)
            repair_hours = np.concatenate(self.repair_hours)
            batch_id = np.concatenate(self.batch_id)
            # Chronological log order (the per-fault passes produce
            # fault-major order); ties broken deterministically.
            order = np.lexsort(
                (server_offset, rack_index, fault_code, start_hour, day_index)
            )
            log.append_chunk(
                day_index=day_index[order],
                start_hour_abs=start_hour[order],
                rack_index=rack_index[order],
                server_offset=server_offset[order],
                fault_code=fault_code[order],
                false_positive=false_positive[order],
                repair_hours=repair_hours[order],
                batch_id=batch_id[order],
            )
        log.finalize()
        return log


def _build_substrate(
    config: "SimulationConfig",
) -> tuple[RngRegistry, Fleet, SimCalendar, EnvironmentSeries, BmsLog]:
    """Deterministic pre-ticket substrate: fleet, calendar, environment, BMS.

    Shared by :func:`simulate` and the run cache's load path — the cache
    rebuilds everything cheap from the config and only restores the
    (expensive, stochastic) ticket log from disk.
    """
    rngs = RngRegistry(config.seed)
    fleet = build_fleet(config.fleet, rngs)
    calendar = SimCalendar(
        start_day_of_week=config.start_day_of_week,
        start_day_of_year=config.start_day_of_year,
    )
    environment = EnvironmentSeries(
        fleet, config.n_days, rngs, start_day_of_year=config.start_day_of_year,
    )
    bms = BuildingManagementSystem(fleet).collect(environment, rngs)
    return rngs, fleet, calendar, environment, bms


def simulate(config: "SimulationConfig | None" = None) -> SimulationResult:
    """Run a full simulation and return its result bundle.

    Args:
        config: run configuration; defaults to paper scale with seed 0.

    The run is fully deterministic in ``config`` (including the seed).
    Implemented as a :class:`SimulationSession` stepped to completion
    with no actions applied — the session's no-op path is bit-identical
    to the historical monolithic generator by construction (same chunk
    loop, same draw order, same final sort).
    """
    from ..config import SimulationConfig

    config = config or SimulationConfig.paper_scale()
    session = SimulationSession(config)
    session.step()
    return session.result()


class _TicketGenerator:
    """The per-chunk draw engine shared by batch and stepwise runs.

    Owns the named RNG streams (``failures:<FAULT>``, ``failures:batch``,
    ``failures:outage``) and the running batch-id counter; every call to
    :meth:`generate_chunk` advances them exactly the way the historical
    monolithic loop did, so any sequence of chunk calls covering
    ``[0, n_days)`` in order reproduces the batch realization bit for
    bit.  Substrate views (fleet arrays, fault model, outage severity)
    are derived in :meth:`refresh_substrate` so a session can re-derive
    them after an inventory mutation without touching the RNG streams.
    """

    def __init__(
        self,
        config: "SimulationConfig",
        fleet: Fleet,
        calendar: SimCalendar,
        environment: EnvironmentSeries,
        rngs: RngRegistry,
    ):
        self.config = config
        self.fleet = fleet
        self.calendar = calendar
        self.environment = environment
        self.repair = RepairModel()
        self.diurnal = DiurnalProfiles()
        self.fp_rate = config.rates.false_positive_rate
        self.fault_rngs = {
            fault: rngs.stream(f"failures:{fault.name}") for fault in FaultType
        }
        self.batch_rng = rngs.stream("failures:batch")
        self.outage_rng = rngs.stream("failures:outage")
        self.next_batch_id = 0
        self.refresh_substrate()

    def refresh_substrate(self) -> None:
        """(Re)derive the per-rack views from the current fleet.

        Called once at construction and again by the session after a
        sanctioned inventory mutation (SKU swap at refresh); rebuilding
        the fault model is deterministic and consumes no RNG draws.
        """
        arrays = self.fleet.arrays()
        self.arrays = arrays
        self.model = FaultModel(self.fleet, self.config.rates)
        # Outage severity depends on the power-delivery design (Table
        # I): a 5-nines facility's redundant feeds contain an outage to
        # a smaller slice of the rack than a 3-nines facility's.
        nines_by_dc = {
            dc.name: dc.spec.availability_nines for dc in self.fleet.datacenters
        }
        per_dc_nines = np.array([nines_by_dc[name] for name in arrays.dc_names])
        rack_nines = per_dc_nines[arrays.dc_code]
        self.outage_low = np.where(rack_nines <= 3, 0.15, 0.08)
        self.outage_high = np.where(rack_nines <= 3, 0.40, 0.20)

    def generate_chunk(self, day0: int, block: int, columns: _TicketColumns) -> None:
        """Draw one ``[day0, day0 + block)`` day-block into ``columns``."""
        arrays = self.arrays
        model = self.model
        repair = self.repair
        n_racks = arrays.n_racks
        batch_rng = self.batch_rng
        outage_rng = self.outage_rng

        features = self.calendar.feature_arrays(block, start_day=day0)
        commissioned = (
            arrays.commission_day[np.newaxis, :] <= features.day_index[:, np.newaxis]
        )
        temp_f = self.environment.temp_f[day0:day0 + block]
        rh = self.environment.rh[day0:day0 + block]
        expected = model.expected_counts_matrix(features, temp_f, rh, commissioned)

        # Independent failures: Poisson per (day, rack) cell per fault.
        for fault, mean_counts in expected.items():
            rng = self.fault_rngs[fault]
            counts = rng.poisson(mean_counts).ravel()
            total = int(counts.sum())
            if total == 0:
                continue
            cell = np.repeat(np.arange(counts.size), counts)
            day_index = day0 + cell // n_racks
            rack_index = cell % n_racks
            capacity = arrays.n_servers[rack_index]
            server_offset = (rng.random(total) * capacity).astype(np.int64)
            start_hour = day_index * 24.0 + self.diurnal.sample_hours(fault, total, rng)
            columns.emit(
                day_index=day_index,
                start_hour=start_hour,
                rack_index=rack_index,
                server_offset=server_offset,
                fault=fault,
                false_positive=rng.random(total) < self.fp_rate,
                repair_hours=repair.sample_hours(fault, total, rng),
                batch_id=np.full(total, -1, dtype=np.int64),
            )

        # Correlated batch failures (bad component lots, shared planes):
        # sparse post-pass over the rare cells the event draw selects.
        batch_rate = model.batch_event_rate_matrix(features, commissioned)
        batch_hits = np.argwhere(batch_rng.random(batch_rate.shape) < batch_rate)
        if len(batch_hits):
            hit_racks = batch_hits[:, 1]
            raw_sizes = 1 + batch_rng.geometric(
                1.0 / arrays.batch_mean_size[hit_racks].astype(float)
            )
            sizes = np.minimum(raw_sizes, arrays.n_servers[hit_racks])
            # Storage-heavy SKUs mostly batch-fail disk lots, sometimes
            # a shared backplane (whole servers); dense compute SKUs
            # batch-fail memory lots (bad DIMM batches) with occasional
            # PSU/backplane lots.  The DIMM share is what makes
            # component-level spares attractive for the compute workload
            # in Fig 13; the PSU share keeps SF's per-resource peaks
            # conservative (its component plan is not cheaper).
            route = batch_rng.random(len(batch_hits))
            for i, (day_off, rack) in enumerate(batch_hits.tolist()):
                size = int(sizes[i])
                if arrays.hdds_per_server[rack] >= 8:
                    fault = (FaultType.DISK if route[i] < 0.55
                             else FaultType.SERVER)
                else:
                    fault = (FaultType.MEMORY if route[i] < 0.8
                             else FaultType.SERVER)
                offsets = batch_rng.choice(
                    arrays.n_servers[rack], size=size, replace=False,
                )
                # Batch failures cascade through the day (a bad lot
                # trips device after device), so hourly windows see only
                # part of the batch concurrently — the temporal-
                # multiplexing effect behind the daily-vs-hourly
                # provisioning gap (Fig 10 vs 12).
                start = (day0 + day_off) * 24.0 + batch_rng.random() * 10.0
                columns.emit(
                    day_index=np.full(size, day0 + day_off, dtype=np.int64),
                    start_hour=np.full(size, start) + batch_rng.random(size) * 14.0,
                    rack_index=np.full(size, rack, dtype=np.int64),
                    server_offset=offsets.astype(np.int64),
                    fault=fault,
                    false_positive=np.zeros(size, dtype=bool),
                    repair_hours=repair.sample_hours(fault, size, batch_rng),
                    batch_id=np.full(size, self.next_batch_id, dtype=np.int64),
                )
                self.next_batch_id += 1

        # Rack-scale outages (power strip / ToR failures).
        outage_rate = model.rack_outage_rate_matrix(features, commissioned)
        outage_hits = np.argwhere(outage_rng.random(outage_rate.shape) < outage_rate)
        if len(outage_hits):
            hit_racks = outage_hits[:, 1]
            fractions = outage_rng.uniform(
                self.outage_low[hit_racks], self.outage_high[hit_racks],
            )
            sizes = np.minimum(
                np.maximum(2, np.round(fractions * arrays.n_servers[hit_racks])),
                arrays.n_servers[hit_racks],
            ).astype(np.int64)
            starts = (
                (day0 + outage_hits[:, 0]) * 24.0
                + outage_rng.random(len(outage_hits)) * 24.0
            )
            for i, (day_off, rack) in enumerate(outage_hits.tolist()):
                size = int(sizes[i])
                offsets = outage_rng.choice(
                    arrays.n_servers[rack], size=size, replace=False,
                )
                columns.emit(
                    day_index=np.full(size, day0 + day_off, dtype=np.int64),
                    start_hour=np.full(size, starts[i]),
                    rack_index=np.full(size, rack, dtype=np.int64),
                    server_offset=offsets.astype(np.int64),
                    fault=FaultType.POWER,
                    false_positive=np.zeros(size, dtype=bool),
                    repair_hours=repair.sample_hours(FaultType.POWER, size, outage_rng),
                    batch_id=np.full(size, self.next_batch_id, dtype=np.int64),
                )
                self.next_batch_id += 1


#: Per-chunk sorted column keys, in :meth:`TicketLog.append_chunk`
#: keyword order.
_CHUNK_COLUMNS = (
    "day_index", "start_hour_abs", "rack_index", "server_offset",
    "fault_code", "false_positive", "repair_hours", "batch_id",
)


class SimulationSession:
    """A resumable step/act simulation over one configured fleet.

    The session owns the full substrate — fleet, calendar,
    :class:`~repro.environment.conditions.EnvironmentSeries`, BMS and
    the named RNG streams — and advances in two interleaved motions:

    * :meth:`step` moves the *observation frontier* forward by ``n``
      days and returns the incremental :class:`TicketLog` chunk for
      exactly that window (globally ordered, finalized, possibly
      empty);
    * :meth:`apply` applies controller actions between steps through
      the sanctioned mutation points (:meth:`move_setpoints`,
      :meth:`swap_sku`).

    Determinism contract: generation still happens in whole
    :data:`CHUNK_DAYS` blocks — the session draws a block lazily the
    first time a step enters it, buffers the tickets, and releases
    per-step slices — so a session stepped to completion with no
    actions is **bit-identical** to batch :func:`simulate`.  Substrate
    mutations only ever touch days at or beyond the generation
    frontier (the next not-yet-drawn chunk boundary), which keeps
    already-drawn realizations intact and keeps replays under
    different controllers seed-comparable.
    """

    def __init__(self, config: "SimulationConfig | None" = None):
        from ..config import SimulationConfig

        self.config = config or SimulationConfig.paper_scale()
        (self.rngs, self.fleet, self.calendar,
         self.environment, self.bms) = _build_substrate(self.config)
        self._bms_system = BuildingManagementSystem(self.fleet)
        self._generator = _TicketGenerator(
            self.config, self.fleet, self.calendar, self.environment, self.rngs,
        )
        #: Observation frontier: first day not yet released by a step.
        self.day = 0
        #: Generation frontier: first day not yet drawn (chunk-aligned).
        self._generated_to = 0
        self._all_columns = _TicketColumns()
        self._chunks: list[dict[str, np.ndarray]] = []
        self._pending_mutations: list[tuple] = []
        #: Audit trail of every applied action: ``(frontier day, action)``.
        self.action_log: list[tuple[int, object]] = []
        self._result: SimulationResult | None = None

    @property
    def n_days(self) -> int:
        """Total observation-window length."""
        return self.config.n_days

    @property
    def exhausted(self) -> bool:
        """True once every day has been released by :meth:`step`."""
        return self.day >= self.n_days

    @property
    def generation_frontier(self) -> int:
        """First day whose realization is not yet drawn.

        Substrate mutations queued now take effect at this boundary (or
        the next chunk boundary after it) — never earlier.
        """
        return self._generated_to

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, n_days: int | None = None) -> TicketLog:
        """Advance the frontier and return the window's ticket chunk.

        Args:
            n_days: days to advance; ``None`` steps to completion.

        Returns a finalized, globally ordered (possibly empty)
        :class:`TicketLog` holding exactly the tickets whose
        ``day_index`` falls in the stepped window.  Concatenating every
        step's chunk reproduces the batch log byte for byte.
        """
        if self.exhausted:
            raise SimulationError(
                "session already stepped to the end of its observation window"
            )
        if n_days is None:
            n_days = self.n_days - self.day
        if n_days < 1:
            raise SimulationError(f"step needs n_days >= 1, got {n_days}")
        end = min(self.day + n_days, self.n_days)
        self._ensure_generated(end)
        chunk = self._window_log(self.day, end)
        self.day = end
        return chunk

    def apply(self, actions) -> None:
        """Apply controller actions at the current frontier.

        Each action must expose ``apply_to(session)`` (the
        :mod:`repro.autonomics` action vocabulary does); substrate
        effects route through the mutation points below and take effect
        at the generation frontier.  Every action is recorded in
        :attr:`action_log`.
        """
        if self.exhausted:
            raise SimulationError("cannot apply actions to an exhausted session")
        for action in actions:
            action.apply_to(self)
            self.action_log.append((self.day, action))

    # ------------------------------------------------------------------
    # sanctioned substrate mutation points
    # ------------------------------------------------------------------

    def move_setpoints(
        self,
        temp_delta_f: float = 0.0,
        rh_delta: float = 0.0,
        rack_indices: np.ndarray | list[int] | None = None,
    ) -> None:
        """Queue a cooling/humidity setpoint move.

        Takes effect at the generation frontier: the true
        :class:`EnvironmentSeries` columns and the BMS's observed
        readings shift together from that day on (sensor noise and
        dropouts were already drawn, so the observed shift is exact and
        consumes no RNG), and BMS alarms are re-scanned
        deterministically.  Already-drawn chunks keep their
        realization.
        """
        self._pending_mutations.append(
            ("setpoints", float(temp_delta_f), float(rh_delta), rack_indices)
        )

    def swap_sku(self, rack_ids, sku_name: str) -> None:
        """Queue a hardware-refresh SKU swap for the named racks.

        Takes effect at the generation frontier (the refresh point):
        the fleet inventory mutation routes through
        :meth:`~repro.datacenter.topology.Fleet.swap_sku` and the fault
        model is re-derived before the next chunk is drawn.
        """
        self._pending_mutations.append(("sku", tuple(rack_ids), str(sku_name)))

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def tickets_so_far(self) -> TicketLog:
        """Every generated ticket up to the generation frontier.

        Globally ordered and finalized; ticket ordinals are stable as
        the session advances (new chunks only ever append), which is
        what lets streaming consumers re-flatten incrementally.
        """
        return self._window_log(0, self._generated_to)

    def result(self) -> SimulationResult:
        """The completed run's result bundle.

        Only available once the session is exhausted; the ticket log is
        assembled through the exact batch code path (global lexsort
        over emission order), so a no-op session's result is
        bit-identical to :func:`simulate`.
        """
        if not self.exhausted:
            raise SimulationError(
                f"session stepped to day {self.day}/{self.n_days}; "
                "step to completion before asking for the result"
            )
        if self._result is None:
            tickets = self._all_columns.into_log()
            if len(tickets) == 0:
                raise SimulationError(
                    "simulation produced zero tickets; check rates and window length"
                )
            self._result = SimulationResult(
                config=self.config, fleet=self.fleet, calendar=self.calendar,
                environment=self.environment, bms=self.bms, tickets=tickets,
            )
        return self._result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _ensure_generated(self, upto: int) -> None:
        """Draw whole chunks until the generation frontier covers ``upto``."""
        while self._generated_to < upto:
            day0 = self._generated_to
            self._apply_pending_mutations(day0)
            block = min(CHUNK_DAYS, self.n_days - day0)
            chunk = _TicketColumns()
            self._generator.generate_chunk(day0, block, chunk)
            self._absorb_chunk(chunk)
            self._generated_to = day0 + block

    def _apply_pending_mutations(self, day0: int) -> None:
        """Fold queued substrate mutations in at a chunk boundary."""
        if not self._pending_mutations:
            return
        fleet_dirty = False
        bms_dirty = False
        for mutation in self._pending_mutations:
            if mutation[0] == "setpoints":
                _, temp_delta, rh_delta, rack_indices = mutation
                cols = (slice(None) if rack_indices is None
                        else np.asarray(rack_indices, dtype=np.int64))
                self.environment.shift_setpoints(
                    day0, temp_delta_f=temp_delta, rh_delta=rh_delta,
                    rack_indices=rack_indices,
                )
                # Observed telemetry follows the plant change; NaN
                # dropouts stay NaN under the shift.
                self.bms.temp_f[day0:, cols] += temp_delta
                self.bms.rh[day0:, cols] = np.clip(
                    self.bms.rh[day0:, cols] + rh_delta, 0.0, 100.0,
                )
                bms_dirty = True
            else:
                _, rack_ids, sku_name = mutation
                self.fleet.swap_sku(rack_ids, sku_name)
                fleet_dirty = True
        self._pending_mutations.clear()
        if bms_dirty:
            self.bms = self._bms_system.rebuild_log(self.bms.temp_f, self.bms.rh)
        if fleet_dirty:
            self._generator.refresh_substrate()

    def _absorb_chunk(self, chunk: _TicketColumns) -> None:
        """Buffer one generated chunk: emission order + sorted slice view."""
        if not chunk.rack_index:
            return
        for name in vars(chunk):
            getattr(self._all_columns, name).extend(getattr(chunk, name))
        day_index = np.concatenate(chunk.day_index)
        start_hour = np.concatenate(chunk.start_hour)
        rack_index = np.concatenate(chunk.rack_index)
        server_offset = np.concatenate(chunk.server_offset)
        fault_code = np.concatenate(chunk.fault_code)
        # Within one chunk this is exactly the global sort restricted
        # to the chunk's rows: day ranges of distinct chunks are
        # disjoint and day_index is the most-significant key.
        order = np.lexsort(
            (server_offset, rack_index, fault_code, start_hour, day_index)
        )
        self._chunks.append({
            "day_index": day_index[order],
            "start_hour_abs": start_hour[order],
            "rack_index": rack_index[order],
            "server_offset": server_offset[order],
            "fault_code": fault_code[order],
            "false_positive": np.concatenate(chunk.false_positive)[order],
            "repair_hours": np.concatenate(chunk.repair_hours)[order],
            "batch_id": np.concatenate(chunk.batch_id)[order],
        })

    def _window_log(self, start: int, end: int) -> TicketLog:
        """Finalized log of every buffered ticket with day in [start, end)."""
        log = TicketLog()
        for chunk in self._chunks:
            days = chunk["day_index"]
            lo = int(np.searchsorted(days, start, side="left"))
            hi = int(np.searchsorted(days, end, side="left"))
            if hi > lo:
                log.append_chunk(**{
                    name: chunk[name][lo:hi] for name in _CHUNK_COLUMNS
                })
        log.finalize()
        return log


def _generate_tickets(
    config: "SimulationConfig",
    fleet: Fleet,
    calendar: SimCalendar,
    environment: EnvironmentSeries,
    rngs: RngRegistry,
) -> TicketLog:
    """Batch generation over a pre-built substrate (see module docstring).

    Kept as the monolithic entry point for callers that already own a
    substrate; :func:`simulate` itself now steps a
    :class:`SimulationSession`, which drives the same
    :class:`_TicketGenerator` chunk loop.
    """
    generator = _TicketGenerator(config, fleet, calendar, environment, rngs)
    columns = _TicketColumns()
    for day0 in range(0, config.n_days, CHUNK_DAYS):
        block = min(CHUNK_DAYS, config.n_days - day0)
        generator.generate_chunk(day0, block, columns)
    log = columns.into_log()
    if len(log) == 0:
        raise SimulationError(
            "simulation produced zero tickets; check rates and window length"
        )
    return log
