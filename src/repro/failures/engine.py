"""The failure engine: turns a configured fleet into 2.5 years of tickets.

Generation is vectorized over day-blocks × racks: the engine

1. evaluates every fault type's expected per-rack-day count matrix
   through the ground-truth hazard composition
   (:class:`~repro.failures.faultmodel.FaultModel`), consuming whole
   :class:`~repro.environment.conditions.EnvironmentSeries` and
   :class:`~repro.units.SimCalendar` columns at once,
2. Poisson-samples the full matrix per fault and materializes tickets
   (detection hour, affected server, resolution time, false-positive
   flag) in a handful of ``np.repeat``/``np.concatenate`` passes,
3. draws *correlated* events — SKU batch failures and rack-scale outages
   — as a sparse post-pass over the rare (day, rack) cells the event
   draw selects; these take several devices down simultaneously and are
   what give the concurrent-failure metric μ its heavy tail (Figs 11-13),
4. records everything in a columnar :class:`~repro.failures.tickets.TicketLog`
   (sorted by day and detection hour) alongside the BMS's observed
   environmental telemetry.

Determinism contract: every stochastic consumer draws from its own named
:class:`~repro.rng.RngRegistry` stream (``failures:<FAULT>`` for the
independent Poisson path, ``failures:batch`` and ``failures:outage`` for
the correlated post-passes), so equal configs give bit-identical ticket
logs and adding a new consumer never perturbs existing streams.  The
day-block chunking (:data:`CHUNK_DAYS`) bounds peak memory at paper
scale; it is a fixed constant, so results never depend on it at runtime.

The result object bundles everything an analysis needs; the analysis
layer must treat it the way the paper treats field data — tickets,
sensor readings and inventory only, never the hazard model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datacenter.builder import build_fleet
from ..datacenter.topology import Fleet
from ..environment.bms import BmsLog, BuildingManagementSystem
from ..environment.conditions import EnvironmentSeries
from ..errors import SimulationError
from ..rng import RngRegistry
from ..units import SimCalendar
from .diurnal import DiurnalProfiles
from .faultmodel import FaultModel
from .repair import RepairModel
from .tickets import FAULT_CODE, FaultType, TicketLog

if TYPE_CHECKING:  # avoid a circular import: config depends on faultmodel
    from ..config import SimulationConfig

# Day-block size for chunked matrix generation.  A fixed constant (not a
# knob): the per-fault draw sequence depends on where block boundaries
# fall, so changing this value changes the sampled realization — keep it
# stable to keep golden aggregates stable.
CHUNK_DAYS = 365


@dataclass
class SimulationResult:
    """Everything produced by one simulation run.

    Attributes:
        config: the configuration that produced this run.
        fleet: the simulated estate (topology + inventory).
        calendar: day-index → calendar-feature mapping.
        environment: *true* per-rack daily inlet conditions (ground
            truth — analyses should prefer ``bms`` readings).
        bms: observed (noisy) environmental telemetry and alarms.
        tickets: the full RMA ticket log.
    """

    config: "SimulationConfig"
    fleet: Fleet
    calendar: SimCalendar
    environment: EnvironmentSeries
    bms: BmsLog
    tickets: TicketLog

    @property
    def n_days(self) -> int:
        """Observation-window length."""
        return self.config.n_days

    def summary(self) -> str:
        """One-paragraph run description for logs and examples."""
        n_tickets = len(self.tickets)
        n_fp = int(self.tickets.false_positive.sum())
        return (
            f"{self.fleet.n_racks} racks / {self.fleet.n_servers} servers "
            f"simulated for {self.n_days} days: {n_tickets} RMA tickets "
            f"({n_fp} false positives, "
            f"{int(self.tickets.hardware_mask().sum())} hardware)"
        )


class _TicketColumns:
    """Accumulates aligned ticket-column chunks across the whole run."""

    def __init__(self) -> None:
        self.day_index: list[np.ndarray] = []
        self.start_hour: list[np.ndarray] = []
        self.rack_index: list[np.ndarray] = []
        self.server_offset: list[np.ndarray] = []
        self.fault_code: list[np.ndarray] = []
        self.false_positive: list[np.ndarray] = []
        self.repair_hours: list[np.ndarray] = []
        self.batch_id: list[np.ndarray] = []

    def emit(
        self,
        day_index: np.ndarray,
        start_hour: np.ndarray,
        rack_index: np.ndarray,
        server_offset: np.ndarray,
        fault: FaultType,
        false_positive: np.ndarray,
        repair_hours: np.ndarray,
        batch_id: np.ndarray,
    ) -> None:
        count = len(rack_index)
        if count == 0:
            return
        self.day_index.append(np.asarray(day_index, dtype=np.int64))
        self.start_hour.append(np.asarray(start_hour, dtype=float))
        self.rack_index.append(np.asarray(rack_index, dtype=np.int64))
        self.server_offset.append(np.asarray(server_offset, dtype=np.int64))
        self.fault_code.append(np.full(count, FAULT_CODE[fault], dtype=np.int64))
        self.false_positive.append(np.asarray(false_positive, dtype=bool))
        self.repair_hours.append(np.asarray(repair_hours, dtype=float))
        self.batch_id.append(np.asarray(batch_id, dtype=np.int64))

    def into_log(self) -> TicketLog:
        """Concatenate, day/hour-sort, and finalize the columnar log."""
        log = TicketLog()
        if self.rack_index:
            day_index = np.concatenate(self.day_index)
            start_hour = np.concatenate(self.start_hour)
            rack_index = np.concatenate(self.rack_index)
            server_offset = np.concatenate(self.server_offset)
            fault_code = np.concatenate(self.fault_code)
            false_positive = np.concatenate(self.false_positive)
            repair_hours = np.concatenate(self.repair_hours)
            batch_id = np.concatenate(self.batch_id)
            # Chronological log order (the per-fault passes produce
            # fault-major order); ties broken deterministically.
            order = np.lexsort(
                (server_offset, rack_index, fault_code, start_hour, day_index)
            )
            log.append_chunk(
                day_index=day_index[order],
                start_hour_abs=start_hour[order],
                rack_index=rack_index[order],
                server_offset=server_offset[order],
                fault_code=fault_code[order],
                false_positive=false_positive[order],
                repair_hours=repair_hours[order],
                batch_id=batch_id[order],
            )
        log.finalize()
        return log


def _build_substrate(
    config: "SimulationConfig",
) -> tuple[RngRegistry, Fleet, SimCalendar, EnvironmentSeries, BmsLog]:
    """Deterministic pre-ticket substrate: fleet, calendar, environment, BMS.

    Shared by :func:`simulate` and the run cache's load path — the cache
    rebuilds everything cheap from the config and only restores the
    (expensive, stochastic) ticket log from disk.
    """
    rngs = RngRegistry(config.seed)
    fleet = build_fleet(config.fleet, rngs)
    calendar = SimCalendar(
        start_day_of_week=config.start_day_of_week,
        start_day_of_year=config.start_day_of_year,
    )
    environment = EnvironmentSeries(
        fleet, config.n_days, rngs, start_day_of_year=config.start_day_of_year,
    )
    bms = BuildingManagementSystem(fleet).collect(environment, rngs)
    return rngs, fleet, calendar, environment, bms


def simulate(config: "SimulationConfig | None" = None) -> SimulationResult:
    """Run a full simulation and return its result bundle.

    Args:
        config: run configuration; defaults to paper scale with seed 0.

    The run is fully deterministic in ``config`` (including the seed).
    """
    from ..config import SimulationConfig

    config = config or SimulationConfig.paper_scale()
    rngs, fleet, calendar, environment, bms = _build_substrate(config)
    tickets = _generate_tickets(config, fleet, calendar, environment, rngs)
    return SimulationResult(
        config=config, fleet=fleet, calendar=calendar,
        environment=environment, bms=bms, tickets=tickets,
    )


def _generate_tickets(
    config: "SimulationConfig",
    fleet: Fleet,
    calendar: SimCalendar,
    environment: EnvironmentSeries,
    rngs: RngRegistry,
) -> TicketLog:
    """Chunked vectorized generation (see module docstring)."""
    arrays = fleet.arrays()
    model = FaultModel(fleet, config.rates)
    repair = RepairModel()
    diurnal = DiurnalProfiles()
    fp_rate = config.rates.false_positive_rate
    n_racks = arrays.n_racks
    n_days = config.n_days

    # Outage severity depends on the power-delivery design (Table I): a
    # 5-nines facility's redundant feeds contain an outage to a smaller
    # slice of the rack than a 3-nines facility's.
    nines_by_dc = {dc.name: dc.spec.availability_nines for dc in fleet.datacenters}
    per_dc_nines = np.array([nines_by_dc[name] for name in arrays.dc_names])
    rack_nines = per_dc_nines[arrays.dc_code]
    outage_low = np.where(rack_nines <= 3, 0.15, 0.08)
    outage_high = np.where(rack_nines <= 3, 0.40, 0.20)

    columns = _TicketColumns()
    fault_rngs = {
        fault: rngs.stream(f"failures:{fault.name}") for fault in FaultType
    }
    batch_rng = rngs.stream("failures:batch")
    outage_rng = rngs.stream("failures:outage")
    next_batch_id = 0

    for day0 in range(0, n_days, CHUNK_DAYS):
        block = min(CHUNK_DAYS, n_days - day0)
        features = calendar.feature_arrays(block, start_day=day0)
        commissioned = (
            arrays.commission_day[np.newaxis, :] <= features.day_index[:, np.newaxis]
        )
        temp_f = environment.temp_f[day0:day0 + block]
        rh = environment.rh[day0:day0 + block]
        expected = model.expected_counts_matrix(features, temp_f, rh, commissioned)

        # Independent failures: Poisson per (day, rack) cell per fault.
        for fault, mean_counts in expected.items():
            rng = fault_rngs[fault]
            counts = rng.poisson(mean_counts).ravel()
            total = int(counts.sum())
            if total == 0:
                continue
            cell = np.repeat(np.arange(counts.size), counts)
            day_index = day0 + cell // n_racks
            rack_index = cell % n_racks
            capacity = arrays.n_servers[rack_index]
            server_offset = (rng.random(total) * capacity).astype(np.int64)
            start_hour = day_index * 24.0 + diurnal.sample_hours(fault, total, rng)
            columns.emit(
                day_index=day_index,
                start_hour=start_hour,
                rack_index=rack_index,
                server_offset=server_offset,
                fault=fault,
                false_positive=rng.random(total) < fp_rate,
                repair_hours=repair.sample_hours(fault, total, rng),
                batch_id=np.full(total, -1, dtype=np.int64),
            )

        # Correlated batch failures (bad component lots, shared planes):
        # sparse post-pass over the rare cells the event draw selects.
        batch_rate = model.batch_event_rate_matrix(features, commissioned)
        batch_hits = np.argwhere(batch_rng.random(batch_rate.shape) < batch_rate)
        if len(batch_hits):
            hit_racks = batch_hits[:, 1]
            raw_sizes = 1 + batch_rng.geometric(
                1.0 / arrays.batch_mean_size[hit_racks].astype(float)
            )
            sizes = np.minimum(raw_sizes, arrays.n_servers[hit_racks])
            # Storage-heavy SKUs mostly batch-fail disk lots, sometimes
            # a shared backplane (whole servers); dense compute SKUs
            # batch-fail memory lots (bad DIMM batches) with occasional
            # PSU/backplane lots.  The DIMM share is what makes
            # component-level spares attractive for the compute workload
            # in Fig 13; the PSU share keeps SF's per-resource peaks
            # conservative (its component plan is not cheaper).
            route = batch_rng.random(len(batch_hits))
            for i, (day_off, rack) in enumerate(batch_hits.tolist()):
                size = int(sizes[i])
                if arrays.hdds_per_server[rack] >= 8:
                    fault = (FaultType.DISK if route[i] < 0.55
                             else FaultType.SERVER)
                else:
                    fault = (FaultType.MEMORY if route[i] < 0.8
                             else FaultType.SERVER)
                offsets = batch_rng.choice(
                    arrays.n_servers[rack], size=size, replace=False,
                )
                # Batch failures cascade through the day (a bad lot
                # trips device after device), so hourly windows see only
                # part of the batch concurrently — the temporal-
                # multiplexing effect behind the daily-vs-hourly
                # provisioning gap (Fig 10 vs 12).
                start = (day0 + day_off) * 24.0 + batch_rng.random() * 10.0
                columns.emit(
                    day_index=np.full(size, day0 + day_off, dtype=np.int64),
                    start_hour=np.full(size, start) + batch_rng.random(size) * 14.0,
                    rack_index=np.full(size, rack, dtype=np.int64),
                    server_offset=offsets.astype(np.int64),
                    fault=fault,
                    false_positive=np.zeros(size, dtype=bool),
                    repair_hours=repair.sample_hours(fault, size, batch_rng),
                    batch_id=np.full(size, next_batch_id, dtype=np.int64),
                )
                next_batch_id += 1

        # Rack-scale outages (power strip / ToR failures).
        outage_rate = model.rack_outage_rate_matrix(features, commissioned)
        outage_hits = np.argwhere(outage_rng.random(outage_rate.shape) < outage_rate)
        if len(outage_hits):
            hit_racks = outage_hits[:, 1]
            fractions = outage_rng.uniform(
                outage_low[hit_racks], outage_high[hit_racks],
            )
            sizes = np.minimum(
                np.maximum(2, np.round(fractions * arrays.n_servers[hit_racks])),
                arrays.n_servers[hit_racks],
            ).astype(np.int64)
            starts = (
                (day0 + outage_hits[:, 0]) * 24.0
                + outage_rng.random(len(outage_hits)) * 24.0
            )
            for i, (day_off, rack) in enumerate(outage_hits.tolist()):
                size = int(sizes[i])
                offsets = outage_rng.choice(
                    arrays.n_servers[rack], size=size, replace=False,
                )
                columns.emit(
                    day_index=np.full(size, day0 + day_off, dtype=np.int64),
                    start_hour=np.full(size, starts[i]),
                    rack_index=np.full(size, rack, dtype=np.int64),
                    server_offset=offsets.astype(np.int64),
                    fault=FaultType.POWER,
                    false_positive=np.zeros(size, dtype=bool),
                    repair_hours=repair.sample_hours(FaultType.POWER, size, outage_rng),
                    batch_id=np.full(size, next_batch_id, dtype=np.int64),
                )
                next_batch_id += 1

    log = columns.into_log()
    if len(log) == 0:
        raise SimulationError(
            "simulation produced zero tickets; check rates and window length"
        )
    return log
