"""The failure engine: turns a configured fleet into 2.5 years of tickets.

Day-by-day, vectorized over racks, the engine

1. evaluates every fault type's expected per-rack count through the
   ground-truth hazard composition (:class:`~repro.failures.faultmodel.FaultModel`),
2. draws independent Poisson ticket counts and materializes tickets
   (detection hour, affected server, resolution time, false-positive flag),
3. draws *correlated* events — SKU batch failures and rack-scale outages —
   which take several devices down simultaneously and are what give the
   concurrent-failure metric μ its heavy tail (Figs 11-13), and
4. records everything in a columnar :class:`~repro.failures.tickets.TicketLog`
   alongside the BMS's observed environmental telemetry.

The result object bundles everything an analysis needs; the analysis
layer must treat it the way the paper treats field data — tickets,
sensor readings and inventory only, never the hazard model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datacenter.builder import build_fleet
from ..datacenter.topology import Fleet
from ..environment.bms import BmsLog, BuildingManagementSystem
from ..environment.conditions import EnvironmentSeries
from ..errors import SimulationError
from ..rng import RngRegistry
from ..units import SimCalendar
from .diurnal import DiurnalProfiles
from .faultmodel import FaultModel
from .repair import RepairModel
from .tickets import FAULT_CODE, FaultType, TicketLog

if TYPE_CHECKING:  # avoid a circular import: config depends on faultmodel
    from ..config import SimulationConfig


@dataclass
class SimulationResult:
    """Everything produced by one simulation run.

    Attributes:
        config: the configuration that produced this run.
        fleet: the simulated estate (topology + inventory).
        calendar: day-index → calendar-feature mapping.
        environment: *true* per-rack daily inlet conditions (ground
            truth — analyses should prefer ``bms`` readings).
        bms: observed (noisy) environmental telemetry and alarms.
        tickets: the full RMA ticket log.
    """

    config: "SimulationConfig"
    fleet: Fleet
    calendar: SimCalendar
    environment: EnvironmentSeries
    bms: BmsLog
    tickets: TicketLog

    @property
    def n_days(self) -> int:
        """Observation-window length."""
        return self.config.n_days

    def summary(self) -> str:
        """One-paragraph run description for logs and examples."""
        n_tickets = len(self.tickets)
        n_fp = int(self.tickets.false_positive.sum())
        return (
            f"{self.fleet.n_racks} racks / {self.fleet.n_servers} servers "
            f"simulated for {self.n_days} days: {n_tickets} RMA tickets "
            f"({n_fp} false positives, "
            f"{int(self.tickets.hardware_mask().sum())} hardware)"
        )


class _DayEmitter:
    """Accumulates one day's tickets before appending them as one chunk."""

    def __init__(self, log: TicketLog):
        self.log = log
        self.reset()

    def reset(self) -> None:
        self.day_index: list[np.ndarray] = []
        self.start_hour: list[np.ndarray] = []
        self.rack_index: list[np.ndarray] = []
        self.server_offset: list[np.ndarray] = []
        self.fault_code: list[np.ndarray] = []
        self.false_positive: list[np.ndarray] = []
        self.repair_hours: list[np.ndarray] = []
        self.batch_id: list[np.ndarray] = []

    def emit(
        self,
        day: int,
        start_hour: np.ndarray,
        rack_index: np.ndarray,
        server_offset: np.ndarray,
        fault: FaultType,
        false_positive: np.ndarray,
        repair_hours: np.ndarray,
        batch_id: np.ndarray,
    ) -> None:
        count = len(rack_index)
        if count == 0:
            return
        self.day_index.append(np.full(count, day, dtype=np.int64))
        self.start_hour.append(start_hour)
        self.rack_index.append(rack_index.astype(np.int64))
        self.server_offset.append(server_offset.astype(np.int64))
        self.fault_code.append(np.full(count, FAULT_CODE[fault], dtype=np.int64))
        self.false_positive.append(false_positive.astype(bool))
        self.repair_hours.append(repair_hours)
        self.batch_id.append(batch_id.astype(np.int64))

    def flush(self) -> None:
        if not self.rack_index:
            return
        self.log.append_chunk(
            day_index=np.concatenate(self.day_index),
            start_hour_abs=np.concatenate(self.start_hour),
            rack_index=np.concatenate(self.rack_index),
            server_offset=np.concatenate(self.server_offset),
            fault_code=np.concatenate(self.fault_code),
            false_positive=np.concatenate(self.false_positive),
            repair_hours=np.concatenate(self.repair_hours),
            batch_id=np.concatenate(self.batch_id),
        )
        self.reset()


def simulate(config: "SimulationConfig | None" = None) -> SimulationResult:
    """Run a full simulation and return its result bundle.

    Args:
        config: run configuration; defaults to paper scale with seed 0.

    The run is fully deterministic in ``config`` (including the seed).
    """
    from ..config import SimulationConfig

    config = config or SimulationConfig.paper_scale()
    rngs = RngRegistry(config.seed)
    fleet = build_fleet(config.fleet, rngs)
    calendar = SimCalendar(
        start_day_of_week=config.start_day_of_week,
        start_day_of_year=config.start_day_of_year,
    )
    environment = EnvironmentSeries(
        fleet, config.n_days, rngs, start_day_of_year=config.start_day_of_year,
    )
    bms = BuildingManagementSystem(fleet).collect(environment, rngs)
    tickets = _generate_tickets(config, fleet, calendar, environment, rngs)
    return SimulationResult(
        config=config, fleet=fleet, calendar=calendar,
        environment=environment, bms=bms, tickets=tickets,
    )


def _generate_tickets(
    config: "SimulationConfig",
    fleet: Fleet,
    calendar: SimCalendar,
    environment: EnvironmentSeries,
    rngs: RngRegistry,
) -> TicketLog:
    """Core generation loop (see module docstring)."""
    arrays = fleet.arrays()
    model = FaultModel(fleet, config.rates)
    repair = RepairModel()
    diurnal = DiurnalProfiles()
    rng = rngs.stream("failures")
    fp_rate = config.rates.false_positive_rate

    # Outage severity depends on the power-delivery design (Table I): a
    # 5-nines facility's redundant feeds contain an outage to a smaller
    # slice of the rack than a 3-nines facility's.
    nines_by_dc = {dc.name: dc.spec.availability_nines for dc in fleet.datacenters}
    per_dc_outage_bounds = {
        name: ((0.15, 0.40) if nines <= 3 else (0.08, 0.20))
        for name, nines in nines_by_dc.items()
    }
    rack_outage_bounds = [
        per_dc_outage_bounds[arrays.dc_names[code]] for code in arrays.dc_code
    ]

    log = TicketLog()
    emitter = _DayEmitter(log)
    next_batch_id = 0
    n_racks = arrays.n_racks

    for day in range(config.n_days):
        calendar_day = calendar.day(day)
        commissioned = arrays.commission_day <= day
        if not commissioned.any():
            continue
        temp_f, rh = environment.day_conditions(day)
        expected = model.expected_counts(calendar_day, temp_f, rh, commissioned)

        # Independent failures: Poisson per rack per fault type.
        for fault, mean_counts in expected.items():
            counts = rng.poisson(mean_counts)
            total = int(counts.sum())
            if total == 0:
                continue
            rack_index = np.repeat(np.arange(n_racks), counts)
            capacity = arrays.n_servers[rack_index]
            server_offset = (rng.random(total) * capacity).astype(np.int64)
            start_hour = day * 24.0 + diurnal.sample_hours(fault, total, rng)
            emitter.emit(
                day=day,
                start_hour=start_hour,
                rack_index=rack_index,
                server_offset=server_offset,
                fault=fault,
                false_positive=rng.random(total) < fp_rate,
                repair_hours=repair.sample_hours(fault, total, rng),
                batch_id=np.full(total, -1, dtype=np.int64),
            )

        # Correlated batch failures (bad component lots, shared planes).
        batch_hits = np.flatnonzero(
            rng.random(n_racks) < model.batch_event_rate(calendar_day, commissioned)
        )
        for rack in batch_hits.tolist():
            mean_size = float(arrays.batch_mean_size[rack])
            size = int(min(
                arrays.n_servers[rack],
                1 + rng.geometric(1.0 / mean_size),
            ))
            # Storage-heavy SKUs batch-fail disks; dense compute SKUs
            # batch-fail at server level (backplane/PSU lots).
            # Storage-heavy SKUs mostly batch-fail disk lots, sometimes
            # a shared backplane (whole servers); dense compute SKUs
            # batch-fail memory lots (bad DIMM batches) with occasional
            # PSU/backplane lots.  The DIMM share is what makes
            # component-level spares attractive for the compute workload
            # in Fig 13; the PSU share keeps SF's per-resource peaks
            # conservative (its component plan is not cheaper).
            if arrays.hdds_per_server[rack] >= 8:
                fault = (FaultType.DISK if rng.random() < 0.55
                         else FaultType.SERVER)
            else:
                fault = (FaultType.MEMORY if rng.random() < 0.8
                         else FaultType.SERVER)
            offsets = rng.choice(arrays.n_servers[rack], size=size, replace=False)
            # Batch failures cascade through the day (a bad lot trips
            # device after device), so hourly windows see only part of
            # the batch concurrently — the temporal-multiplexing effect
            # behind the daily-vs-hourly provisioning gap (Fig 10 vs 12).
            start = day * 24.0 + rng.random() * 10.0
            emitter.emit(
                day=day,
                start_hour=np.full(size, start) + rng.random(size) * 14.0,
                rack_index=np.full(size, rack, dtype=np.int64),
                server_offset=offsets.astype(np.int64),
                fault=fault,
                false_positive=np.zeros(size, dtype=bool),
                repair_hours=repair.sample_hours(fault, size, rng),
                batch_id=np.full(size, next_batch_id, dtype=np.int64),
            )
            next_batch_id += 1

        # Rack-scale outages (power strip / ToR failures).
        outage_hits = np.flatnonzero(
            rng.random(n_racks) < model.rack_outage_rate(calendar_day, commissioned)
        )
        for rack in outage_hits.tolist():
            low, high = rack_outage_bounds[rack]
            fraction = rng.uniform(low, high)
            size = max(2, int(round(fraction * arrays.n_servers[rack])))
            size = int(min(size, arrays.n_servers[rack]))
            offsets = rng.choice(arrays.n_servers[rack], size=size, replace=False)
            start = day * 24.0 + rng.random() * 24.0
            emitter.emit(
                day=day,
                start_hour=np.full(size, start),
                rack_index=np.full(size, rack, dtype=np.int64),
                server_offset=offsets.astype(np.int64),
                fault=FaultType.POWER,
                false_positive=np.zeros(size, dtype=bool),
                repair_hours=repair.sample_hours(FaultType.POWER, size, rng),
                batch_id=np.full(size, next_batch_id, dtype=np.int64),
            )
            next_batch_id += 1

        emitter.flush()

    log.finalize()
    if len(log) == 0:
        raise SimulationError(
            "simulation produced zero tickets; check rates and window length"
        )
    return log
