"""Intra-day (diurnal) failure arrival profiles.

The engine samples each ticket's detection hour from a per-category
hour-of-day profile instead of uniformly:

* **software/boot** tickets track the deployment and traffic day —
  concentrated in business hours (the within-day analogue of Fig 3's
  weekday effect);
* **hardware** tickets are mildly load-following (afternoon peak, when
  utilization and inlet temperature top out);
* **correlated events** keep their own cascade timing in the engine.

Profiles are 24-bin densities sampled by inverse CDF; each draw gets
uniform jitter within its hour so timestamps stay continuous.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .tickets import FAULT_CATEGORY, FaultType, TicketCategory


def _normalized(profile: np.ndarray) -> np.ndarray:
    profile = np.asarray(profile, dtype=float)
    if profile.shape != (24,):
        raise ConfigError(f"profile must have 24 bins, got {profile.shape}")
    if (profile < 0).any() or profile.sum() <= 0:
        raise ConfigError("profile must be non-negative with positive mass")
    return profile / profile.sum()


def business_hours_profile(
    peak_hour: float = 14.0,
    day_night_ratio: float = 4.0,
) -> np.ndarray:
    """Bell-shaped daytime profile: heavy 9-18h, light overnight."""
    if day_night_ratio < 1.0:
        raise ConfigError("day_night_ratio must be >= 1")
    hours = np.arange(24)
    # Circular distance to the peak hour.
    distance = np.minimum(np.abs(hours - peak_hour),
                          24.0 - np.abs(hours - peak_hour))
    base = 1.0 + (day_night_ratio - 1.0) * np.exp(-(distance / 5.0) ** 2)
    return _normalized(base)


def load_following_profile(amplitude: float = 0.35) -> np.ndarray:
    """Mild sinusoid peaking mid-afternoon (thermal + utilization load)."""
    if not 0.0 <= amplitude < 1.0:
        raise ConfigError("amplitude must be in [0, 1)")
    hours = np.arange(24)
    base = 1.0 + amplitude * np.cos(2.0 * np.pi * (hours - 15) / 24.0)
    return _normalized(base)


def uniform_profile() -> np.ndarray:
    """Flat profile (random component wear-out has no clock)."""
    return _normalized(np.ones(24))


class DiurnalProfiles:
    """Per-fault-type hour-of-day arrival densities."""

    def __init__(self) -> None:
        software = business_hours_profile(peak_hour=14.0, day_night_ratio=4.0)
        boot = business_hours_profile(peak_hour=11.0, day_night_ratio=3.0)
        hardware = load_following_profile(amplitude=0.35)
        other = uniform_profile()
        self._profiles: dict[FaultType, np.ndarray] = {}
        for fault in FaultType:
            category = FAULT_CATEGORY[fault]
            if category is TicketCategory.SOFTWARE:
                self._profiles[fault] = software
            elif category is TicketCategory.BOOT:
                self._profiles[fault] = boot
            elif category is TicketCategory.HARDWARE:
                self._profiles[fault] = hardware
            else:
                self._profiles[fault] = other
        self._cdfs = {
            fault: np.cumsum(profile)
            for fault, profile in self._profiles.items()
        }

    def profile(self, fault: FaultType) -> np.ndarray:
        """The 24-bin density for one fault type."""
        return self._profiles[fault]

    def sample_hours(
        self,
        fault: FaultType,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``size`` intra-day hours (floats in [0, 24))."""
        if size < 0:
            raise ConfigError(f"size must be >= 0, got {size}")
        if size == 0:
            return np.empty(0)
        cdf = self._cdfs[fault]
        bins = np.searchsorted(cdf, rng.random(size), side="right")
        bins = np.minimum(bins, 23)
        return bins + rng.random(size)
