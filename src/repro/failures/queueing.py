"""Technician queueing: repair capacity as an operational knob.

§II's OpEx questions include planning "for repair/service".  The base
engine samples each ticket's time-to-resolution independently — an
infinite-technician idealization.  This module re-plays a run's
hardware tickets through a finite per-DC technician pool (an M/G/c-style
queue): when every technician is busy, repairs wait, downtime stretches,
and the concurrent-failure metric μ — hence spare provisioning — gets
worse.  Correlated bursts hurt doubly: they are exactly the moments the
queue saturates.

The replay is counterfactual post-processing: it never changes failure
*occurrence*, only resolution timing, so any provisioning analysis can
be re-run on the adjusted log to answer "how many technicians per DC do
my spares assume?".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..failures.engine import SimulationResult
from ..failures.tickets import TicketLog


@dataclass(frozen=True)
class QueueingOutcome:
    """Result of replaying repairs through finite technician pools.

    Attributes:
        adjusted_log: ticket log with stretched ``repair_hours``
            (detection times unchanged; resolution = wait + service).
        waiting_hours: per-ticket queueing delay (0 where a technician
            was free immediately).
        technicians_per_dc: the evaluated staffing.
    """

    adjusted_log: TicketLog
    waiting_hours: np.ndarray
    technicians_per_dc: dict[str, int]

    @property
    def mean_wait_hours(self) -> float:
        """Average queueing delay across hardware tickets."""
        return float(self.waiting_hours.mean()) if self.waiting_hours.size else 0.0

    @property
    def delayed_fraction(self) -> float:
        """Share of hardware tickets that had to wait."""
        if self.waiting_hours.size == 0:
            return 0.0
        return float((self.waiting_hours > 1e-9).mean())


def apply_technician_queue(
    result: SimulationResult,
    technicians_per_dc: dict[str, int] | int,
) -> QueueingOutcome:
    """Replay hardware repairs through per-DC technician pools.

    Args:
        result: simulation run (its log is not modified).
        technicians_per_dc: pool size per DC name, or one size for all.

    Service discipline is first-come-first-served per DC on hardware
    tickets only (software/boot resolutions are remote/automated and
    keep their original timing).
    """
    arrays = result.fleet.arrays()
    if isinstance(technicians_per_dc, int):
        technicians_per_dc = {
            name: technicians_per_dc for name in arrays.dc_names
        }
    for name in arrays.dc_names:
        if name not in technicians_per_dc:
            raise ConfigError(f"no technician count for {name}")
        if technicians_per_dc[name] < 1:
            raise ConfigError(f"{name}: need at least one technician")

    log = result.tickets
    hardware = log.hardware_mask() & log.true_positive_mask()
    dc_of_ticket = arrays.dc_code[log.rack_index]

    new_repair = log.repair_hours.copy()
    waiting = np.zeros(int(hardware.sum()))
    wait_cursor = 0

    for dc_index, dc_name in enumerate(arrays.dc_names):
        members = np.flatnonzero(hardware & (dc_of_ticket == dc_index))
        if members.size == 0:
            continue
        order = members[np.argsort(log.start_hour_abs[members], kind="stable")]
        # Heap of technician-free times; every technician starts idle.
        free_at = [0.0] * technicians_per_dc[dc_name]
        heapq.heapify(free_at)
        for ticket in order.tolist():
            arrival = float(log.start_hour_abs[ticket])
            service = float(log.repair_hours[ticket])
            earliest = heapq.heappop(free_at)
            start = max(arrival, earliest)
            finish = start + service
            heapq.heappush(free_at, finish)
            wait = start - arrival
            new_repair[ticket] = wait + service
            waiting[wait_cursor] = wait
            wait_cursor += 1

    adjusted = TicketLog()
    adjusted.append_chunk(
        day_index=log.day_index,
        start_hour_abs=log.start_hour_abs,
        rack_index=log.rack_index,
        server_offset=log.server_offset,
        fault_code=log.fault_code,
        false_positive=log.false_positive,
        repair_hours=new_repair,
        batch_id=log.batch_id,
    )
    adjusted.finalize()
    return QueueingOutcome(
        adjusted_log=adjusted,
        waiting_hours=waiting[:wait_cursor],
        technicians_per_dc=dict(technicians_per_dc),
    )


def staffing_curve(
    result: SimulationResult,
    pool_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> dict[int, float]:
    """Mean queueing delay as a function of per-DC technician count.

    The curve answers the staffing question directly: the knee is where
    extra technicians stop buying availability.
    """
    if not pool_sizes:
        raise ConfigError("need at least one pool size")
    return {
        size: apply_technician_queue(result, size).mean_wait_hours
        for size in pool_sizes
    }
