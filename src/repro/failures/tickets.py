"""RMA ticket taxonomy and the columnar ticket log.

§IV: "A common reporting mechanism, called RMA (Return Merchandise
Authorization) tickets, is used in industry for detection and
identification of hardware and software failures."  Ticket descriptions
fall into four categories — hardware, software, boot, others — with the
per-type breakdown of Table II.  Tickets can be *false positives* ("no
specific error is identified"); the paper uses only true positives in
its analyses, and so do ours (the log keeps both, flagged).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import DataError


class TicketCategory(Enum):
    """Top-level RMA categories (Table II rows groups)."""

    HARDWARE = "Hardware"
    SOFTWARE = "Software"
    BOOT = "Boot"
    OTHERS = "Others"


class FaultType(Enum):
    """Fine-grained fault types, matching Table II's rows."""

    TIMEOUT = "Timeout failure"
    DEPLOYMENT = "Deployment failure"
    CRASH = "Node/Agent crash"
    PXE_BOOT = "PXE boot failure"
    REBOOT = "Reboot failure"
    DISK = "Disk failure"
    MEMORY = "Memory failure"
    POWER = "Power failure"
    SERVER = "Server failure"
    NETWORK = "Network failure"
    OTHER = "Others"


FAULT_CATEGORY: dict[FaultType, TicketCategory] = {
    FaultType.TIMEOUT: TicketCategory.SOFTWARE,
    FaultType.DEPLOYMENT: TicketCategory.SOFTWARE,
    FaultType.CRASH: TicketCategory.SOFTWARE,
    FaultType.PXE_BOOT: TicketCategory.BOOT,
    FaultType.REBOOT: TicketCategory.BOOT,
    FaultType.DISK: TicketCategory.HARDWARE,
    FaultType.MEMORY: TicketCategory.HARDWARE,
    FaultType.POWER: TicketCategory.HARDWARE,
    FaultType.SERVER: TicketCategory.HARDWARE,
    FaultType.NETWORK: TicketCategory.HARDWARE,
    FaultType.OTHER: TicketCategory.OTHERS,
}

# Stable integer codes for the columnar log.
FAULT_TYPES: tuple[FaultType, ...] = tuple(FaultType)
FAULT_CODE: dict[FaultType, int] = {fault: i for i, fault in enumerate(FAULT_TYPES)}

HARDWARE_FAULTS: tuple[FaultType, ...] = tuple(
    fault for fault, category in FAULT_CATEGORY.items()
    if category == TicketCategory.HARDWARE
)


@dataclass(frozen=True)
class RmaTicket:
    """A single materialized RMA ticket (row view into the log).

    Attributes:
        day_index: simulation day the fault was detected.
        start_hour_abs: absolute hour (day_index * 24 + intra-day hour).
        rack_index: flat rack index into the fleet arrays.
        server_offset: server position within the rack.
        fault: fine-grained fault type.
        false_positive: True when investigation found no real fault.
        repair_hours: time to resolution (device unavailable meanwhile,
            for hardware faults).
        batch_id: >= 0 when this ticket belongs to a correlated batch
            event; -1 for independent failures.
    """

    day_index: int
    start_hour_abs: float
    rack_index: int
    server_offset: int
    fault: FaultType
    false_positive: bool
    repair_hours: float
    batch_id: int = -1

    @property
    def category(self) -> TicketCategory:
        """Top-level Table II category of this ticket."""
        return FAULT_CATEGORY[self.fault]

    @property
    def end_hour_abs(self) -> float:
        """Absolute hour at which the ticket was resolved."""
        return self.start_hour_abs + self.repair_hours

    def description(self) -> str:
        """Human-readable one-line ticket description."""
        status = "false positive" if self.false_positive else "resolved"
        return (
            f"[day {self.day_index}] rack #{self.rack_index} server "
            f"{self.server_offset}: {self.fault.value} ({status}, "
            f"{self.repair_hours:.1f} h to resolution)"
        )


class TicketLog:
    """Columnar accumulator of RMA tickets for a whole simulation run.

    Columns are appended day-by-day as numpy chunks and concatenated
    lazily; all access goes through :meth:`finalize`-guarded properties.
    """

    _COLUMNS = (
        "day_index", "start_hour_abs", "rack_index", "server_offset",
        "fault_code", "false_positive", "repair_hours", "batch_id",
    )

    def __init__(self) -> None:
        self._chunks: dict[str, list[np.ndarray]] = {name: [] for name in self._COLUMNS}
        self._final: dict[str, np.ndarray] | None = None

    def append_chunk(
        self,
        day_index: np.ndarray,
        start_hour_abs: np.ndarray,
        rack_index: np.ndarray,
        server_offset: np.ndarray,
        fault_code: np.ndarray,
        false_positive: np.ndarray,
        repair_hours: np.ndarray,
        batch_id: np.ndarray,
    ) -> None:
        """Append one aligned chunk of tickets (e.g. one day's output)."""
        if self._final is not None:
            raise DataError("ticket log already finalized; cannot append")
        arrays = {
            "day_index": day_index, "start_hour_abs": start_hour_abs,
            "rack_index": rack_index, "server_offset": server_offset,
            "fault_code": fault_code, "false_positive": false_positive,
            "repair_hours": repair_hours, "batch_id": batch_id,
        }
        lengths = {name: len(arr) for name, arr in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise DataError(f"misaligned ticket chunk: {lengths}")
        if lengths["day_index"] == 0:
            return
        for name, arr in arrays.items():
            self._chunks[name].append(np.asarray(arr))

    def finalize(self) -> None:
        """Concatenate all chunks; further appends are rejected."""
        if self._final is not None:
            return
        self._final = {}
        for name in self._COLUMNS:
            chunks = self._chunks[name]
            if chunks:
                self._final[name] = np.concatenate(chunks)
            else:
                self._final[name] = np.array([], dtype=float)
        self._chunks = {name: [] for name in self._COLUMNS}

    def _column(self, name: str) -> np.ndarray:
        if self._final is None:
            self.finalize()
        assert self._final is not None
        return self._final[name]

    def column_view(self, name: str) -> np.ndarray:
        """Read-only zero-copy view of one column, in storage dtype.

        The typed properties below return a fresh converted copy per
        access; per-block hot paths (the columnar flatten) gather
        slices from the same columns many times and need the backing
        arrays without the per-access copy.
        """
        if name not in self._COLUMNS:
            raise DataError(f"unknown ticket column {name!r}")
        view = self._column(name).view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._column("day_index"))

    @property
    def day_index(self) -> np.ndarray:
        """Detection day of each ticket."""
        return self._column("day_index").astype(np.int64)

    @property
    def start_hour_abs(self) -> np.ndarray:
        """Absolute detection hour of each ticket."""
        return self._column("start_hour_abs").astype(float)

    @property
    def rack_index(self) -> np.ndarray:
        """Flat rack index of each ticket."""
        return self._column("rack_index").astype(np.int64)

    @property
    def server_offset(self) -> np.ndarray:
        """Within-rack server position of each ticket."""
        return self._column("server_offset").astype(np.int64)

    @property
    def fault_code(self) -> np.ndarray:
        """Integer fault-type code (index into FAULT_TYPES)."""
        return self._column("fault_code").astype(np.int64)

    @property
    def false_positive(self) -> np.ndarray:
        """False-positive flags."""
        return self._column("false_positive").astype(bool)

    @property
    def repair_hours(self) -> np.ndarray:
        """Hours from detection to resolution."""
        return self._column("repair_hours").astype(float)

    @property
    def batch_id(self) -> np.ndarray:
        """Correlated-batch identifiers (-1 for independent tickets)."""
        return self._column("batch_id").astype(np.int64)

    @property
    def end_hour_abs(self) -> np.ndarray:
        """Absolute resolution hour of each ticket."""
        return self.start_hour_abs + self.repair_hours

    def ticket(self, index: int) -> RmaTicket:
        """Materialize ticket ``index`` as an :class:`RmaTicket`."""
        n = len(self)
        if not 0 <= index < n:
            raise DataError(f"ticket index {index} outside [0, {n})")
        return RmaTicket(
            day_index=int(self.day_index[index]),
            start_hour_abs=float(self.start_hour_abs[index]),
            rack_index=int(self.rack_index[index]),
            server_offset=int(self.server_offset[index]),
            fault=FAULT_TYPES[int(self.fault_code[index])],
            false_positive=bool(self.false_positive[index]),
            repair_hours=float(self.repair_hours[index]),
            batch_id=int(self.batch_id[index]),
        )

    def true_positive_mask(self) -> np.ndarray:
        """Boolean mask selecting true-positive tickets."""
        return ~self.false_positive

    def batch_dedupe_mask(self) -> np.ndarray:
        """Mask keeping one row per correlated batch event.

        Operationally a batch failure (bad component lot, power-strip
        trip) is filed as a *single* RMA ticket with a repeat count
        (§IV: tickets carry "repeat count and other relevant comments"),
        even though several devices go down.  Failure-*rate* analyses
        (λ, Table II) therefore count each batch once, while the
        concurrent-unavailability metric μ uses every device interval.
        """
        batch = self.batch_id
        keep = np.ones(len(self), dtype=bool)
        in_batch = batch >= 0
        if in_batch.any():
            # Keep only the first row of each batch id.
            seen: set[int] = set()
            batch_rows = np.flatnonzero(in_batch)
            for row in batch_rows.tolist():
                bid = int(batch[row])
                if bid in seen:
                    keep[row] = False
                else:
                    seen.add(bid)
        return keep

    def mask_for_faults(self, faults: list[FaultType] | tuple[FaultType, ...]) -> np.ndarray:
        """Boolean mask selecting tickets of any of the given fault types."""
        codes = {FAULT_CODE[fault] for fault in faults}
        return np.isin(self.fault_code, list(codes))

    def hardware_mask(self) -> np.ndarray:
        """Boolean mask selecting hardware-category tickets."""
        return self.mask_for_faults(list(HARDWARE_FAULTS))

    def category_counts(
        self,
        true_positives_only: bool = False,
        dedupe_batches: bool = True,
    ) -> dict[FaultType, int]:
        """Ticket count per fault type (Table II numerators).

        Batches are deduplicated by default — one filed RMA per batch
        event (see :meth:`batch_dedupe_mask`).
        """
        mask = self.true_positive_mask() if true_positives_only else np.ones(len(self), dtype=bool)
        if dedupe_batches:
            mask = mask & self.batch_dedupe_mask()
        codes = self.fault_code[mask]
        return {
            fault: int((codes == FAULT_CODE[fault]).sum())
            for fault in FAULT_TYPES
        }
