"""Per-fault-type hazard composition.

For every fault type of Table II this module computes, vectorized over
racks, the expected number of tickets per rack-day.  Rates are composed
as  ``base rate × device count × ∏ multipliers``  where the multiplier
set differs per fault type — e.g. only disk hazards react to the
hot/dry regime, only software/boot rates follow deployment churn.

Base rates are collected in :class:`FaultRateConfig` so the Table II
ticket mix can be calibrated in one place (see the calibration test in
``tests/test_engine_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.power import density_stress_multiplier, power_infrastructure_rate
from ..datacenter.topology import Fleet, FleetArrays
from ..errors import ConfigError
from ..units import DAYS_PER_MONTH, CalendarArrays, CalendarDay
from . import hazards
from .tickets import FaultType

#: :class:`RackContext` attributes that carry planted hazard inputs
#: (beyond the FleetArrays/spec fields they are derived from).  Folded
#: into the GT-leak forbidden-attribute set by ``repro.groundtruth``.
GROUND_TRUTH_CONTEXT_FIELDS: tuple[str, ...] = (
    "thermal_coupling", "density_stress",
)


@dataclass(frozen=True)
class FaultRateConfig:
    """Base rates (per device-day or per rack-day) for every fault type.

    Hardware rates are per *component*-day (disk, DIMM) or per
    server/rack-day; software and boot rates are per server-day.  The
    defaults are calibrated so the overall ticket mix lands in Table II's
    bands (software 45-55%, boot 12-14%, hardware 20-30% disk-led).
    """

    disk_per_disk_day: float = 6.0e-5
    memory_per_dimm_day: float = 0.8e-5
    server_per_server_day: float = 4.5e-5
    network_per_rack_day: float = 3.0e-3
    timeout_per_server_day: float = 2.6e-3
    deployment_per_server_day: float = 1.5e-3
    crash_per_server_day: float = 2.4e-4
    pxe_per_server_day: float = 9.5e-4
    reboot_per_server_day: float = 7.0e-5
    other_per_server_day: float = 9.5e-4
    false_positive_rate: float = 0.07
    rack_outage_per_rack_day: float = 8.0e-6

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"FaultRateConfig.{name} must be >= 0, got {value}")
        if self.false_positive_rate >= 1.0:
            raise ConfigError("false_positive_rate must be < 1")


def _single_day_features(calendar_day: CalendarDay) -> CalendarArrays:
    """Wrap one :class:`CalendarDay` as length-1 calendar columns."""
    return CalendarArrays(
        day_index=np.array([calendar_day.day_index], dtype=np.int64),
        day_of_week=np.array([calendar_day.day_of_week], dtype=np.int64),
        month=np.array([calendar_day.month], dtype=np.int64),
        year=np.array([calendar_day.year], dtype=np.int64),
        day_of_year=np.array([calendar_day.day_of_year], dtype=np.int64),
        is_weekend=np.array([calendar_day.is_weekend]),
    )


class RackContext:
    """Static per-rack hazard inputs, precomputed once per simulation.

    Everything here is constant over the run: workload stress vectors,
    SKU intrinsic hazards, power-density stress, region residual hazard
    and per-DC power-infrastructure base rates.
    """

    def __init__(self, fleet: Fleet):
        arrays = fleet.arrays()
        self.arrays = arrays
        workloads = [fleet.workloads.get(name) for name in arrays.workload_names]

        stress = np.array([w.stress_multiplier for w in workloads])
        disk_stress = np.array([w.disk_stress for w in workloads])
        churn = np.array([w.software_churn for w in workloads])
        weekday_util = np.array([w.weekday_utilization for w in workloads])
        weekend_util = np.array([w.weekend_utilization for w in workloads])

        code = arrays.workload_code
        self.stress = stress[code]
        self.disk_stress = disk_stress[code]
        self.churn = churn[code]
        self.weekday_util = weekday_util[code]
        self.weekend_util = weekend_util[code]

        self.density_stress = density_stress_multiplier(arrays.rated_power_kw)
        self.region_hazard = arrays.region_hazard
        self.sku_intrinsic = arrays.sku_intrinsic

        # Facility-design factors (Table I contrasts).  Container
        # packaging concentrates network gear and boot infrastructure
        # inside each container (more network/reboot tickets); a
        # chilled-water plant puts chillers and pumps on the electrical
        # chain (more routine power tickets).
        from ..datacenter.topology import CoolingKind, PackagingKind

        specs = {dc.name: dc.spec for dc in fleet.datacenters}
        per_dc_power = np.array([
            power_infrastructure_rate(specs[name].availability_nines)
            * (2.5 if specs[name].cooling == CoolingKind.CHILLED_WATER else 1.0)
            for name in arrays.dc_names
        ])
        per_dc_network = np.array([
            2.8 if specs[name].packaging == PackagingKind.CONTAINER else 0.55
            for name in arrays.dc_names
        ])
        per_dc_reboot = np.array([
            2.2 if specs[name].packaging == PackagingKind.CONTAINER else 0.35
            for name in arrays.dc_names
        ])
        # Thermal coupling: how strongly the rack-inlet reading drives
        # the actual drive temperature.  Container packaging (DC1)
        # couples tightly; ducted colocated containment (DC2) decouples
        # the drives from room-sensor excursions — which is why DC2's
        # disks are "relatively unaffected with temperature and RH
        # variations" (§VI-Q3) even when its sensors read hot.
        per_dc_outage_design = np.array([
            power_infrastructure_rate(specs[name].availability_nines)
            / power_infrastructure_rate(3)
            for name in arrays.dc_names
        ])
        per_dc_coupling = np.array([
            1.0 if specs[name].packaging == PackagingKind.CONTAINER else 0.12
            for name in arrays.dc_names
        ])
        self.power_base_rate = per_dc_power[arrays.dc_code]
        self.network_packaging = per_dc_network[arrays.dc_code]
        self.reboot_packaging = per_dc_reboot[arrays.dc_code]
        self.thermal_coupling = per_dc_coupling[arrays.dc_code]
        self.outage_design = per_dc_outage_design[arrays.dc_code]

    def utilization(self, is_weekend: bool) -> np.ndarray:
        """Per-rack mean utilization for the given day kind."""
        return self.weekend_util if is_weekend else self.weekday_util


class FaultModel:
    """Computes expected per-rack ticket counts for each fault type.

    Args:
        fleet: the simulated fleet.
        rates: base-rate configuration.
    """

    def __init__(self, fleet: Fleet, rates: FaultRateConfig | None = None):
        self.rates = rates or FaultRateConfig()
        self.context = RackContext(fleet)
        self.arrays: FleetArrays = fleet.arrays()

    def expected_counts(
        self,
        calendar_day: CalendarDay,
        temp_f: np.ndarray,
        rh: np.ndarray,
        commissioned: np.ndarray,
    ) -> dict[FaultType, np.ndarray]:
        """Expected ticket count per rack for every fault type, one day.

        Args:
            calendar_day: calendar features of the simulated day.
            temp_f: true per-rack inlet temperature (°F).
            rh: true per-rack relative humidity (%).
            commissioned: boolean mask of racks already in service.

        Returns:
            Mapping fault type → per-rack expected count array; entries
            for un-commissioned racks are zero.
        """
        matrices = self.expected_counts_matrix(
            _single_day_features(calendar_day),
            np.asarray(temp_f)[np.newaxis, :],
            np.asarray(rh)[np.newaxis, :],
            np.asarray(commissioned)[np.newaxis, :],
        )
        return {fault: matrix[0] for fault, matrix in matrices.items()}

    def expected_counts_matrix(
        self,
        features: CalendarArrays,
        temp_f: np.ndarray,
        rh: np.ndarray,
        commissioned: np.ndarray,
    ) -> dict[FaultType, np.ndarray]:
        """Expected ticket counts for a whole block of days at once.

        The batched core behind :meth:`expected_counts`: all inputs are
        matrices of shape ``(n_days, n_racks)`` (``features`` supplies
        the aligned per-day calendar columns) and every returned array
        has that same shape.  The vectorized engine consumes these
        matrices directly instead of looping over days.

        Args:
            features: calendar feature columns for the day block.
            temp_f: true inlet temperature, shape (n_days, n_racks).
            rh: true relative humidity, shape (n_days, n_racks).
            commissioned: in-service mask, shape (n_days, n_racks).

        Returns:
            Mapping fault type → (n_days, n_racks) expected-count matrix.
        """
        arrays = self.arrays
        context = self.context
        rates = self.rates
        is_weekend = features.is_weekend

        age = self._age_months_matrix(features.day_index)
        bathtub = hazards.bathtub_age_multiplier(age)
        util = hazards.utilization_multiplier(
            np.where(is_weekend[:, np.newaxis],
                     context.weekend_util[np.newaxis, :],
                     context.weekday_util[np.newaxis, :])
        )
        low_rh = hazards.low_humidity_multiplier(rh)
        coupling = context.thermal_coupling
        thermal_disk = 1.0 + coupling * (hazards.thermal_disk_multiplier(temp_f) - 1.0)
        hot_dry = 1.0 + coupling * (
            hazards.humidity_interaction_multiplier(temp_f, rh) - 1.0
        )
        churn_day = hazards.weekday_churn_multiplier(is_weekend)[:, np.newaxis]
        seasonal_sw = hazards.seasonal_software_multiplier(features.month)[:, np.newaxis]

        # Shared hardware composition: intrinsic SKU quality, residual
        # spatial hazard, age bathtub and how hard the workload drives
        # the machines.
        hardware_common = (
            context.sku_intrinsic * context.region_hazard * bathtub
            * context.stress * util
        )

        disks = arrays.n_servers * arrays.hdds_per_server
        dimms = arrays.n_servers * arrays.dimms_per_server
        servers = arrays.n_servers.astype(float)

        counts: dict[FaultType, np.ndarray] = {
            FaultType.DISK: (
                rates.disk_per_disk_day * disks * hardware_common
                * context.disk_stress * thermal_disk * hot_dry * low_rh
            ),
            FaultType.MEMORY: (
                rates.memory_per_dimm_day * dimms * hardware_common * low_rh
            ),
            FaultType.SERVER: (
                rates.server_per_server_day * servers * hardware_common
                * context.density_stress * low_rh
            ),
            FaultType.POWER: (
                context.power_base_rate * context.density_stress
                * context.region_hazard * bathtub
            ),
            FaultType.NETWORK: (
                rates.network_per_rack_day * context.network_packaging
                * context.region_hazard * bathtub
            ),
            FaultType.TIMEOUT: (
                rates.timeout_per_server_day * servers * util
                * (0.6 + 0.4 * context.churn) * seasonal_sw
            ),
            FaultType.DEPLOYMENT: (
                rates.deployment_per_server_day * servers * context.churn
                * churn_day * seasonal_sw
            ),
            FaultType.CRASH: (
                rates.crash_per_server_day * servers * util * seasonal_sw
            ),
            FaultType.PXE_BOOT: (
                rates.pxe_per_server_day * servers
                * (0.7 + 0.3 * churn_day) * bathtub
            ),
            FaultType.REBOOT: (
                rates.reboot_per_server_day * servers
                * context.reboot_packaging * bathtub
            ),
            FaultType.OTHER: (
                rates.other_per_server_day * servers * context.region_hazard
            ),
        }
        not_commissioned = ~commissioned
        for fault in counts:
            counts[fault] = np.where(not_commissioned, 0.0, counts[fault])
        return counts

    def _age_months_matrix(self, day_index: np.ndarray) -> np.ndarray:
        """(n_days, n_racks) equipment ages for a block of days."""
        return (
            np.asarray(day_index, dtype=float)[:, np.newaxis]
            - self.arrays.commission_day[np.newaxis, :]
        ) / DAYS_PER_MONTH

    def batch_event_rate_matrix(
        self, features: CalendarArrays, commissioned: np.ndarray
    ) -> np.ndarray:
        """(n_days, n_racks) daily batch-failure probabilities."""
        bathtub = hazards.bathtub_age_multiplier(
            self._age_months_matrix(features.day_index)
        )
        return np.where(commissioned, self.arrays.batch_rate * bathtub, 0.0)

    def rack_outage_rate_matrix(
        self, features: CalendarArrays, commissioned: np.ndarray
    ) -> np.ndarray:
        """(n_days, n_racks) daily rack-scale outage probabilities."""
        context = self.context
        bathtub = hazards.bathtub_age_multiplier(
            self._age_months_matrix(features.day_index)
        )
        rate = (
            self.rates.rack_outage_per_rack_day
            * context.outage_design * context.density_stress * bathtub
        )
        return np.where(commissioned, rate, 0.0)

    def batch_event_rate(self, calendar_day: CalendarDay, commissioned: np.ndarray) -> np.ndarray:
        """Per-rack daily probability of a correlated batch failure.

        Batch propensity is a SKU property (bad component lots, shared
        backplanes) amplified for very young and very old equipment —
        the mechanism behind the large μ spread across the paper's
        storage clusters (Fig 11b).
        """
        age = self.arrays.age_months(calendar_day.day_index)
        bathtub = hazards.bathtub_age_multiplier(age)
        rate = self.arrays.batch_rate * bathtub
        return np.where(commissioned, rate, 0.0)

    def rack_outage_rate(self, calendar_day: CalendarDay, commissioned: np.ndarray) -> np.ndarray:
        """Per-rack daily probability of a rack-scale outage event.

        Whole-rack events (failed power strip, ToR switch meltdown) take
        down a large fraction of the rack at once.  They are rarer in
        the 5-nines facility and more likely for dense, aging racks.
        """
        context = self.context
        age = self.arrays.age_months(calendar_day.day_index)
        bathtub = hazards.bathtub_age_multiplier(age)
        rate = (
            self.rates.rack_outage_per_rack_day
            * context.outage_design * context.density_stress * bathtub
        )
        return np.where(commissioned, rate, 0.0)
