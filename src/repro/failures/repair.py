"""Repair/replacement model: time-to-resolution per fault type.

§IV: "An operating engineer investigates the root cause of this RMA
ticket, and if it is a hardware fault, the ticket is resolved by
replacing the faulty component."  Hardware resolutions take hours to
days (spare logistics, rebuild time); software and boot tickets resolve
in minutes to hours (re-image, re-deploy).

Repair durations are what turn point failures into *downtime intervals*,
and downtime intervals are what the concurrent-failure metric μ (and
hence all of Q1's spare provisioning) is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .tickets import FaultType


@dataclass(frozen=True)
class RepairDistribution:
    """Lognormal time-to-resolution for one fault type.

    Attributes:
        median_hours: distribution median.
        sigma: lognormal shape (spread) parameter.
        replace_probability: chance resolution is a full replacement
            rather than an in-place repair (drives OpEx in the TCO
            model: replacements consume a spare, repairs consume labor).
    """

    median_hours: float
    sigma: float
    replace_probability: float

    def __post_init__(self) -> None:
        if self.median_hours <= 0:
            raise ConfigError(f"median_hours must be positive, got {self.median_hours}")
        if self.sigma < 0:
            raise ConfigError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.replace_probability <= 1.0:
            raise ConfigError("replace_probability must be a probability")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``size`` resolution times in hours."""
        if size < 0:
            raise ConfigError(f"size must be >= 0, got {size}")
        if size == 0:
            return np.empty(0)
        return rng.lognormal(mean=np.log(self.median_hours), sigma=self.sigma, size=size)

    @property
    def mean_hours(self) -> float:
        """Analytic mean of the lognormal resolution time."""
        return float(self.median_hours * np.exp(self.sigma**2 / 2.0))


DEFAULT_REPAIR: dict[FaultType, RepairDistribution] = {
    FaultType.DISK: RepairDistribution(median_hours=10.0, sigma=0.6, replace_probability=0.95),
    FaultType.MEMORY: RepairDistribution(median_hours=14.0, sigma=0.6, replace_probability=0.90),
    FaultType.POWER: RepairDistribution(median_hours=10.0, sigma=0.7, replace_probability=0.60),
    FaultType.SERVER: RepairDistribution(median_hours=8.0, sigma=0.7, replace_probability=0.55),
    FaultType.NETWORK: RepairDistribution(median_hours=12.0, sigma=0.7, replace_probability=0.40),
    FaultType.TIMEOUT: RepairDistribution(median_hours=1.5, sigma=0.8, replace_probability=0.0),
    FaultType.DEPLOYMENT: RepairDistribution(median_hours=2.5, sigma=0.8, replace_probability=0.0),
    FaultType.CRASH: RepairDistribution(median_hours=1.0, sigma=0.7, replace_probability=0.0),
    FaultType.PXE_BOOT: RepairDistribution(median_hours=3.0, sigma=0.7, replace_probability=0.02),
    FaultType.REBOOT: RepairDistribution(median_hours=2.0, sigma=0.6, replace_probability=0.02),
    FaultType.OTHER: RepairDistribution(median_hours=6.0, sigma=0.9, replace_probability=0.10),
}


class RepairModel:
    """Samples resolution times and replace-vs-repair outcomes.

    Args:
        distributions: per-fault overrides; unspecified faults use
            :data:`DEFAULT_REPAIR`.
    """

    def __init__(self, distributions: dict[FaultType, RepairDistribution] | None = None):
        merged = dict(DEFAULT_REPAIR)
        if distributions:
            merged.update(distributions)
        missing = [fault for fault in FaultType if fault not in merged]
        if missing:
            raise ConfigError(f"repair model missing fault types: {missing}")
        self.distributions = merged

    def sample_hours(self, fault: FaultType, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``size`` resolution durations for ``fault``."""
        return self.distributions[fault].sample(size, rng)

    def sample_replacement(self, fault: FaultType, size: int,
                           rng: np.random.Generator) -> np.ndarray:
        """Boolean array: True where resolution replaced the device."""
        if size == 0:
            return np.empty(0, dtype=bool)
        return rng.random(size) < self.distributions[fault].replace_probability

    def mean_hours(self, fault: FaultType) -> float:
        """Mean resolution time for ``fault``."""
        return self.distributions[fault].mean_hours
