"""Ground-truth hazard multipliers used by the failure engine.

Each function maps a per-rack array of conditions to a multiplicative
hazard factor.  The engine composes them per fault type (see
:mod:`repro.failures.faultmodel`); the analysis layer never imports this
module — it must *recover* these shapes from the generated tickets.

Planted shapes and the figures they reproduce:

* :func:`bathtub_age_multiplier` — elevated infant mortality decaying
  over ~8 months, mild wear-out after 4 years (Fig 9: "new equipment
  tends to have higher failures"; no visible tail within 2.5 years).
* :func:`thermal_disk_multiplier` — gentle rise with temperature plus a
  ≈50% step above 78 °F (Figs 16-18).
* :func:`humidity_interaction_multiplier` — additional ≈25% when hot
  (>78 °F) air is also dry (<25% RH) (Fig 18).
* :func:`low_humidity_multiplier` — electrostatic-discharge regime:
  general hardware hazard rises at low RH (Fig 5).
* :func:`utilization_multiplier` — harder-driven machines fail more;
  weekday/weekend utilization swings yield Fig 3's day-of-week effect.
"""

from __future__ import annotations

import numpy as np


def bathtub_age_multiplier(
    age_months: np.ndarray,
    infant_excess: float = 2.6,
    infant_tau_months: float = 8.0,
    wearout_onset_months: float = 48.0,
    wearout_slope_per_month: float = 0.010,
) -> np.ndarray:
    """Bathtub-curve age effect.

    ``1 + infant_excess * exp(-age/tau)`` for the infant-mortality edge,
    plus a linear wear-out ramp beyond ``wearout_onset_months``.  Ages
    below zero (not yet commissioned) are clipped to zero; the engine
    independently masks un-commissioned racks out of the hazard.
    """
    age = np.maximum(0.0, np.asarray(age_months, dtype=float))
    infant = infant_excess * np.exp(-age / infant_tau_months)
    wearout = wearout_slope_per_month * np.maximum(0.0, age - wearout_onset_months)
    return 1.0 + infant + wearout


def thermal_disk_multiplier(
    temp_f: np.ndarray,
    baseline_f: float = 62.0,
    trend_per_f: float = 0.004,
    step_at_f: float = 78.0,
    step_size: float = 0.50,
    step_width_f: float = 1.2,
) -> np.ndarray:
    """Disk hazard vs inlet temperature.

    A mild linear trend above ``baseline_f`` (Fig 17's monotone rise)
    plus a sigmoid step of ``step_size`` centred at ``step_at_f`` — the
    paper's MF tree finds the 78 °F split with a 50% rate increase.
    """
    temp = np.asarray(temp_f, dtype=float)
    trend = trend_per_f * np.maximum(0.0, temp - baseline_f)
    step = step_size / (1.0 + np.exp(-(temp - step_at_f) / step_width_f))
    return 1.0 + trend + step


def humidity_interaction_multiplier(
    temp_f: np.ndarray,
    rh: np.ndarray,
    temp_gate_f: float = 78.0,
    rh_gate: float = 25.0,
    excess: float = 0.18,
    width: float = 2.0,
) -> np.ndarray:
    """Hot-AND-dry interaction on disk hazard.

    Smoothly gated product of "above 78 °F" and "below 25% RH"; at full
    activation the multiplier is ``1 + excess`` (the paper's additional
    25% increase when operating hot *and* below 25% RH).
    """
    temp = np.asarray(temp_f, dtype=float)
    humidity = np.asarray(rh, dtype=float)
    hot = 1.0 / (1.0 + np.exp(-(temp - temp_gate_f) / width))
    dry = 1.0 / (1.0 + np.exp((humidity - rh_gate) / width))
    return 1.0 + excess * hot * dry


def low_humidity_multiplier(
    rh: np.ndarray,
    knee_rh: float = 25.0,
    excess: float = 0.6,
    width: float = 3.5,
) -> np.ndarray:
    """General hardware hazard at low relative humidity (ESD regime).

    Fig 5 shows "notable variation in failure rates for lower humidity
    operating points"; dry air increases electrostatic-discharge events
    during servicing and airflow.
    """
    humidity = np.asarray(rh, dtype=float)
    return 1.0 + excess / (1.0 + np.exp((humidity - knee_rh) / width))


def utilization_multiplier(
    utilization: np.ndarray,
    floor: float = 0.55,
    slope: float = 0.75,
) -> np.ndarray:
    """Hazard vs utilization: ``floor + slope * u``.

    Normalized so a fully-loaded machine (u=1) sees 1.3X the hazard of a
    ~60%-loaded one; idle machines still fail (floor > 0).
    """
    util = np.asarray(utilization, dtype=float)
    return floor + slope * util


def seasonal_software_multiplier(month, second_half_boost: float = 0.12):
    """Mild second-half-of-year boost to software churn.

    Service release cycles concentrate feature pushes in H2 (Fig 4's
    bump is partly weather, partly operational cadence).  Accepts a
    scalar month (1..12) or an array of months.
    """
    months = np.asarray(month)
    if np.any(months < 1) or np.any(months > 12):
        raise ValueError(f"month must be 1..12, got {month}")
    result = np.where(months >= 7, 1.0 + second_half_boost, 1.0)
    return float(result) if np.isscalar(month) else result


def weekday_churn_multiplier(is_weekend, weekend_fraction: float = 0.35):
    """Deployment/config churn happens on weekdays.

    Weekend churn drops to ``weekend_fraction`` of the weekday level —
    the dominant mechanism behind Fig 3's weekday failure excess for
    software/boot tickets.  Accepts a scalar bool or a boolean array.
    """
    if not 0.0 <= weekend_fraction <= 1.0:
        raise ValueError(f"weekend_fraction must be in [0,1], got {weekend_fraction}")
    result = np.where(np.asarray(is_weekend), weekend_fraction, 1.0)
    return float(result) if isinstance(is_weekend, bool) else result
