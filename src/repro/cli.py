"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run a simulation and export tickets/inventory CSVs.
* ``report``   — regenerate one (or all) of the paper's tables/figures.
* ``corrupt``  — export a degraded (optionally re-cleaned) field dataset.
* ``sweep``    — multi-seed robustness sweep (``--noise`` adds severities).
* ``stream``   — replay an exported directory through the online
  streaming analyzers (windowed λ/μ, SLA-risk and drift alerts,
  checkpoint/resume, ``--follow`` for growing exports).
* ``predict``  — online failure prediction: ``train`` prints headline
  metrics, ``score`` renders the full evaluation (ranking + proactive
  TCO vs reactive), ``follow`` replays the stream with the live
  predictive monitor attached and prints its alerts.
* ``autonomics`` — closed-loop controllers over a stepping simulation
  session: run one policy and print its SLA/TCO score, or ``--compare``
  the built-in policies on the same seed.
* ``lint``     — run the domain-aware static checks (``repro.staticcheck``)
  over the package (or given paths); exit 1 on new findings.
* ``list``     — list the registered experiments (``--format json`` adds
  each experiment's declared pipeline stage dependencies).
* ``pipeline`` — inspect the artifact pipeline: ``dag`` (stage catalogue
  with content keys), ``manifest`` (provenance of the last report run),
  ``prune`` (bound the artifact store).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from .config import SimulationConfig
from .datacenter.builder import FleetConfig
from .reporting import AnalysisContext, EXPERIMENTS, get_experiment
from .telemetry.io import export_inventory_csv, export_tickets_csv


def _jobs_arg(text: str) -> int:
    """``--jobs`` values: positive worker counts, or 0 for all cores."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 1 (or 0 for all cores), got {value}"
        )
    return value


def _seed_arg(text: str) -> int:
    """Seed values: non-negative (the RNG rejects negatives downstream)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seeds must be >= 0, got {value}")
    return value


def _build_config(args: argparse.Namespace, seed: int | None = None) -> SimulationConfig:
    return SimulationConfig(
        seed=args.seed if seed is None else seed,
        n_days=args.days,
        fleet=FleetConfig(scale=args.scale, observation_days=args.days),
    )


def _add_sim_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=_seed_arg, default=0,
                        help="master RNG seed (default 0)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="fraction of the paper's 331+290 racks "
                             "(default 0.25; 1.0 = paper scale)")
    parser.add_argument("--days", type=int, default=365,
                        help="observation window in days (default 365; "
                             "paper: 910)")
    parser.add_argument("--jobs", type=_jobs_arg, default=1,
                        help="worker processes for parallel stages "
                             "(default 1 = serial; 0 = all cores)")
    parser.add_argument("--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
                        help="run-cache directory (default: $REPRO_CACHE_DIR "
                             "if set, else no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the run cache even if --cache-dir / "
                             "$REPRO_CACHE_DIR is set")


def _resolve_cache(args: argparse.Namespace):
    """The RunCache implied by --cache-dir/--no-cache, or None."""
    if args.no_cache or not args.cache_dir:
        return None
    from .cache import RunCache

    return RunCache(args.cache_dir)


def _cache_dir_for_workers(args: argparse.Namespace) -> str | None:
    return None if (args.no_cache or not args.cache_dir) else str(args.cache_dir)


def _export_run(result, out_dir: pathlib.Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    n_tickets = export_tickets_csv(result, out_dir / "tickets.csv")
    n_racks = export_inventory_csv(result, out_dir / "inventory.csv")
    print(f"wrote {n_tickets} tickets to {out_dir / 'tickets.csv'}")
    print(f"wrote {n_racks} racks to {out_dir / 'inventory.csv'}")


def _simulate_seed_to_dir(seed: int, args: argparse.Namespace) -> str:
    """Worker for multi-seed export: simulate one seed into out/seed-N/."""
    from .cache import simulate_cached

    result, _ = simulate_cached(_build_config(args, seed=seed), _resolve_cache(args))
    out_dir = pathlib.Path(args.out) / f"seed-{seed}"
    out_dir.mkdir(parents=True, exist_ok=True)
    export_tickets_csv(result, out_dir / "tickets.csv")
    export_inventory_csv(result, out_dir / "inventory.csv")
    return result.summary()


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .cache import simulate_cached

    if args.seeds:
        import functools

        from .parallel import map_seeds

        summaries = map_seeds(
            functools.partial(_simulate_seed_to_dir, args=args),
            args.seeds, jobs=args.jobs,
        )
        for seed, summary in zip(args.seeds, summaries):
            print(f"seed {seed}: {summary}")
            print(f"  wrote {pathlib.Path(args.out) / f'seed-{seed}'}/"
                  "{tickets,inventory}.csv")
        return 0
    result, was_hit = simulate_cached(_build_config(args), _resolve_cache(args))
    if was_hit:
        print("(loaded from run cache)", file=sys.stderr)
    print(result.summary())
    _export_run(result, pathlib.Path(args.out))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .pipeline import ArtifactStore, build_report_pipeline
    from .reporting.context import SIMULATE_STAGE, SUMMARY_STAGE

    wanted = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in wanted:
        get_experiment(experiment_id)  # validate before simulating
    config = _build_config(args)
    cache_dir = _cache_dir_for_workers(args)
    store = ArtifactStore(cache_dir) if cache_dir else ArtifactStore()
    pipeline = build_report_pipeline(config, store=store, experiment_ids=wanted)

    # The summary stage is cached text, so a warm store serves the
    # header — and the whole report — without materializing the run.
    summary = pipeline.get(SUMMARY_STAGE)
    worker_executions: list = []
    if args.out is not None:
        from .reporting.report import write_report

        path = write_report(None, args.out, experiment_ids=wanted,
                            jobs=args.jobs, cache_dir=cache_dir,
                            pipeline=pipeline,
                            executions_sink=worker_executions.extend,
                            summary=summary)
    else:
        from .parallel import run_experiments

        rendered = run_experiments(
            wanted, config=config, jobs=args.jobs, cache_dir=cache_dir,
            pipeline=pipeline, executions_sink=worker_executions.extend,
        )
    simulated = any(
        execution.stage == SIMULATE_STAGE and execution.outcome == "computed"
        for execution in list(pipeline.executions) + worker_executions
    )
    if not simulated:
        print("(loaded from run cache)", file=sys.stderr)
    print(summary, "\n", file=sys.stderr)
    if args.out is not None:
        print(f"wrote {path}")
    else:
        for experiment_id, text, error in rendered:
            print(text if text is not None
                  else f"{experiment_id}: (not computable on this run: {error})")
            print()
    if store.root is not None:
        pipeline.write_manifest(extra_executions=worker_executions)
    return 0


def _cmd_corrupt(args: argparse.Namespace) -> int:
    from .cache import simulate_cached
    from .fielddata import (
        FieldDataset, clean_dataset, export_dataset, standard_pipeline,
    )

    result, was_hit = simulate_cached(_build_config(args), _resolve_cache(args))
    if was_hit:
        print("(loaded from run cache)", file=sys.stderr)
    dataset = FieldDataset.from_result(result)
    seed = args.corruption_seed if args.corruption_seed is not None else args.seed
    corrupted, report = standard_pipeline(args.severity, seed=seed).apply(dataset)
    print(report.render())
    if args.clean:
        corrupted, cleaning = clean_dataset(corrupted)
        print(cleaning.render())
    paths = export_dataset(corrupted, args.out)
    for path in paths.values():
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    seeds = args.seeds
    if args.noise is not None:
        from .reporting.sweeps import render_noise_sweep, run_noise_sweep

        by_severity = run_noise_sweep(
            seeds, args.noise, scale=args.scale, n_days=args.days,
            jobs=args.jobs, cache_dir=_cache_dir_for_workers(args),
        )
        print(render_noise_sweep(by_severity, seeds))
        return 0
    from .reporting.sweeps import render_sweep, run_sweep

    summaries = run_sweep(seeds, scale=args.scale, n_days=args.days,
                          jobs=args.jobs,
                          cache_dir=_cache_dir_for_workers(args))
    print(render_sweep(summaries, seeds))
    return 0


def _render_stream_summary(summary: dict) -> str:
    lines = [
        f"events seen        : {summary['events_seen']}",
        f"stream time        : {summary['last_time_hours']:.1f} h",
        f"racks in service   : {summary['racks_in_service']}",
        f"tickets counted (λ): {summary['tickets_counted']}",
        f"μmax ({summary['window_hours']:g}h windows) : {summary['mu_max']}",
        "per-SKU totals     : " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary["per_sku_total"].items())
        ),
        "per-DC totals      : " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary["per_dc_total"].items())
        ),
        f"alerts             : {len(summary['alerts'])}",
    ]
    for alert in summary["alerts"]:
        lines.append(
            f"  [{alert['kind']}] t={alert['time_hours']:.1f}h "
            f"{alert['message']}"
        )
    return "\n".join(lines)


def _cmd_stream(args: argparse.Namespace) -> int:
    from .decisions.availability import AvailabilitySla
    from .stream import (
        EventKind,
        StreamAnalyzer,
        StreamingMu,
        blocks_from_directory,
        calibrated_spare_fraction,
        directory_inventory,
        flatten_directory,
        follow_directory,
        load_checkpoint,
        save_checkpoint,
    )

    config = _build_config(args)
    in_dir = pathlib.Path(args.in_dir)
    inventory = directory_inventory(in_dir, config)
    sla = AvailabilitySla(args.sla)
    block_size = args.block_size if args.block_size else 0
    if block_size < 0:
        print(f"error: --block-size must be >= 0, got {block_size}",
              file=sys.stderr)
        return 2

    if args.resume:
        analyzer = load_checkpoint(args.resume, inventory)
        print(f"(resumed at event {analyzer.events_seen})", file=sys.stderr)
    else:
        fraction = args.spare_fraction
        if fraction is None:
            # Calibrate from the export's own μ history so a pristine
            # replay is provably alert-free; stressed provisioning is
            # an explicit --spare-fraction choice.
            mu = StreamingMu(
                inventory.n_servers, inventory.server_base,
                inventory.n_days, window_hours=args.window_hours,
            )
            if (in_dir / "tickets.csv").exists():
                if block_size:
                    for block in blocks_from_directory(
                        in_dir, config, kinds={EventKind.TICKET_OPEN},
                        block_size=block_size,
                    ):
                        mu.update_block(block)
                else:
                    for event in flatten_directory(
                        in_dir, config, kinds={EventKind.TICKET_OPEN},
                    ):
                        mu.update(event)
                fraction = calibrated_spare_fraction(
                    mu.matrix(), inventory.n_servers, sla,
                )
            else:
                fraction = 0.0
            print(f"(calibrated spare fraction {fraction:.4f})",
                  file=sys.stderr)
        analyzer = StreamAnalyzer(
            inventory, window_hours=args.window_hours, sla=sla,
            spare_fraction=fraction, drift_ratio=args.drift_ratio,
        )

    if args.follow:
        # Follow mode tails a growing export row by row; it stays on
        # the per-event path regardless of --block-size.
        events = follow_directory(
            in_dir, config, poll_interval=args.poll_interval,
            max_idle_polls=args.max_idle_polls, skip=analyzer.events_seen,
        )
        processed = analyzer.consume(events, max_events=args.max_events)
    elif block_size:
        blocks = blocks_from_directory(
            in_dir, config, skip=analyzer.events_seen,
            block_size=block_size,
        )
        processed = analyzer.consume_blocks(blocks,
                                            max_events=args.max_events)
    else:
        events = flatten_directory(in_dir, config, skip=analyzer.events_seen)
        processed = analyzer.consume(events, max_events=args.max_events)
    truncated = args.max_events is not None and processed >= args.max_events

    if args.checkpoint:
        path = save_checkpoint(analyzer, args.checkpoint)
        print(f"wrote checkpoint {path} at event {analyzer.events_seen}",
              file=sys.stderr)
    if not truncated:
        analyzer.finish()
    print(_render_stream_summary(analyzer.summary()))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .cache import simulate_cached
    from .predict import build_feature_dataset, train_predictor
    from .predict.experiment import compute_predict_payload, render_predict
    from .predict.scoring import score_predictions

    result, _ = simulate_cached(_build_config(args), _resolve_cache(args))
    if args.action == "score":
        payload = compute_predict_payload(result, horizon_days=args.horizon)
        print(render_predict(payload))
        return 0

    dataset = build_feature_dataset(result, horizon_days=args.horizon)
    model, train, test = train_predictor(dataset, horizon_days=args.horizon)
    if args.action == "train":
        metrics = score_predictions(model, test)
        auc = metrics["auc"]
        print(f"trained on {train.n_rows} rows "
              f"({args.horizon}-day horizon), eval on {test.n_rows}")
        print(f"AUC {'n/a' if auc is None else format(auc, '.3f')}, "
              f"base rate {metrics['base_rate']:.3%}")
        for point in metrics["curves"]:
            print(f"  act {point['act_fraction']:.0%}: "
                  f"precision {point['precision']:.3f}, "
                  f"recall {point['recall']:.3f}")
        return 0

    # follow: replay the stream with the live monitor attached.  The
    # model saw only the chronological training prefix, so alerts in
    # the evaluation period are out-of-sample predictions.
    from .predict import PredictiveMonitor
    from .stream import StreamAnalyzer
    from .stream.blocks import StreamInventory, blocks_from_result
    from .stream.triggers import AlertKind

    inventory = StreamInventory.from_result(result)
    monitor = PredictiveMonitor(inventory, model, threshold=args.threshold)
    analyzer = StreamAnalyzer(inventory)
    analyzer.attach_monitor(monitor)

    def emit(alerts) -> None:
        for alert in alerts:
            if alert.kind is AlertKind.PREDICTED_FAILURE:
                print(f"[{alert.kind.value}] t={alert.time_hours:.1f}h "
                      f"{alert.message}")

    for block in blocks_from_result(result):
        emit(analyzer.process_block(block))
    emit(analyzer.finish())
    print(f"{monitor.alerts_emitted} predicted-failure alerts over "
          f"{analyzer.events_seen} events "
          f"(threshold {args.threshold:g})", file=sys.stderr)
    return 0


def _cmd_autonomics(args: argparse.Namespace) -> int:
    from .autonomics import make_controller, run_policy, train_shakedown_predictor
    from .autonomics.experiment import (
        DEFAULT_POLICIES,
        compute_autonomics_payload,
        render_autonomics,
    )

    config = _build_config(args)
    if args.compare:
        policies = tuple(dict.fromkeys(args.policy or ())) or DEFAULT_POLICIES
        payload = compute_autonomics_payload(config, policies=policies)
        print(render_autonomics(payload))
        verdict = payload.get("verdict")
        if verdict is not None and not (
            verdict["predictive_beats_reactive_sla"]
            and verdict["predictive_tco_leq_reactive"]
        ):
            return 1
        return 0

    policy_id = args.policy[0] if args.policy else "predictive"
    controller = make_controller(policy_id)
    predictor = None
    if controller.wants_predictions:
        predictor = train_shakedown_predictor(config, horizon_days=args.horizon)
    outcome = run_policy(config, controller, predictor=predictor)
    row = outcome.score_row()
    print(f"policy {row['policy']}: SLA attainment "
          f"{row['sla_attainment']:.2%} "
          f"({row['breach_rack_days']} breach rack-days), "
          f"TCO {row['tco_units']:.0f} units")
    print(f"  spares ordered {row['spare_servers_ordered']} "
          f"(mean fraction {row['mean_spare_fraction']:.3f}), "
          f"{row['n_interventions']} interventions, "
          f"{row['failures_prevented']:.1f} failures prevented")
    print(f"  {row['n_alerts']} alerts -> {row['n_actions']} actions")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import (
        all_rules, lint_paths, load_baseline, render_json, render_sarif,
        render_text, write_baseline,
    )
    from .staticcheck.runner import select_rules
    from .staticcheck.wholeprogram import all_wholeprogram_rules

    if args.list_rules:
        for rule in list(all_rules()) + list(all_wholeprogram_rules()):
            print(f"{rule.id:15s} {rule.title}")
            print(f"{'':15s} {rule.rationale}")
        return 0
    if args.migrate_baseline:
        from .staticcheck.baselines import migrate_baseline

        path = migrate_baseline(args.baseline)
        print(f"migrated baseline {path} to fingerprint schema 2")
        return 0
    rules = wp_rules = None
    if args.rules:
        rules, wp_rules = select_rules(args.rules)
    if (args.baseline and args.write_baseline
            and not pathlib.Path(args.baseline).exists()):
        baseline = None  # creating a brand-new baseline file
    else:
        baseline = load_baseline(args.baseline)
    paths = [pathlib.Path(p) for p in args.paths] or None
    cache_dir = args.cache_dir or os.environ.get("REPRO_LINT_CACHE")
    report = lint_paths(paths, rules=rules, baseline=baseline,
                        wp_rules=wp_rules, cache_dir=cache_dir,
                        jobs=args.jobs)
    if args.write_baseline:
        from .staticcheck.baselines import DEFAULT_BASELINE_PATH

        target = args.baseline or DEFAULT_BASELINE_PATH
        path = write_baseline(target, report.all_findings, previous=baseline,
                              rationale=args.rationale)
        print(f"wrote baseline {path} ({len(report.all_findings)} entries)")
        return 0
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report, verbose_rules=args.verbose))
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import run_server

    return run_server(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        workers=args.workers,
        timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "format", "text") == "json":
        import json

        payload = {
            "schema": 1,
            "experiments": [
                {
                    "id": experiment_id,
                    "description": experiment.description,
                    "stages": list(experiment.stages),
                    "code": list(experiment.code),
                }
                for experiment_id, experiment in sorted(EXPERIMENTS.items())
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    for experiment_id in sorted(EXPERIMENTS):
        print(f"{experiment_id:8s} {EXPERIMENTS[experiment_id].description}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import json

    from .pipeline import ArtifactStore, build_report_pipeline

    cache_dir = _cache_dir_for_workers(args)
    if args.action == "dag":
        pipeline = build_report_pipeline(_build_config(args))
        stages = pipeline.manifest()["stages"]
        if args.format == "json":
            print(json.dumps({"schema": 1, "stages": stages}, indent=2,
                             sort_keys=True))
            return 0
        for name in pipeline.order:
            stage = stages[name]
            deps = ", ".join(stage["deps"]) if stage["deps"] else "-"
            codec = stage["codec"] or "memory"
            print(f"{name:28s} key={stage['key']}  codec={codec:6s}  <- {deps}")
        return 0
    if args.action == "prune":
        if not cache_dir:
            print("pipeline prune needs --cache-dir (or $REPRO_CACHE_DIR)",
                  file=sys.stderr)
            return 1
        from .cache import DEFAULT_MAX_ENTRIES

        bound = (args.max_entries if args.max_entries is not None
                 else DEFAULT_MAX_ENTRIES)
        removed = ArtifactStore(cache_dir).prune(bound)
        print(f"pruned {removed} artifact entries under {cache_dir}")
        return 0
    # manifest: read back the provenance written by the last report run.
    if not cache_dir:
        print("pipeline manifest needs --cache-dir (or $REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 1
    manifest_path = pathlib.Path(cache_dir) / "manifest.json"
    if not manifest_path.exists():
        print(f"no manifest at {manifest_path} (run `repro report` with "
              "this --cache-dir first)", file=sys.stderr)
        return 1
    payload = json.loads(manifest_path.read_text())
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    executions = payload.get("executions", [])
    print(f"pipeline manifest (schema {payload.get('schema')}, "
          f"version {payload.get('version')}): "
          f"{len(executions)} stage executions")
    for execution in executions:
        print(f"  [{execution['outcome']:8s}] {execution['stage']:28s} "
              f"key={execution['key']}  {execution['wall_s']*1000:9.2f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Rain or Shine?' (ICDCS 2017): "
                    "datacenter reliability simulation and multi-factor "
                    "analysis.",
    )
    from . import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="simulate and export CSVs")
    _add_sim_arguments(sim)
    sim.add_argument("--out", default="simdata",
                     help="output directory (default ./simdata)")
    sim.add_argument("--seeds", type=_seed_arg, nargs="+", default=None,
                     help="simulate several seeds (exported to "
                          "OUT/seed-N/); overrides --seed")
    sim.set_defaults(func=_cmd_simulate)

    report = commands.add_parser(
        "report", help="regenerate a paper table/figure (or 'all')",
    )
    report.add_argument("experiment",
                        help="experiment id, e.g. table2 or fig10 or all")
    _add_sim_arguments(report)
    report.add_argument("--out", default=None,
                        help="write a markdown report here instead of stdout")
    report.set_defaults(func=_cmd_report)

    corrupt = commands.add_parser(
        "corrupt",
        help="simulate, degrade the field data, and export the result",
    )
    _add_sim_arguments(corrupt)
    corrupt.add_argument("--severity", type=float, default=0.5,
                         help="corruption severity in [0, 1] for every "
                              "operator (default 0.5; 0 = untouched)")
    corrupt.add_argument("--corruption-seed", type=int, default=None,
                         help="seed for the fielddata:* streams "
                              "(default: same as --seed)")
    corrupt.add_argument("--clean", action="store_true",
                         help="run the cleaning pipeline before exporting")
    corrupt.add_argument("--out", default="fielddata",
                         help="output directory (default ./fielddata)")
    corrupt.set_defaults(func=_cmd_corrupt)

    sweep = commands.add_parser(
        "sweep", help="robustness sweep of the headline conclusions",
    )
    sweep.add_argument("--seeds", type=_seed_arg, nargs="+", default=[11, 22, 33],
                       help="seeds to re-run (default: 11 22 33)")
    sweep.add_argument("--scale", type=float, default=0.3,
                       help="fleet scale per seed (default 0.3)")
    sweep.add_argument("--days", type=int, default=540,
                       help="window length per seed (default 540)")
    sweep.add_argument("--jobs", type=_jobs_arg, default=1,
                       help="worker processes, one seed each "
                            "(default 1 = serial; 0 = all cores)")
    sweep.add_argument("--noise", type=float, nargs="+", default=None,
                       metavar="LEVEL",
                       help="corruption severities: degrade+clean each "
                            "seed's field data at these levels and "
                            "report metric drift (e.g. --noise 0 0.3 0.6 1)")
    sweep.add_argument("--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
                       help="run-cache directory for the base runs "
                            "(default: $REPRO_CACHE_DIR if set)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the run cache")
    sweep.set_defaults(func=_cmd_sweep)

    stream = commands.add_parser(
        "stream",
        help="replay an exported directory through the online analyzers",
    )
    _add_sim_arguments(stream)
    stream.add_argument("--from", dest="in_dir", default="simdata",
                        help="exported run/field directory with tickets.csv "
                             "+ inventory.csv (default ./simdata); --seed/"
                             "--scale/--days must match how it was produced")
    stream.add_argument("--window-hours", type=float, default=24.0,
                        help="μ window length (default 24; 1 = hourly)")
    stream.add_argument("--sla", type=float, default=1.0,
                        help="availability SLA level in (0, 1] "
                             "(default 1.0)")
    stream.add_argument("--spare-fraction", type=float, default=None,
                        help="provisioned spare fraction for the SLA-risk "
                             "monitor (default: calibrate from the export's "
                             "own μ history — alert-free on pristine data)")
    stream.add_argument("--drift-ratio", type=float, default=2.0,
                        help="λ drift departure factor (default 2.0)")
    stream.add_argument("--block-size", type=int, default=8192,
                        help="events per columnar block on the one-shot "
                             "path (0 = legacy per-event flatten; "
                             "default 8192)")
    stream.add_argument("--max-events", type=int, default=None,
                        help="stop after N events (pair with --checkpoint)")
    stream.add_argument("--checkpoint", default=None,
                        help="write the analyzer state here after streaming")
    stream.add_argument("--resume", default=None,
                        help="resume from a --checkpoint bundle (skips the "
                             "already-processed prefix)")
    stream.add_argument("--follow", action="store_true",
                        help="poll the directory for appended tickets "
                             "(ticket events only) instead of one pass")
    stream.add_argument("--poll-interval", type=float, default=1.0,
                        help="--follow poll period in seconds (default 1)")
    stream.add_argument("--max-idle-polls", type=int, default=3,
                        help="--follow exits after this many polls with no "
                             "growth (default 3)")
    stream.set_defaults(func=_cmd_stream)

    predict = commands.add_parser(
        "predict",
        help="online failure prediction over the event stream",
    )
    predict.add_argument("action", choices=("train", "score", "follow"),
                         help="train: fit and print headline metrics; "
                              "score: render the full evaluation payload "
                              "(ranking + proactive TCO vs reactive); "
                              "follow: replay the stream with the live "
                              "predictive monitor and print its alerts")
    _add_sim_arguments(predict)
    predict.add_argument("--horizon", type=int, default=3,
                         help="label horizon in days (default 3)")
    predict.add_argument("--threshold", type=float, default=0.6,
                         help="follow-mode alert threshold on the failure "
                              "score, in (0, 1) (default 0.6)")
    predict.set_defaults(func=_cmd_predict)

    autonomics = commands.add_parser(
        "autonomics",
        help="closed-loop controllers over a stepping simulation session",
    )
    _add_sim_arguments(autonomics)
    autonomics.add_argument(
        "--policy", action="append", default=None,
        choices=("null", "reactive", "predictive", "threshold"),
        help="policy to run (repeatable; default: predictive, or the "
             "null/reactive/predictive shootout with --compare)")
    autonomics.add_argument(
        "--horizon", type=int, default=3,
        help="prediction horizon in days for the predictive policy's "
             "shakedown-trained model (default 3)")
    autonomics.add_argument(
        "--compare", action="store_true",
        help="replay the same seed under each policy and print the "
             "scored shootout (exit 1 if the predictive controller "
             "does not beat reactive on SLA at equal-or-lower TCO)")
    autonomics.set_defaults(func=_cmd_autonomics, policy=None)

    lint = commands.add_parser(
        "lint",
        help="run the repro.staticcheck domain rules (exit 1 on findings)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or package directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (default text; json is the CI "
                           "contract)")
    lint.add_argument("--rules", nargs="+", default=None, metavar="RULE-ID",
                      help="run only these rule ids (default: all)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of grandfathered findings "
                           "(default: the committed package baseline)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write all current findings to the baseline "
                           "(to --baseline, or the committed default) "
                           "instead of reporting")
    lint.add_argument("--rationale", default=None,
                      help="justification recorded for findings NEW to "
                           "the baseline (required with --write-baseline "
                           "when new findings are being grandfathered)")
    lint.add_argument("--verbose", action="store_true",
                      help="append rule rationales to the text report")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules (per-module and "
                           "whole-program) and exit")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="analyze uncached modules across N processes "
                           "(0 = all cores; output is byte-identical to "
                           "serial)")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="content-addressed lint fragment cache; warm "
                           "runs re-analyze only changed modules "
                           "(default: $REPRO_LINT_CACHE if set)")
    lint.add_argument("--migrate-baseline", action="store_true",
                      help="one-shot rewrite of the baseline file (or the "
                           "committed default) from fingerprint schema 1 "
                           "to 2, then exit")
    lint.set_defaults(func=_cmd_lint)

    serve = commands.add_parser(
        "serve",
        help="run the reliability HTTP API (Q1/Q2/Q3 per fleet)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="port to bind; 0 picks a free one "
                            "(default 8787)")
    serve.add_argument("--store-dir", default=None,
                       help="artifact store shared by server and workers "
                            "(default: in-memory, single-process)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes for cold queries "
                            "(default: all cores)")
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="per-request budget in seconds (default 120)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="graceful-shutdown drain budget in seconds "
                            "(default 30)")
    serve.set_defaults(func=_cmd_serve)

    lister = commands.add_parser("list", help="list registered experiments")
    lister.add_argument("--format", choices=("text", "json"), default="text",
                        help="json includes each experiment's declared "
                             "pipeline stage dependencies (for DAG diffing)")
    lister.set_defaults(func=_cmd_list)

    pipe = commands.add_parser(
        "pipeline",
        help="inspect the artifact pipeline (DAG, provenance, pruning)",
    )
    pipe.add_argument("action", choices=("dag", "manifest", "prune"),
                      help="dag: print the stage catalogue with content "
                           "keys; manifest: show the provenance of the "
                           "last report run in --cache-dir; prune: bound "
                           "the artifact store")
    _add_sim_arguments(pipe)
    pipe.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (default text)")
    pipe.add_argument("--max-entries", type=int, default=None,
                      help="per-stage entry bound for prune (default: "
                           "the store's standard bound)")
    pipe.set_defaults(func=_cmd_pipeline)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
