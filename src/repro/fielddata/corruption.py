"""Deterministic, composable degradation of clean field data.

Each operator models one documented pathology of operational
reliability data (duplicated re-opened RMAs, lost tickets, clock
skew, misattributed fault codes, sensor gaps, stuck-at readings,
right-censored inventory) behind a single ``severity`` knob in
``[0, 1]``:

* severity 0 is a **bit-identical identity** — the operator returns the
  dataset object untouched and draws nothing from its RNG stream;
* severity 1 is the heaviest corruption the operator models.

Determinism contract: a :class:`CorruptionPipeline` hands every
operator its own named stream (``fielddata:<op>``) derived from the
pipeline seed, so equal (dataset, ops, seed) triples produce
bit-identical corrupted datasets, and adding an operator to a pipeline
never perturbs the draws of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Sequence

import numpy as np

from ..errors import ConfigError
from ..failures.tickets import FAULT_TYPES
from ..rng import RngRegistry
from ..telemetry.schema import TICKET_LOG
from .dataset import FieldDataset, log_from_columns, ticket_columns


@dataclass(frozen=True)
class CorruptionOp:
    """Base class: one named, severity-scaled corruption operator."""

    severity: float

    #: Stream suffix; the pipeline draws from ``fielddata:<name>``.
    name: ClassVar[str] = "identity"

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigError(
                f"{type(self).__name__} severity must be in [0, 1], "
                f"got {self.severity}"
            )

    @property
    def stream_name(self) -> str:
        """The op's named RNG stream."""
        return f"fielddata:{self.name}"

    def apply(
        self, dataset: FieldDataset, rng: np.random.Generator,
    ) -> tuple[FieldDataset, dict[str, int]]:
        """Transform ``dataset``; returns (new dataset, stat counters).

        Implementations must return ``dataset`` unchanged (same object)
        at severity 0 and must never mutate its arrays in place.
        """
        raise NotImplementedError


def _clip_hours(start_hour: np.ndarray, n_days: int) -> np.ndarray:
    """Keep absolute hours inside the observation window."""
    return np.clip(start_hour, 0.0, n_days * 24.0 - 1e-6)


@dataclass(frozen=True)
class DuplicateTickets(CorruptionOp):
    """Re-opened RMAs: a fraction of tickets is re-filed shortly after.

    Duplicates carry the same rack/server/fault/batch identity with a
    small forward timestamp offset, so a time-window dedup can recover
    them — the recoverable half of ticket noise.
    """

    max_fraction: float = 0.15
    max_gap_hours: float = 1.5

    name: ClassVar[str] = "duplicates"

    def apply(self, dataset, rng):
        n = len(dataset.tickets)
        count = int(round(self.severity * self.max_fraction * n))
        if count == 0:
            return dataset, {"tickets_duplicated": 0}
        columns = ticket_columns(dataset.tickets)
        rows = np.sort(rng.choice(n, size=count, replace=False))
        gaps = rng.uniform(0.25, self.max_gap_hours, size=count)
        duplicate = {name: values[rows].copy() for name, values in columns.items()}
        duplicate[TICKET_LOG.start_hour_abs] = _clip_hours(
            duplicate[TICKET_LOG.start_hour_abs] + gaps, dataset.n_days,
        )
        duplicate[TICKET_LOG.day_index] = (
            duplicate[TICKET_LOG.start_hour_abs] // 24.0
        ).astype(np.int64)
        merged = {
            name: np.concatenate([columns[name], duplicate[name]])
            for name in columns
        }
        log = log_from_columns(merged, canonical_sort=True)
        return dataset.replace(tickets=log), {"tickets_duplicated": count}


@dataclass(frozen=True)
class DropTickets(CorruptionOp):
    """Lost tickets: a fraction of the log simply never reaches the
    warehouse (unrecoverable under-reporting)."""

    max_fraction: float = 0.10

    name: ClassVar[str] = "drops"

    def apply(self, dataset, rng):
        n = len(dataset.tickets)
        count = int(round(self.severity * self.max_fraction * n))
        if count == 0:
            return dataset, {"tickets_dropped": 0}
        keep = np.ones(n, dtype=bool)
        keep[rng.choice(n, size=count, replace=False)] = False
        columns = {
            name: values[keep] for name, values in ticket_columns(dataset.tickets).items()
        }
        return (dataset.replace(tickets=log_from_columns(columns)),
                {"tickets_dropped": count})


@dataclass(frozen=True)
class JitterTimestamps(CorruptionOp):
    """Clock skew and delayed filing: every detection timestamp moves by
    Gaussian noise with sd ``severity * max_sd_hours``."""

    max_sd_hours: float = 6.0

    name: ClassVar[str] = "jitter"

    def apply(self, dataset, rng):
        if self.severity == 0.0:
            return dataset, {"tickets_jittered": 0}
        columns = ticket_columns(dataset.tickets)
        n = len(columns[TICKET_LOG.start_hour_abs])
        if n == 0:
            return dataset, {"tickets_jittered": 0}
        shifted = dict(columns)
        shifted[TICKET_LOG.start_hour_abs] = _clip_hours(
            columns[TICKET_LOG.start_hour_abs]
            + rng.normal(0.0, self.severity * self.max_sd_hours, size=n),
            dataset.n_days,
        )
        shifted[TICKET_LOG.day_index] = (
            shifted[TICKET_LOG.start_hour_abs] // 24.0
        ).astype(np.int64)
        log = log_from_columns(shifted, canonical_sort=True)
        return dataset.replace(tickets=log), {"tickets_jittered": n}


@dataclass(frozen=True)
class MisattributeTickets(CorruptionOp):
    """Wrong labels: a fraction of tickets gets a different fault code
    and a re-guessed server position within the rack."""

    max_fraction: float = 0.15

    name: ClassVar[str] = "misattribution"

    def apply(self, dataset, rng):
        n = len(dataset.tickets)
        count = int(round(self.severity * self.max_fraction * n))
        if count == 0:
            return dataset, {"tickets_misattributed": 0}
        columns = {name: values.copy()
                   for name, values in ticket_columns(dataset.tickets).items()}
        rows = rng.choice(n, size=count, replace=False)
        n_types = len(FAULT_TYPES)
        # Shift by 1..n_types-1 positions: uniformly some *other* type.
        offsets = rng.integers(1, n_types, size=count)
        columns[TICKET_LOG.fault_code][rows] = (
            columns[TICKET_LOG.fault_code][rows] + offsets
        ) % n_types
        capacity = dataset.fleet.arrays().n_servers[
            columns[TICKET_LOG.rack_index][rows]
        ]
        columns[TICKET_LOG.server_offset][rows] = (
            rng.random(count) * capacity
        ).astype(np.int64)
        log = log_from_columns(columns, canonical_sort=True)
        return dataset.replace(tickets=log), {"tickets_misattributed": count}


@dataclass(frozen=True)
class SensorGaps(CorruptionOp):
    """BMS stream outages: multi-day runs of missing readings on both
    sensors of affected racks."""

    events_per_rack: float = 1.5
    mean_gap_days: float = 8.0

    name: ClassVar[str] = "gaps"

    def apply(self, dataset, rng):
        events = int(round(self.severity * self.events_per_rack * dataset.n_racks))
        if events == 0:
            return dataset, {"sensor_cells_gapped": 0}
        temp = dataset.temp_f.copy()
        rh = dataset.rh.copy()
        racks = rng.integers(0, dataset.n_racks, size=events)
        starts = rng.integers(0, dataset.n_days, size=events)
        lengths = rng.geometric(1.0 / self.mean_gap_days, size=events)
        before = int(np.isnan(temp).sum() + np.isnan(rh).sum())
        for rack, start, length in zip(racks.tolist(), starts.tolist(),
                                       lengths.tolist()):
            stop = min(start + length, dataset.n_days)
            temp[start:stop, rack] = np.nan
            rh[start:stop, rack] = np.nan
        after = int(np.isnan(temp).sum() + np.isnan(rh).sum())
        return (dataset.replace(temp_f=temp, rh=rh),
                {"sensor_cells_gapped": after - before})


@dataclass(frozen=True)
class StuckSensors(CorruptionOp):
    """Stuck-at sensors: a reading freezes and repeats verbatim for a
    span of days (classic BMS failure mode — the stream looks healthy
    but carries no information)."""

    events_per_rack: float = 0.25
    min_run_days: int = 5
    max_run_days: int = 30

    name: ClassVar[str] = "stuck"

    def apply(self, dataset, rng):
        events = int(round(self.severity * self.events_per_rack * dataset.n_racks))
        if events == 0:
            return dataset, {"sensor_cells_stuck": 0}
        temp = dataset.temp_f.copy()
        rh = dataset.rh.copy()
        racks = rng.integers(0, dataset.n_racks, size=events)
        starts = rng.integers(0, max(1, dataset.n_days - self.min_run_days),
                              size=events)
        lengths = rng.integers(self.min_run_days, self.max_run_days + 1,
                               size=events)
        use_temp = rng.random(events) < 0.5
        stuck_cells = 0
        for i in range(events):
            matrix = temp if use_temp[i] else rh
            rack, start = int(racks[i]), int(starts[i])
            value = matrix[start, rack]
            if np.isnan(value):
                continue  # a gap ate the anchor reading; nothing to freeze
            stop = min(start + int(lengths[i]), dataset.n_days)
            matrix[start:stop, rack] = value
            stuck_cells += stop - start - 1
        return (dataset.replace(temp_f=temp, rh=rh),
                {"sensor_cells_stuck": stuck_cells})


@dataclass(frozen=True)
class CensorInventory(CorruptionOp):
    """Right-censoring: racks decommissioned mid-trace stop producing
    tickets and sensor readings; the inventory records their exit day.

    Naive whole-window rate estimators silently under-count these racks;
    the cleaning side's exposure accounting corrects for it.
    """

    max_fraction: float = 0.15
    earliest_fraction: float = 0.5

    name: ClassVar[str] = "censoring"

    def apply(self, dataset, rng):
        count = int(round(self.severity * self.max_fraction * dataset.n_racks))
        if count == 0:
            return dataset, {"racks_censored": 0, "tickets_censored": 0}
        n_days = dataset.n_days
        racks = rng.choice(dataset.n_racks, size=count, replace=False)
        exit_days = rng.integers(
            int(self.earliest_fraction * n_days),
            max(int(self.earliest_fraction * n_days) + 1, int(0.95 * n_days)),
            size=count,
        )
        decommission = dataset.decommission_day.copy()
        decommission[racks] = np.minimum(decommission[racks], exit_days)

        columns = ticket_columns(dataset.tickets)
        keep = (columns[TICKET_LOG.day_index]
                < decommission[columns[TICKET_LOG.rack_index]])
        dropped = int((~keep).sum())
        columns = {name: values[keep] for name, values in columns.items()}

        temp = dataset.temp_f.copy()
        rh = dataset.rh.copy()
        days = np.arange(n_days)[:, np.newaxis]
        out_of_service = days >= decommission[np.newaxis, :]
        temp[out_of_service] = np.nan
        rh[out_of_service] = np.nan
        return (
            dataset.replace(
                tickets=log_from_columns(columns), temp_f=temp, rh=rh,
                decommission_day=decommission,
            ),
            {"racks_censored": count, "tickets_censored": dropped},
        )


@dataclass(frozen=True)
class CorruptionReport:
    """What a pipeline did: per-op severity and stat counters."""

    seed: int
    ops: tuple[tuple[str, float, dict[str, int]], ...] = field(default_factory=tuple)

    def stat(self, name: str) -> int:
        """Sum of one counter across all ops (0 when never reported)."""
        return sum(stats.get(name, 0) for _, _, stats in self.ops)

    def render(self) -> str:
        """One line per operator."""
        lines = [f"corruption pipeline (seed {self.seed}):"]
        for name, severity, stats in self.ops:
            detail = ", ".join(f"{key}={value}" for key, value in stats.items())
            lines.append(f"  {name:16s} severity={severity:.2f}  {detail}")
        return "\n".join(lines)


class CorruptionPipeline:
    """Ordered composition of corruption operators.

    Args:
        ops: operators, applied in sequence.
        seed: master seed for the ``fielddata:*`` streams (independent
            of the simulation's own streams even when numerically equal,
            because stream names never collide).
    """

    def __init__(self, ops: Sequence[CorruptionOp], seed: int = 0):
        self.ops = tuple(ops)
        self.seed = int(seed)

    def apply(self, dataset: FieldDataset) -> tuple[FieldDataset, CorruptionReport]:
        """Run every operator; returns (corrupted dataset, report)."""
        rngs = RngRegistry(self.seed)
        applied: list[tuple[str, float, dict[str, int]]] = []
        for op in self.ops:
            dataset, stats = op.apply(dataset, rngs.stream(op.stream_name))
            applied.append((op.name, op.severity, stats))
        return dataset, CorruptionReport(seed=self.seed, ops=tuple(applied))


def standard_pipeline(severity: float, seed: int = 0) -> CorruptionPipeline:
    """The default all-pathologies pipeline at one shared severity.

    At severity 0 every operator is the identity, so the pipeline output
    is bit-identical to its input.
    """
    if not 0.0 <= severity <= 1.0:
        raise ConfigError(f"severity must be in [0, 1], got {severity}")
    return CorruptionPipeline(
        ops=(
            DuplicateTickets(severity),
            DropTickets(severity),
            JitterTimestamps(severity),
            MisattributeTickets(severity),
            SensorGaps(severity),
            StuckSensors(severity),
            CensorInventory(severity),
        ),
        seed=seed,
    )
