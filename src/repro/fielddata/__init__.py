"""Field-data degradation and ingestion: the "cloudy" in cloudy data.

The paper's analyses run on operational exhaust — RMA tickets and BMS
sensor streams that real estates record with duplicates, gaps, wrong
fault codes and mid-trace decommissions.  The simulator's output is
pristine, so this package closes the realism gap from both sides:

* **Degradation** (:mod:`~repro.fielddata.corruption`): deterministic,
  composable corruption operators that turn a clean
  :class:`~repro.failures.engine.SimulationResult` export into the kind
  of dataset an operator actually inherits.  Severity 0 is a
  bit-identical identity, and every operator draws from its own named
  RNG stream (``fielddata:<op>``), so corrupted datasets are exactly
  reproducible.
* **Ingestion** (:mod:`~repro.fielddata.ingest`,
  :mod:`~repro.fielddata.cleaning`): typed CSV loaders with per-row
  error context, plus a cleaning pipeline — ticket dedup, sensor gap
  repair, stuck-reading removal and censoring-aware exposure
  accounting — that reconstructs an analysis-ready run.
* **Robustness** (:mod:`~repro.fielddata.robustness`): re-runs the
  paper's Q1/Q2/Q3 headline metrics across corruption severities to
  measure how fast single-factor vs multi-factor conclusions decay
  with data quality.
"""

from .cleaning import CleaningReport, clean_dataset, fleet_lambda, rack_exposure_days
from .corruption import (
    CensorInventory,
    CorruptionPipeline,
    CorruptionReport,
    DropTickets,
    DuplicateTickets,
    JitterTimestamps,
    MisattributeTickets,
    SensorGaps,
    StuckSensors,
    standard_pipeline,
)
from .dataset import FieldDataset, log_from_columns, ticket_columns
from .ingest import (
    export_dataset,
    load_field_dataset,
    load_inventory_csv,
    load_tickets_csv,
)
from .robustness import (
    NoisePoint,
    degrade_and_clean,
    headline_metrics,
    noise_sweep_result,
    render_noise_points,
)

__all__ = [
    "CensorInventory",
    "CleaningReport",
    "CorruptionPipeline",
    "CorruptionReport",
    "DropTickets",
    "DuplicateTickets",
    "FieldDataset",
    "JitterTimestamps",
    "MisattributeTickets",
    "NoisePoint",
    "SensorGaps",
    "StuckSensors",
    "clean_dataset",
    "degrade_and_clean",
    "export_dataset",
    "fleet_lambda",
    "headline_metrics",
    "load_field_dataset",
    "load_inventory_csv",
    "load_tickets_csv",
    "log_from_columns",
    "noise_sweep_result",
    "rack_exposure_days",
    "render_noise_points",
    "standard_pipeline",
    "ticket_columns",
]
