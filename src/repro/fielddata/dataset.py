"""The field dataset: exactly what an operator has, nothing more.

A :class:`FieldDataset` bundles the three artifacts a real reliability
study starts from — the RMA ticket log, the BMS sensor streams and the
rack inventory (with commission and, when censored, decommission
dates).  It deliberately excludes simulator ground truth; corruption
operators transform it, the cleaning pipeline repairs it, and
:meth:`FieldDataset.to_result` reconstitutes an analysis-ready
:class:`~repro.failures.engine.SimulationResult` so every existing
analysis runs unchanged on degraded data.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datacenter.topology import Fleet
from ..environment.bms import BuildingManagementSystem
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import TicketLog
from ..telemetry.schema import TICKET_LOG, TICKET_LOG_COLUMNS

if TYPE_CHECKING:
    from ..config import SimulationConfig

#: Canonical column order of the columnar ticket log (the declared
#: TicketLog schema re-exported under the historical local name).
TICKET_COLUMN_NAMES = TICKET_LOG_COLUMNS


def ticket_columns(log: TicketLog) -> dict[str, np.ndarray]:
    """The log's columns as a name → array dict (shared, do not mutate)."""
    return {name: getattr(log, name) for name in TICKET_COLUMN_NAMES}


def log_from_columns(
    columns: dict[str, np.ndarray],
    canonical_sort: bool = False,
) -> TicketLog:
    """Build a finalized :class:`TicketLog` from column arrays.

    Args:
        columns: the eight ticket columns (see ``TICKET_COLUMN_NAMES``).
        canonical_sort: re-sort into the engine's chronological order
            (day, hour, fault, rack, server) — stable, so an
            already-canonical log round-trips bit-identically.
    """
    missing = [name for name in TICKET_COLUMN_NAMES if name not in columns]
    if missing:
        raise DataError(f"ticket columns missing {missing}")
    columns = {name: np.asarray(columns[name]) for name in TICKET_COLUMN_NAMES}
    if canonical_sort and len(columns[TICKET_LOG.day_index]):
        order = np.lexsort((
            columns[TICKET_LOG.server_offset], columns[TICKET_LOG.rack_index],
            columns[TICKET_LOG.fault_code], columns[TICKET_LOG.start_hour_abs],
            columns[TICKET_LOG.day_index],
        ))
        columns = {name: values[order] for name, values in columns.items()}
    log = TicketLog()
    log.append_chunk(**columns)
    log.finalize()
    return log


@dataclass(frozen=True)
class FieldDataset:
    """One run's worth of operator-visible field data.

    Attributes:
        config: the simulation configuration the data came from (used to
            rebuild the deterministic substrate on reconstruction).
        fleet: the rack inventory/topology.
        tickets: the RMA ticket log.
        temp_f: (n_days, n_racks) observed inlet temperature; NaN where
            the reading is missing.
        rh: (n_days, n_racks) observed relative humidity; NaN likewise.
        decommission_day: (n_racks,) day each rack left service;
            ``n_days`` for racks still in service at trace end.
    """

    config: "SimulationConfig"
    fleet: Fleet
    tickets: TicketLog
    temp_f: np.ndarray
    rh: np.ndarray
    decommission_day: np.ndarray

    def __post_init__(self) -> None:
        if self.temp_f.shape != self.rh.shape:
            raise DataError(
                f"sensor shape mismatch: temp {self.temp_f.shape} vs rh {self.rh.shape}"
            )
        if self.temp_f.shape != (self.config.n_days, self.fleet.n_racks):
            raise DataError(
                f"sensor matrices are {self.temp_f.shape}, expected "
                f"({self.config.n_days}, {self.fleet.n_racks})"
            )
        if self.decommission_day.shape != (self.fleet.n_racks,):
            raise DataError(
                f"decommission_day has shape {self.decommission_day.shape}, "
                f"expected ({self.fleet.n_racks},)"
            )

    @property
    def n_days(self) -> int:
        """Observation-window length in days."""
        return self.config.n_days

    @property
    def n_racks(self) -> int:
        """Number of racks in the inventory."""
        return self.fleet.n_racks

    @property
    def censored_mask(self) -> np.ndarray:
        """Boolean per-rack mask: decommissioned before trace end."""
        return self.decommission_day < self.n_days

    @staticmethod
    def from_result(result: SimulationResult) -> "FieldDataset":
        """Capture a run's operator-visible outputs (arrays are shared;
        corruption/cleaning operators copy before modifying)."""
        n_days = result.n_days
        return FieldDataset(
            config=result.config,
            fleet=result.fleet,
            tickets=result.tickets,
            temp_f=result.bms.temp_f,
            rh=result.bms.rh,
            decommission_day=np.full(result.fleet.n_racks, n_days, dtype=np.int64),
        )

    def replace(self, **changes) -> "FieldDataset":
        """A copy with the given fields swapped out."""
        return dataclasses.replace(self, **changes)

    def to_result(self, base: SimulationResult | None = None) -> SimulationResult:
        """Reconstitute an analysis-ready :class:`SimulationResult`.

        The deterministic substrate (calendar, true environment) is
        taken from ``base`` when provided — it only depends on the
        config, so sharing it avoids regeneration — and rebuilt from the
        config otherwise.  Tickets and BMS telemetry come from *this*
        dataset, so analyses see the (possibly degraded or cleaned)
        field data.
        """
        from ..environment.conditions import EnvironmentSeries
        from ..rng import RngRegistry
        from ..units import SimCalendar

        config = self.config
        if base is not None:
            calendar, environment = base.calendar, base.environment
        else:
            rngs = RngRegistry(config.seed)
            calendar = SimCalendar(
                start_day_of_week=config.start_day_of_week,
                start_day_of_year=config.start_day_of_year,
            )
            environment = EnvironmentSeries(
                self.fleet, config.n_days, rngs,
                start_day_of_year=config.start_day_of_year,
            )
        bms = BuildingManagementSystem(self.fleet).rebuild_log(self.temp_f, self.rh)
        return SimulationResult(
            config=config, fleet=self.fleet, calendar=calendar,
            environment=environment, bms=bms, tickets=self.tickets,
        )
