"""Noise robustness of the paper's headline conclusions.

The paper's central claim is methodological: multi-factor (MF)
analyses of field data are trustworthy where single-factor (SF)
analyses mislead.  Real field data is never clean, so this module
stress-tests that claim — it degrades a run's operator-visible data
through the standard corruption pipeline at increasing severity, runs
the cleaning pipeline, re-computes every headline metric, and reports
which conclusions survive.  At severity 0 the degrade→clean→re-analyze
loop is bit-identical to analyzing the pristine run directly.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..decisions.availability import AvailabilitySla
from ..decisions.climate import climate_group_rates, discover_climate_thresholds
from ..decisions.sku_ranking import compare_skus
from ..decisions.spares import SpareProvisioner
from ..errors import ConfigError, ReproError
from ..failures.engine import SimulationResult
from ..reporting.context import fielddata_stage as stage_name
from .cleaning import CleaningReport, clean_dataset, fleet_lambda
from .corruption import CorruptionReport, standard_pipeline
from .dataset import FieldDataset

if TYPE_CHECKING:
    from ..reporting.context import AnalysisContext

#: Severity grid used by the registered ``fielddata`` experiment.
DEFAULT_SEVERITIES = (0.0, 0.5, 1.0)

#: Metric names, matching :data:`repro.reporting.sweeps.HEADLINE_METRICS`.
METRIC_NAMES = (
    "Q2 SF S2/S4 average-rate ratio",
    "Q2 MF S2/S4 average-rate ratio",
    "Q1 SF over-provision W6@100% (%)",
    "Q1 MF over-provision W6@100% (%)",
    "Q3 DC1 temperature split (F)",
    "Q3 DC1 hot/cool disk-rate ratio",
)


def headline_metrics(result: SimulationResult) -> dict[str, float]:
    """All headline metrics of one (possibly reconstituted) run.

    Same names and definitions as
    :data:`repro.reporting.sweeps.HEADLINE_METRICS`, but evaluated in
    consolidated blocks — the SKU comparison and the spare provisioner
    are each built once and reused for their SF and MF variants, which
    matters when the metrics are re-evaluated per severity level.
    Metrics a realization cannot support record NaN.
    """
    values = dict.fromkeys(METRIC_NAMES, float("nan"))
    with contextlib.suppress(ReproError):
        comparison = compare_skus(result)
        values["Q2 SF S2/S4 average-rate ratio"] = float(
            comparison.sf_ratio("S2", "S4", "mean"))
        values["Q2 MF S2/S4 average-rate ratio"] = float(
            comparison.mf_ratio("S2", "S4", "mean"))
    with contextlib.suppress(ReproError):
        provisioner = SpareProvisioner(result, window_hours=24.0)
        sla = AvailabilitySla(1.0)
        values["Q1 SF over-provision W6@100% (%)"] = 100.0 * float(
            provisioner.single_factor("W6", sla).overprovision)
        values["Q1 MF over-provision W6@100% (%)"] = 100.0 * float(
            provisioner.multi_factor("W6", sla).overprovision)
    with contextlib.suppress(ReproError):
        found = discover_climate_thresholds(result, "DC1")
        if found.temp_threshold_f is not None:
            values["Q3 DC1 temperature split (F)"] = float(found.temp_threshold_f)
        group = climate_group_rates(result, "DC1")
        values["Q3 DC1 hot/cool disk-rate ratio"] = float(group.hot / group.cool)
    return values


@dataclass(frozen=True)
class NoisePoint:
    """One severity level's worth of the degradation experiment.

    Attributes:
        severity: shared severity knob of the standard pipeline.
        metrics: headline metric name → value after degrade + clean.
        lambda_naive: fleet hardware λ with the naive whole-window
            denominator (RMAs per rack-day).
        lambda_exposure: the same λ with censoring-aware exposure.
        corruption: what the corruption pipeline injected.
        cleaning: what the cleaning pipeline found and repaired.
    """

    severity: float
    metrics: dict[str, float]
    lambda_naive: float
    lambda_exposure: float
    corruption: CorruptionReport
    cleaning: CleaningReport


def degrade_and_clean(
    result: SimulationResult,
    severity: float,
    seed: int | None = None,
) -> tuple[SimulationResult, NoisePoint]:
    """Degrade one run's field data, clean it, and re-analyze.

    The corruption seed defaults to the run's own seed so the whole
    chain stays a pure function of (config, severity).  Returns the
    reconstituted result (sharing the base run's deterministic
    substrate) and the :class:`NoisePoint` for this severity.
    """
    pipeline_seed = result.config.seed if seed is None else seed
    dataset = FieldDataset.from_result(result)
    corrupted, corruption = standard_pipeline(severity, seed=pipeline_seed).apply(dataset)
    cleaned, cleaning = clean_dataset(corrupted)
    degraded_result = cleaned.to_result(base=result)
    point = NoisePoint(
        severity=severity,
        metrics=headline_metrics(degraded_result),
        lambda_naive=fleet_lambda(cleaned, censoring_aware=False),
        lambda_exposure=fleet_lambda(cleaned, censoring_aware=True),
        corruption=corruption,
        cleaning=cleaning,
    )
    return degraded_result, point


def noise_sweep_result(
    result: SimulationResult,
    severities: Sequence[float] = DEFAULT_SEVERITIES,
) -> list[NoisePoint]:
    """Run :func:`degrade_and_clean` across a severity grid."""
    if not severities:
        raise ConfigError("need at least one severity level")
    return [degrade_and_clean(result, severity)[1] for severity in severities]


def noise_point_payload(result: SimulationResult, severity: float) -> dict:
    """One severity's :class:`NoisePoint`, as a JSON-serializable dict.

    This is the artifact behind the pipeline's ``fielddata:sev=…``
    stages (see :func:`stage_name`): everything the rendering needs —
    metrics, the two λ estimates and the cleaning summary text — and
    nothing process-bound, so it round-trips through the artifact
    store's ``json`` codec bit-identically.
    """
    return _point_payload(degrade_and_clean(result, severity)[1])


def _point_payload(point: NoisePoint) -> dict:
    return {
        "severity": point.severity,
        "metrics": dict(point.metrics),
        "lambda_naive": point.lambda_naive,
        "lambda_exposure": point.lambda_exposure,
        "cleaning_text": point.cleaning.render(),
    }


def _survival_verdict(payloads: list[dict]) -> list[str]:
    """SF-vs-MF survival lines for the two paired conclusions."""
    baseline = payloads[0]["metrics"]
    lines = []
    for question, sf_name, mf_name in (
        ("Q2 SKU ranking", "Q2 SF S2/S4 average-rate ratio",
         "Q2 MF S2/S4 average-rate ratio"),
        ("Q1 spare provisioning", "Q1 SF over-provision W6@100% (%)",
         "Q1 MF over-provision W6@100% (%)"),
    ):
        for label, name in (("SF", sf_name), ("MF", mf_name)):
            base = baseline[name]
            worst = max(
                abs(payload["metrics"][name] - base)
                for payload in payloads
            )
            relative = worst / abs(base) if base else float("inf")
            lines.append(
                f"  {question} ({label}): max drift {relative:6.1%} "
                f"of clean value across severities"
            )
    return lines


def render_noise_payloads(payloads: list[dict]) -> str:
    """The degradation table: metrics in rows, severities in columns."""
    severities = [payload["severity"] for payload in payloads]
    header = f"{'metric':38s}" + "".join(
        f"  sev={severity:4.2f}" for severity in severities
    )
    lines = [
        "Field-data robustness: headline metrics vs corruption severity",
        "(standard pipeline, cleaned before analysis)",
        "",
        header,
    ]
    for name in METRIC_NAMES:
        row = f"{name:38s}" + "".join(
            f"  {payload['metrics'][name]:8.3f}" for payload in payloads
        )
        lines.append(row)
    lines.append(
        f"{'fleet HW lambda (naive, /rack-day)':38s}" + "".join(
            f"  {payload['lambda_naive']:8.5f}" for payload in payloads
        )
    )
    lines.append(
        f"{'fleet HW lambda (exposure-aware)':38s}" + "".join(
            f"  {payload['lambda_exposure']:8.5f}" for payload in payloads
        )
    )
    lines.append("")
    lines.extend(_survival_verdict(payloads))
    lines.append("")
    for payload in payloads:
        lines.append(
            f"severity {payload['severity']:.2f}: {payload['cleaning_text']}"
        )
    return "\n".join(lines)


def render_noise_points(points: list[NoisePoint]) -> str:
    """Render :class:`NoisePoint` objects (payload-form convenience)."""
    return render_noise_payloads([_point_payload(point) for point in points])


def fielddata_experiment(context: "AnalysisContext") -> str:
    """Registered experiment: noise sweep on the context's run.

    When the context is a view over a pipeline, each severity's payload
    is sourced from its ``fielddata:sev=…`` stage — cached and shared
    with the noise-sweep driver — and only computed here otherwise.
    """
    artifacts = getattr(context, "artifacts", None)
    payloads = []
    for severity in DEFAULT_SEVERITIES:
        payload = None
        if artifacts is not None and artifacts.has_stage(stage_name(severity)):
            payload = artifacts.get(stage_name(severity))
        if payload is None:
            payload = noise_point_payload(context.result, severity)
        payloads.append(payload)
    return render_noise_payloads(payloads)
