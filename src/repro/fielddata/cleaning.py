"""Cleaning pipeline: make degraded field data analysis-ready again.

Mirrors what the paper's authors had to do before any analysis
("making sense" of the data): collapse re-filed RMA duplicates, repair
sensor streams (gaps interpolated, stuck-at runs discarded), drop
inconsistent tickets, and account for right-censored racks through
exposure-based rate estimation instead of naive whole-window division.

Idempotence contract: cleaning an already-clean dataset changes no
ticket (the log round-trips bit-identically) and cleaning twice equals
cleaning once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError
from ..failures.tickets import HARDWARE_FAULTS, FaultType, TicketLog
from ..telemetry.schema import TICKET_LOG
from .dataset import FieldDataset, log_from_columns, ticket_columns

#: Re-filed duplicates land within this window of the original ticket.
DEFAULT_DEDUP_WINDOW_HOURS = 2.0

#: Shortest run of bit-equal consecutive readings treated as stuck.
DEFAULT_MIN_STUCK_RUN = 3


@dataclass(frozen=True)
class CleaningReport:
    """What the cleaning pass found and repaired.

    Attributes:
        duplicates_removed: tickets collapsed by the dedup window.
        orphans_dropped: tickets outside the window or after their
            rack's decommission day.
        stuck_cells_discarded: sensor readings in stuck-at runs
            (replaced by interpolation).
        cells_imputed: missing sensor readings filled by interpolation.
        racks_censored: racks decommissioned before trace end.
        mean_coverage: mean per-rack fraction of in-service sensor
            readings that were actually observed (not imputed).
    """

    duplicates_removed: int
    orphans_dropped: int
    stuck_cells_discarded: int
    cells_imputed: int
    racks_censored: int
    mean_coverage: float

    @property
    def touched(self) -> bool:
        """True when cleaning changed anything at all."""
        return bool(
            self.duplicates_removed or self.orphans_dropped
            or self.stuck_cells_discarded or self.cells_imputed
        )

    def render(self) -> str:
        """One-paragraph summary."""
        return (
            f"cleaning: {self.duplicates_removed} duplicates collapsed, "
            f"{self.orphans_dropped} orphan tickets dropped, "
            f"{self.stuck_cells_discarded} stuck readings discarded, "
            f"{self.cells_imputed} sensor cells imputed, "
            f"{self.racks_censored} censored racks "
            f"(mean sensor coverage {self.mean_coverage:.1%})"
        )


def dedupe_tickets(
    log: TicketLog,
    window_hours: float = DEFAULT_DEDUP_WINDOW_HOURS,
) -> tuple[TicketLog, int]:
    """Collapse re-filed RMAs: same rack/server/fault/batch within the
    window keeps only the earliest filing.

    Returns the deduplicated log (canonically sorted) and the number of
    tickets removed.  "Within the window" chains off the last *kept*
    ticket, so a burst of re-filings all collapses into the original.
    """
    if window_hours <= 0:
        raise ConfigError(f"window_hours must be > 0, got {window_hours}")
    n = len(log)
    if n == 0:
        return log, 0
    columns = ticket_columns(log)
    start = columns[TICKET_LOG.start_hour_abs]
    keys = (columns[TICKET_LOG.batch_id], columns[TICKET_LOG.fault_code],
            columns[TICKET_LOG.server_offset], columns[TICKET_LOG.rack_index])
    order = np.lexsort((start,) + keys)
    same_key = np.ones(n, dtype=bool)
    same_key[0] = False
    for key in keys:
        sorted_key = key[order]
        same_key[1:] &= sorted_key[1:] == sorted_key[:-1]
    start_sorted = start[order]
    gap_ok = np.empty(n, dtype=bool)
    gap_ok[0] = False
    gap_ok[1:] = (start_sorted[1:] - start_sorted[:-1]) < window_hours
    candidate = same_key & gap_ok
    drop_sorted = np.zeros(n, dtype=bool)
    for position in np.flatnonzero(candidate).tolist():
        previous = position - 1
        while drop_sorted[previous]:
            previous -= 1
        if start_sorted[position] - start_sorted[previous] < window_hours:
            drop_sorted[position] = True
    if not drop_sorted.any():
        return log_from_columns(columns, canonical_sort=True), 0
    keep_rows = order[~drop_sorted]
    kept = {name: values[keep_rows] for name, values in columns.items()}
    return log_from_columns(kept, canonical_sort=True), int(drop_sorted.sum())


def drop_orphan_tickets(
    log: TicketLog,
    decommission_day: np.ndarray,
    n_days: int,
) -> tuple[TicketLog, int]:
    """Drop tickets outside the window or after their rack left service.

    Such rows are internally inconsistent (a decommissioned rack cannot
    file an RMA) and typically indicate mis-keyed rack ids upstream.
    """
    columns = ticket_columns(log)
    day = columns[TICKET_LOG.day_index]
    keep = ((day >= 0) & (day < n_days)
            & (day < decommission_day[columns[TICKET_LOG.rack_index]]))
    dropped = int((~keep).sum())
    if dropped == 0:
        return log, 0
    kept = {name: values[keep] for name, values in columns.items()}
    return log_from_columns(kept), dropped


def stuck_run_mask(
    values: np.ndarray,
    min_run: int = DEFAULT_MIN_STUCK_RUN,
    boundary_values: tuple[float, ...] = (),
) -> np.ndarray:
    """Cells belonging to runs of bit-equal consecutive readings.

    Healthy continuous sensor noise never repeats exactly, so a run of
    ``min_run``-plus identical readings marks a stuck sensor.  The
    *first* cell of each run is kept (it was the last true reading);
    the repeats are flagged.  Values in ``boundary_values`` (physical
    clip limits like RH 0/100, where honest repeats occur) are exempt.

    Args:
        values: (n_days, n_racks) readings, NaN allowed.
        min_run: shortest repeat count treated as stuck.
        boundary_values: exact values never flagged.

    Returns:
        Boolean matrix, True where the reading should be discarded.
    """
    if min_run < 2:
        raise ConfigError(f"min_run must be >= 2, got {min_run}")
    n_days = values.shape[0]
    flagged = np.zeros_like(values, dtype=bool)
    if n_days < min_run:
        return flagged
    repeat = values[1:] == values[:-1]  # NaN != NaN, so gaps break runs
    for boundary in boundary_values:
        repeat &= values[1:] != boundary
    # Run length ending at each cell: count consecutive repeats upward.
    run = np.zeros_like(values, dtype=np.int64)
    for day in range(1, n_days):
        run[day] = np.where(repeat[day - 1], run[day - 1] + 1, 0)
    # A cell is stuck when it sits inside a run whose total length
    # (including cells after it) reaches min_run repeats.
    longest_ahead = run.copy()
    for day in range(n_days - 2, -1, -1):
        extends = run[day + 1] > 0
        longest_ahead[day] = np.where(extends, longest_ahead[day + 1],
                                      run[day])
    flagged = (run > 0) & (longest_ahead >= min_run - 1)
    return flagged


def interpolate_gaps(
    values: np.ndarray,
    discard: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fill missing readings per rack by linear interpolation over days.

    Args:
        values: (n_days, n_racks) readings with NaN gaps.
        discard: optional extra mask of cells to treat as missing
            (e.g. stuck runs).

    Returns:
        (filled matrix, imputed-cell mask).  Edge gaps extend the
        nearest observed value, matching
        :meth:`~repro.environment.bms.BmsLog.filled_temp_f`; a rack
        with no surviving reading at all is rejected.
    """
    filled = values.copy()
    if discard is not None:
        filled[discard] = np.nan
    missing = np.isnan(filled)
    if not missing.any():
        return filled, missing
    days = np.arange(values.shape[0])
    for rack in np.flatnonzero(missing.any(axis=0)).tolist():
        column = filled[:, rack]
        hole = missing[:, rack]
        if hole.all():
            raise DataError(
                f"rack column {rack} has no valid readings to interpolate"
            )
        column[hole] = np.interp(days[hole], days[~hole], column[~hole])
    return filled, missing


def rack_exposure_days(
    commission_day: np.ndarray,
    decommission_day: np.ndarray,
    n_days: int,
) -> np.ndarray:
    """In-service days per rack, censoring-aware.

    Exposure runs from commissioning (clamped into the window) to the
    decommission day (or trace end).  This is the denominator a λ
    estimator must use on censored data; dividing by the whole window
    under-counts every decommissioned rack's rate.
    """
    start = np.clip(np.asarray(commission_day, dtype=np.int64), 0, n_days)
    stop = np.clip(np.asarray(decommission_day, dtype=np.int64), 0, n_days)
    return np.maximum(stop - start, 0).astype(np.int64)


def fleet_lambda(
    dataset: FieldDataset,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    censoring_aware: bool = True,
) -> float:
    """Fleet failure rate λ in filed RMAs per rack-day.

    True positives only, batch events counted once (one filed ticket
    per event), matching the paper's Table II accounting.

    Args:
        dataset: field dataset (cleaned or raw).
        faults: fault set (default: hardware).
        censoring_aware: divide by actual rack exposure; ``False`` uses
            the naive whole-window denominator to expose the censoring
            bias.
    """
    faults = tuple(faults) if faults is not None else HARDWARE_FAULTS
    log = dataset.tickets
    mask = log.true_positive_mask() & log.mask_for_faults(list(faults))
    mask &= log.batch_dedupe_mask()
    count = int(mask.sum())
    commission = dataset.fleet.arrays().commission_day
    if censoring_aware:
        exposure = rack_exposure_days(
            commission, dataset.decommission_day, dataset.n_days,
        ).sum()
    else:
        exposure = rack_exposure_days(
            commission,
            np.full(dataset.n_racks, dataset.n_days, dtype=np.int64),
            dataset.n_days,
        ).sum()
    if exposure <= 0:
        raise DataError("fleet has zero in-service exposure")
    return count / float(exposure)


def clean_dataset(
    dataset: FieldDataset,
    dedup_window_hours: float = DEFAULT_DEDUP_WINDOW_HOURS,
    min_stuck_run: int = DEFAULT_MIN_STUCK_RUN,
) -> tuple[FieldDataset, CleaningReport]:
    """Run the full cleaning pipeline over a field dataset.

    Steps, in order: drop orphan tickets (outside the window or past
    their rack's decommission day), collapse duplicate RMAs, discard
    stuck-at sensor runs, and interpolate every missing reading (gap
    cells, discarded stuck cells, censored tails).  Coverage is
    measured against each rack's in-service exposure only.

    Returns the cleaned dataset and a :class:`CleaningReport`.
    """
    log, orphans = drop_orphan_tickets(
        dataset.tickets, dataset.decommission_day, dataset.n_days,
    )
    log, duplicates = dedupe_tickets(log, window_hours=dedup_window_hours)

    stuck_temp = stuck_run_mask(dataset.temp_f, min_run=min_stuck_run)
    stuck_rh = stuck_run_mask(dataset.rh, min_run=min_stuck_run,
                              boundary_values=(0.0, 100.0))
    temp, imputed_temp = interpolate_gaps(dataset.temp_f, discard=stuck_temp)
    rh, imputed_rh = interpolate_gaps(dataset.rh, discard=stuck_rh)

    commission = dataset.fleet.arrays().commission_day
    exposure = rack_exposure_days(
        commission, dataset.decommission_day, dataset.n_days,
    )
    days = np.arange(dataset.n_days)[:, np.newaxis]
    in_service = (
        (days >= np.maximum(commission, 0)[np.newaxis, :])
        & (days < dataset.decommission_day[np.newaxis, :])
    )
    observed = (~imputed_temp & in_service).sum(axis=0) + (
        ~imputed_rh & in_service
    ).sum(axis=0)
    with np.errstate(invalid="ignore"):
        coverage = np.where(exposure > 0, observed / (2.0 * np.maximum(exposure, 1)),
                            np.nan)

    report = CleaningReport(
        duplicates_removed=duplicates,
        orphans_dropped=orphans,
        stuck_cells_discarded=int(stuck_temp.sum() + stuck_rh.sum()),
        cells_imputed=int(imputed_temp.sum() + imputed_rh.sum()),
        racks_censored=int(dataset.censored_mask.sum()),
        mean_coverage=float(np.nanmean(coverage)),
    )
    cleaned = dataset.replace(tickets=log, temp_f=temp, rh=rh)
    return cleaned, report
