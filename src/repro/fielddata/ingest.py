"""Typed ingestion of exported field-data CSVs.

:func:`~repro.telemetry.io.read_csv_table` deliberately returns raw
strings; this module layers the domain schemas on top and reports
failures with per-row context (``tickets.csv: row 17: ...``), the way
an operator debugging a warehouse extract needs them.  Loaders
round-trip: ``export → load → export`` reproduces the original file
byte-for-byte.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datacenter.builder import build_fleet
from ..datacenter.topology import Fleet
from ..errors import DataError
from ..failures.tickets import FAULT_CATEGORY, FAULT_TYPES, TicketLog
from ..rng import RngRegistry
from ..telemetry.io import (
    INVENTORY_COLUMNS,
    TICKET_COLUMNS,
    export_fleet_inventory_csv,
    export_ticket_log_csv,
    read_csv_table,
)
from ..telemetry.schema import INVENTORY_CSV, TICKET_CSV, TICKET_LOG
from .dataset import FieldDataset, log_from_columns

if TYPE_CHECKING:
    from ..config import SimulationConfig

#: Label → integer fault code, as written by the ticket exporter.
FAULT_CODE_BY_LABEL: dict[str, int] = {
    fault.value: code for code, fault in enumerate(FAULT_TYPES)
}

_SENSOR_BUNDLE = "sensors.npz"


def _column(columns: dict[str, list[str]], name: str, path: pathlib.Path) -> list[str]:
    if name not in columns:
        raise DataError(
            f"{path}: missing column {name!r}; have {sorted(columns)}"
        )
    return columns[name]


def _parse_column(raw: list[str], converter, name: str, path: pathlib.Path,
                  dtype) -> np.ndarray:
    """Convert one raw string column, naming the first offending row.

    Data rows start at line 2 (line 1 is the header), so the reported
    row number matches what an editor shows.
    """
    parsed = []
    for index, cell in enumerate(raw):
        try:
            parsed.append(converter(cell))
        except (ValueError, KeyError):
            raise DataError(
                f"{path}: row {index + 2}: column {name!r}: "
                f"cannot parse {cell!r}"
            ) from None
    return np.array(parsed, dtype=dtype)


def _parse_bool(cell: str) -> bool:
    if cell not in ("0", "1"):
        raise ValueError(cell)
    return cell == "1"


def load_tickets_csv(path: str | pathlib.Path, fleet: Fleet) -> TicketLog:
    """Load an exported tickets CSV back into a typed :class:`TicketLog`.

    Fault-type labels are mapped back to codes and ``(dc, rack_id)``
    pairs back to flat rack indices against ``fleet``; any unknown
    label, unknown rack, or malformed cell raises a
    :class:`~repro.errors.DataError` naming the offending row.  Row
    order is preserved exactly (the exporter's ``ticket_id`` column is
    positional and regenerated on re-export).
    """
    path = pathlib.Path(path)
    columns = read_csv_table(path)
    for name in TICKET_COLUMNS:
        _column(columns, name, path)

    arrays = fleet.arrays()
    rack_index_by_id = {rack_id: index
                        for index, rack_id in enumerate(arrays.rack_ids)}
    dc_of_rack = {
        rack_id: arrays.dc_names[int(arrays.dc_code[index])]
        for rack_id, index in rack_index_by_id.items()
    }

    rack_index = _parse_column(
        columns[TICKET_CSV.rack_id], rack_index_by_id.__getitem__,
        TICKET_CSV.rack_id, path, np.int64,
    )
    fault_code = _parse_column(
        columns[TICKET_CSV.fault_type], FAULT_CODE_BY_LABEL.__getitem__,
        TICKET_CSV.fault_type, path, np.int64,
    )
    loaded = {
        TICKET_LOG.day_index: _parse_column(
            columns[TICKET_CSV.day_index], int, TICKET_CSV.day_index,
            path, np.int64),
        TICKET_LOG.start_hour_abs: _parse_column(
            columns[TICKET_CSV.start_hour_abs], float,
            TICKET_CSV.start_hour_abs, path, float),
        TICKET_LOG.rack_index: rack_index,
        TICKET_LOG.server_offset: _parse_column(
            columns[TICKET_CSV.server_offset], int, TICKET_CSV.server_offset,
            path, np.int64),
        TICKET_LOG.fault_code: fault_code,
        TICKET_LOG.false_positive: _parse_column(
            columns[TICKET_CSV.false_positive], _parse_bool,
            TICKET_CSV.false_positive, path, bool),
        TICKET_LOG.repair_hours: _parse_column(
            columns[TICKET_CSV.repair_hours], float, TICKET_CSV.repair_hours,
            path, float),
        TICKET_LOG.batch_id: _parse_column(
            columns[TICKET_CSV.batch_id], int, TICKET_CSV.batch_id,
            path, np.int64),
    }
    for row, (dc, rack_id) in enumerate(zip(columns[TICKET_CSV.dc],
                                            columns[TICKET_CSV.rack_id])):
        if dc_of_rack[rack_id] != dc:
            raise DataError(
                f"{path}: row {row + 2}: rack {rack_id!r} belongs to "
                f"{dc_of_rack[rack_id]!r}, not {dc!r}"
            )
    for row, (label, category) in enumerate(zip(columns[TICKET_CSV.fault_type],
                                                columns[TICKET_CSV.category])):
        expected = FAULT_CATEGORY[FAULT_TYPES[FAULT_CODE_BY_LABEL[label]]].value
        if category != expected:
            raise DataError(
                f"{path}: row {row + 2}: fault {label!r} is category "
                f"{expected!r}, not {category!r}"
            )
    return log_from_columns(loaded)


@dataclass(frozen=True)
class InventoryTable:
    """Typed view of an exported inventory CSV, one entry per rack.

    String columns stay as tuples of labels; numeric columns become
    typed numpy arrays.  ``decommission_day`` is ``None`` for plain
    exports (the column only appears in censored field datasets).
    """

    rack_id: tuple[str, ...]
    dc: tuple[str, ...]
    region: tuple[str, ...]
    row: np.ndarray
    sku: tuple[str, ...]
    vendor: tuple[str, ...]
    workload: tuple[str, ...]
    rated_power_kw: np.ndarray
    commission_day: np.ndarray
    n_servers: np.ndarray
    hdds_per_server: np.ndarray
    dimms_per_server: np.ndarray
    decommission_day: np.ndarray | None = None

    @property
    def n_racks(self) -> int:
        """Number of inventory rows."""
        return len(self.rack_id)

    def validate_against(self, fleet: Fleet) -> None:
        """Check the inventory matches a fleet row-for-row."""
        racks = fleet.racks
        if self.n_racks != len(racks):
            raise DataError(
                f"inventory has {self.n_racks} racks, fleet has {len(racks)}"
            )
        for index, rack in enumerate(racks):
            if self.rack_id[index] != rack.rack_id:
                raise DataError(
                    f"inventory row {index + 2}: rack {self.rack_id[index]!r} "
                    f"does not match fleet rack {rack.rack_id!r}"
                )
            if int(self.n_servers[index]) != rack.n_servers:
                raise DataError(
                    f"inventory row {index + 2}: {self.rack_id[index]} has "
                    f"{self.n_servers[index]} servers, fleet says {rack.n_servers}"
                )


def load_inventory_csv(path: str | pathlib.Path) -> InventoryTable:
    """Load an exported inventory CSV into a typed :class:`InventoryTable`."""
    path = pathlib.Path(path)
    columns = read_csv_table(path)
    for name in INVENTORY_COLUMNS:
        _column(columns, name, path)
    inv = INVENTORY_CSV
    decommission = None
    if inv.decommission_day in columns:
        decommission = _parse_column(columns[inv.decommission_day], int,
                                     inv.decommission_day, path, np.int64)
    return InventoryTable(
        rack_id=tuple(columns[inv.rack_id]),
        dc=tuple(columns[inv.dc]),
        region=tuple(columns[inv.region]),
        row=_parse_column(columns[inv.row], int, inv.row, path, np.int64),
        sku=tuple(columns[inv.sku]),
        vendor=tuple(columns[inv.vendor]),
        workload=tuple(columns[inv.workload]),
        rated_power_kw=_parse_column(columns[inv.rated_power_kw], float,
                                     inv.rated_power_kw, path, float),
        commission_day=_parse_column(columns[inv.commission_day], int,
                                     inv.commission_day, path, np.int64),
        n_servers=_parse_column(columns[inv.n_servers], int, inv.n_servers,
                                path, np.int64),
        hdds_per_server=_parse_column(columns[inv.hdds_per_server], int,
                                      inv.hdds_per_server, path, np.int64),
        dimms_per_server=_parse_column(columns[inv.dimms_per_server], int,
                                       inv.dimms_per_server, path, np.int64),
        decommission_day=decommission,
    )


def export_dataset(
    dataset: FieldDataset, out_dir: str | pathlib.Path,
) -> dict[str, pathlib.Path]:
    """Write a field dataset as ``tickets.csv`` + ``inventory.csv`` +
    ``sensors.npz`` under ``out_dir``; returns the paths written."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "tickets": out_dir / "tickets.csv",
        "inventory": out_dir / "inventory.csv",
        "sensors": out_dir / _SENSOR_BUNDLE,
    }
    export_ticket_log_csv(dataset.tickets, dataset.fleet, paths["tickets"])
    export_fleet_inventory_csv(
        dataset.fleet, paths["inventory"],
        decommission_day=dataset.decommission_day,
    )
    np.savez_compressed(
        paths["sensors"],
        temp_f=dataset.temp_f, rh=dataset.rh,
        decommission_day=dataset.decommission_day,
    )
    return paths


def load_field_dataset(
    in_dir: str | pathlib.Path, config: "SimulationConfig",
) -> FieldDataset:
    """Load an exported field dataset directory back into memory.

    The fleet is rebuilt deterministically from ``config`` and the
    inventory CSV is validated against it; tickets come from
    ``tickets.csv`` and sensor streams from ``sensors.npz``.
    """
    in_dir = pathlib.Path(in_dir)
    fleet = build_fleet(config.fleet, RngRegistry(config.seed))
    inventory = load_inventory_csv(in_dir / "inventory.csv")
    inventory.validate_against(fleet)
    tickets = load_tickets_csv(in_dir / "tickets.csv", fleet)
    bundle_path = in_dir / _SENSOR_BUNDLE
    if not bundle_path.exists():
        raise DataError(f"no sensor bundle at {bundle_path}")
    with np.load(bundle_path) as bundle:
        try:
            temp_f = bundle["temp_f"]
            rh = bundle["rh"]
        except KeyError as error:
            raise DataError(f"{bundle_path} is missing {error}") from error
    decommission = inventory.decommission_day
    if decommission is None:
        decommission = np.full(fleet.n_racks, config.n_days, dtype=np.int64)
    return FieldDataset(
        config=config, fleet=fleet, tickets=tickets,
        temp_f=temp_f, rh=rh, decommission_day=decommission,
    )
