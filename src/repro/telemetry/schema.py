"""Feature schema: typed column descriptions for telemetry tables.

Table III classifies every candidate feature as continuous (C), nominal
(N) or ordinal (O).  The distinction matters downstream: the CART
splitter searches threshold splits for continuous/ordinal features but
category-subset splits for nominal ones, and partial dependence grids
are built differently per kind.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum

from ..errors import SchemaError


class FeatureKind(Enum):
    """Statistical type of a feature (Table III's C/N/O)."""

    CONTINUOUS = "continuous"
    NOMINAL = "nominal"
    ORDINAL = "ordinal"


@dataclass(frozen=True)
class FeatureSpec:
    """One feature's description.

    Attributes:
        name: column name.
        kind: statistical type.
        categories: label list for nominal/ordinal features; column
            values are integer codes indexing into this list.  Ordinal
            categories must be listed in their natural order.
        description: human-readable meaning (used in reports).
    """

    name: str
    kind: FeatureKind
    categories: tuple[str, ...] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("feature name cannot be empty")
        if self.kind == FeatureKind.CONTINUOUS and self.categories is not None:
            raise SchemaError(f"{self.name}: continuous features take no categories")
        if self.kind == FeatureKind.NOMINAL and not self.categories:
            raise SchemaError(f"{self.name}: nominal features need categories")
        if self.categories is not None and len(set(self.categories)) != len(self.categories):
            raise SchemaError(f"{self.name}: duplicate categories")

    @property
    def is_categorical(self) -> bool:
        """True for nominal and ordinal (code-valued) features."""
        return self.kind != FeatureKind.CONTINUOUS

    def decode(self, code: int) -> str:
        """Category label for an integer code."""
        if self.categories is None:
            raise SchemaError(f"{self.name}: not a categorical feature")
        if not 0 <= code < len(self.categories):
            raise SchemaError(
                f"{self.name}: code {code} outside [0, {len(self.categories)})"
            )
        return self.categories[code]

    def encode(self, label: str) -> int:
        """Integer code for a category label."""
        if self.categories is None:
            raise SchemaError(f"{self.name}: not a categorical feature")
        try:
            return self.categories.index(label)
        except ValueError:
            raise SchemaError(
                f"{self.name}: unknown category {label!r}; have {self.categories}"
            ) from None


@dataclass(frozen=True)
class Schema:
    """An ordered collection of feature specs."""

    features: tuple[FeatureSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [feature.name for feature in self.features]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate feature names: {names}")

    def __iter__(self):
        return iter(self.features)

    def __len__(self) -> int:
        return len(self.features)

    def __contains__(self, name: str) -> bool:
        return any(feature.name == name for feature in self.features)

    @property
    def names(self) -> list[str]:
        """Feature names in schema order."""
        return [feature.name for feature in self.features]

    def get(self, name: str) -> FeatureSpec:
        """Look up a feature spec by name."""
        for feature in self.features:
            if feature.name == name:
                return feature
        raise SchemaError(f"unknown feature {name!r}; have {self.names}")

    def with_feature(self, spec: FeatureSpec) -> "Schema":
        """Return a new schema with ``spec`` appended."""
        return Schema(features=self.features + (spec,))

    def subset(self, names: list[str]) -> "Schema":
        """Return a schema restricted to ``names``, in the given order."""
        return Schema(features=tuple(self.get(name) for name in names))


# ---------------------------------------------------------------------------
# Field-name constants for the operator-visible artifacts.
#
# Every dict key or CSV column that names a ticket/inventory field must
# come from these namespaces, never from an inline string literal — the
# ``schema-fields`` rule in :mod:`repro.staticcheck` enforces it.  The
# rule derives its key set from these dataclasses at lint time, so
# adding a field here automatically extends the check.


@dataclass(frozen=True)
class _TicketLogFields:
    """Columnar array names of an in-memory ``TicketLog``."""

    day_index: str = "day_index"
    start_hour_abs: str = "start_hour_abs"
    rack_index: str = "rack_index"
    server_offset: str = "server_offset"
    fault_code: str = "fault_code"
    false_positive: str = "false_positive"
    repair_hours: str = "repair_hours"
    batch_id: str = "batch_id"


@dataclass(frozen=True)
class _TicketCsvFields:
    """Column names of an exported ``tickets.csv``."""

    ticket_id: str = "ticket_id"
    day_index: str = "day_index"
    start_hour_abs: str = "start_hour_abs"
    dc: str = "dc"
    rack_id: str = "rack_id"
    server_offset: str = "server_offset"
    fault_type: str = "fault_type"
    category: str = "category"
    false_positive: str = "false_positive"
    repair_hours: str = "repair_hours"
    batch_id: str = "batch_id"


@dataclass(frozen=True)
class _InventoryCsvFields:
    """Column names of an exported ``inventory.csv``.

    ``decommission_day`` only appears in censored field datasets; it is
    not part of :data:`INVENTORY_CSV_COLUMNS`.
    """

    rack_id: str = "rack_id"
    dc: str = "dc"
    region: str = "region"
    row: str = "row"
    sku: str = "sku"
    vendor: str = "vendor"
    workload: str = "workload"
    rated_power_kw: str = "rated_power_kw"
    commission_day: str = "commission_day"
    n_servers: str = "n_servers"
    hdds_per_server: str = "hdds_per_server"
    dimms_per_server: str = "dimms_per_server"
    decommission_day: str = "decommission_day"


#: Singleton namespaces; use e.g. ``columns[TICKET_LOG.day_index]``.
TICKET_LOG = _TicketLogFields()
TICKET_CSV = _TicketCsvFields()
INVENTORY_CSV = _InventoryCsvFields()

#: Canonical column orders (CSV headers / columnar layouts).
TICKET_LOG_COLUMNS: tuple[str, ...] = tuple(
    getattr(TICKET_LOG, f.name) for f in dataclasses.fields(TICKET_LOG)
)
TICKET_CSV_COLUMNS: tuple[str, ...] = tuple(
    getattr(TICKET_CSV, f.name) for f in dataclasses.fields(TICKET_CSV)
)
INVENTORY_CSV_COLUMNS: tuple[str, ...] = tuple(
    getattr(INVENTORY_CSV, f.name) for f in dataclasses.fields(INVENTORY_CSV)
    if f.name != "decommission_day"
)


def telemetry_field_names() -> frozenset[str]:
    """Every declared ticket/inventory field name.

    This is the single source of truth the ``schema-fields`` lint rule
    checks string literals against.
    """
    names: set[str] = set()
    for namespace in (TICKET_LOG, TICKET_CSV, INVENTORY_CSV):
        names.update(
            getattr(namespace, f.name) for f in dataclasses.fields(namespace)
        )
    return frozenset(names)


DAY_CATEGORIES = ("Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat")
MONTH_CATEGORIES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def table_iii_schema(
    dc_names: list[str],
    region_names: list[str],
    sku_names: list[str],
    workload_names: list[str],
) -> Schema:
    """The paper's candidate-feature list (Table III) for a given fleet.

    Age and rated power are listed as continuous here (the paper marks
    them "C"); temporal features are ordinal; identity-like features
    (DC, region, SKU, workload) are nominal.
    """
    return Schema(features=(
        FeatureSpec("sku", FeatureKind.NOMINAL, tuple(sku_names),
                    "hardware SKU (vendor/model proxy)"),
        FeatureSpec("age_months", FeatureKind.CONTINUOUS,
                    description="equipment age in months (0-5 years)"),
        FeatureSpec("rated_power_kw", FeatureKind.CONTINUOUS,
                    description="rack rated power, 4-15 kW"),
        FeatureSpec("workload", FeatureKind.NOMINAL, tuple(workload_names),
                    "workload owning the rack"),
        FeatureSpec("temp_f", FeatureKind.CONTINUOUS,
                    description="rack inlet temperature, 56-90 F"),
        FeatureSpec("rh", FeatureKind.CONTINUOUS,
                    description="rack relative humidity, 5-87%"),
        FeatureSpec("dc", FeatureKind.NOMINAL, tuple(dc_names),
                    "datacenter"),
        FeatureSpec("region", FeatureKind.NOMINAL, tuple(region_names),
                    "region within the datacenter"),
        FeatureSpec("row", FeatureKind.ORDINAL,
                    tuple(str(i) for i in range(1, 33)),
                    "row of racks within the datacenter"),
        FeatureSpec("day_of_week", FeatureKind.ORDINAL, DAY_CATEGORIES,
                    "day of week (Sun-Sat)"),
        FeatureSpec("week_of_year", FeatureKind.CONTINUOUS,
                    description="week of year, 1-53"),
        FeatureSpec("month", FeatureKind.ORDINAL, MONTH_CATEGORIES,
                    "month of year"),
        FeatureSpec("year", FeatureKind.ORDINAL, ("0", "1", "2"),
                    "year since observation start"),
    ))
