"""CSV import/export for tickets, inventory and analysis tables.

Lets downstream users pull the simulated "field data" into their own
tooling (pandas, R, spreadsheets) and, conversely, lets the analysis
layer run on externally produced ticket CSVs with the same layout.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from ..datacenter.topology import Fleet
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FAULT_CATEGORY, FAULT_TYPES, TicketLog
from .table import Table

TICKET_COLUMNS = (
    "ticket_id", "day_index", "start_hour_abs", "dc", "rack_id",
    "server_offset", "fault_type", "category", "false_positive",
    "repair_hours", "batch_id",
)

INVENTORY_COLUMNS = (
    "rack_id", "dc", "region", "row", "sku", "vendor", "workload",
    "rated_power_kw", "commission_day", "n_servers",
    "hdds_per_server", "dimms_per_server",
)


def export_tickets_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write the run's RMA ticket log as CSV; returns the row count."""
    return export_ticket_log_csv(result.tickets, result.fleet, path)


def export_ticket_log_csv(
    log: TicketLog, fleet: Fleet, path: str | pathlib.Path,
) -> int:
    """Write any :class:`TicketLog` as CSV (same layout as
    :func:`export_tickets_csv`); returns the row count."""
    arrays = fleet.arrays()
    path = pathlib.Path(path)

    day = log.day_index
    start = log.start_hour_abs
    rack = log.rack_index
    offset = log.server_offset
    fault = log.fault_code
    fp = log.false_positive
    repair = log.repair_hours
    batch = log.batch_id

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TICKET_COLUMNS)
        for i in range(len(log)):
            fault_type = FAULT_TYPES[int(fault[i])]
            writer.writerow([
                i,
                int(day[i]),
                f"{float(start[i]):.3f}",
                arrays.dc_names[int(arrays.dc_code[rack[i]])],
                arrays.rack_ids[rack[i]],
                int(offset[i]),
                fault_type.value,
                FAULT_CATEGORY[fault_type].value,
                int(fp[i]),
                f"{float(repair[i]):.3f}",
                int(batch[i]),
            ])
    return len(log)


def export_inventory_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write the rack inventory (deployment-time features) as CSV."""
    return export_fleet_inventory_csv(result.fleet, path)


def export_fleet_inventory_csv(
    fleet: Fleet,
    path: str | pathlib.Path,
    decommission_day: np.ndarray | None = None,
) -> int:
    """Write a fleet's rack inventory as CSV; returns the row count.

    Args:
        fleet: the inventory to write, one row per rack.
        decommission_day: optional per-rack exit days; when given, a
            ``decommission_day`` column is appended (field datasets with
            right-censored racks carry it; plain exports do not).
    """
    path = pathlib.Path(path)
    racks = fleet.racks
    if decommission_day is not None and len(decommission_day) != len(racks):
        raise DataError(
            f"decommission_day has {len(decommission_day)} entries "
            f"for {len(racks)} racks"
        )
    header = list(INVENTORY_COLUMNS)
    if decommission_day is not None:
        header.append("decommission_day")
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for index, rack in enumerate(racks):
            row = [
                rack.rack_id, rack.dc_name, rack.region_name, rack.row,
                rack.sku.name, rack.sku.vendor, rack.workload,
                rack.rated_power_kw, rack.commission_day, rack.n_servers,
                rack.sku.hdds_per_server, rack.sku.dimms_per_server,
            ]
            if decommission_day is not None:
                row.append(int(decommission_day[index]))
            writer.writerow(row)
    return len(racks)


def export_table_csv(table: Table, path: str | pathlib.Path,
                     decode_categories: bool = True) -> int:
    """Write any analysis :class:`Table` as CSV; returns the row count.

    Categorical columns are written as labels by default (codes
    otherwise).
    """
    path = pathlib.Path(path)
    names = table.column_names
    columns = []
    for name in names:
        if decode_categories and table.spec(name).is_categorical:
            columns.append(table.decoded(name))
        else:
            columns.append(table.column(name))
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in range(table.n_rows):
            writer.writerow([
                column[row] if isinstance(column[row], str)
                else _format_cell(column[row])
                for column in columns
            ])
    return table.n_rows


def _format_cell(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{float(value):.6g}"
    return str(value)


def read_csv_table(path: str | pathlib.Path) -> dict[str, list[str]]:
    """Read a CSV into column lists (header-keyed); raw strings.

    A deliberately small reader for round-trip checks and external-data
    ingestion experiments; converting to a typed :class:`Table` is the
    caller's job (schemas are domain knowledge).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        columns: dict[str, list[str]] = {name: [] for name in header}
        for row in reader:
            if len(row) != len(header):
                raise DataError(f"{path}: ragged row {row!r}")
            for name, cell in zip(header, row):
                columns[name].append(cell)
    return columns
