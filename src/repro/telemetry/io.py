"""CSV import/export for tickets, inventory and analysis tables.

Lets downstream users pull the simulated "field data" into their own
tooling (pandas, R, spreadsheets) and, conversely, lets the analysis
layer run on externally produced ticket CSVs with the same layout.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from ..datacenter.topology import Fleet
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FAULT_CATEGORY, FAULT_TYPES, TicketLog
from .schema import INVENTORY_CSV, INVENTORY_CSV_COLUMNS, TICKET_CSV_COLUMNS
from .table import Table

#: CSV headers (the declared schema orders, re-exported under the names
#: this module has always published).
TICKET_COLUMNS = TICKET_CSV_COLUMNS
INVENTORY_COLUMNS = INVENTORY_CSV_COLUMNS


def export_tickets_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write the run's RMA ticket log as CSV; returns the row count."""
    return export_ticket_log_csv(result.tickets, result.fleet, path)


def export_ticket_log_csv(
    log: TicketLog, fleet: Fleet, path: str | pathlib.Path,
) -> int:
    """Write any :class:`TicketLog` as CSV (same layout as
    :func:`export_tickets_csv`); returns the row count."""
    arrays = fleet.arrays()
    path = pathlib.Path(path)

    day = log.day_index
    start = log.start_hour_abs
    rack = log.rack_index
    offset = log.server_offset
    fault = log.fault_code
    fp = log.false_positive
    repair = log.repair_hours
    batch = log.batch_id

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TICKET_COLUMNS)
        for i in range(len(log)):
            fault_type = FAULT_TYPES[int(fault[i])]
            writer.writerow([
                i,
                int(day[i]),
                f"{float(start[i]):.3f}",
                arrays.dc_names[int(arrays.dc_code[rack[i]])],
                arrays.rack_ids[rack[i]],
                int(offset[i]),
                fault_type.value,
                FAULT_CATEGORY[fault_type].value,
                int(fp[i]),
                f"{float(repair[i]):.3f}",
                int(batch[i]),
            ])
    return len(log)


def export_inventory_csv(result: SimulationResult, path: str | pathlib.Path) -> int:
    """Write the rack inventory (deployment-time features) as CSV."""
    return export_fleet_inventory_csv(result.fleet, path)


def export_fleet_inventory_csv(
    fleet: Fleet,
    path: str | pathlib.Path,
    decommission_day: np.ndarray | None = None,
) -> int:
    """Write a fleet's rack inventory as CSV; returns the row count.

    Args:
        fleet: the inventory to write, one row per rack.
        decommission_day: optional per-rack exit days; when given, a
            ``decommission_day`` column is appended (field datasets with
            right-censored racks carry it; plain exports do not).
    """
    path = pathlib.Path(path)
    racks = fleet.racks
    if decommission_day is not None and len(decommission_day) != len(racks):
        raise DataError(
            f"decommission_day has {len(decommission_day)} entries "
            f"for {len(racks)} racks"
        )
    header = list(INVENTORY_COLUMNS)
    if decommission_day is not None:
        header.append(INVENTORY_CSV.decommission_day)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for index, rack in enumerate(racks):
            row = [
                rack.rack_id, rack.dc_name, rack.region_name, rack.row,
                rack.sku.name, rack.sku.vendor, rack.workload,
                rack.rated_power_kw, rack.commission_day, rack.n_servers,
                rack.sku.hdds_per_server, rack.sku.dimms_per_server,
            ]
            if decommission_day is not None:
                row.append(int(decommission_day[index]))
            writer.writerow(row)
    return len(racks)


def export_table_csv(table: Table, path: str | pathlib.Path,
                     decode_categories: bool = True) -> int:
    """Write any analysis :class:`Table` as CSV; returns the row count.

    Categorical columns are written as labels by default (codes
    otherwise).
    """
    path = pathlib.Path(path)
    names = table.column_names
    columns = []
    for name in names:
        if decode_categories and table.spec(name).is_categorical:
            columns.append(table.decoded(name))
        else:
            columns.append(table.column(name))
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in range(table.n_rows):
            writer.writerow([
                column[row] if isinstance(column[row], str)
                else _format_cell(column[row])
                for column in columns
            ])
    return table.n_rows


def _format_cell(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{float(value):.6g}"
    return str(value)


#: Default data-row chunk size of :func:`iter_csv_rows`.
CSV_CHUNK_ROWS = 8192


def iter_csv_rows(
    path: str | pathlib.Path,
    chunk_rows: int = CSV_CHUNK_ROWS,
):
    """Stream a CSV as ``(header, rows)`` chunks of raw string cells.

    The incremental counterpart of :func:`read_csv_table`: at most
    ``chunk_rows`` data rows are resident at a time, so arbitrarily
    large ticket logs can be consumed without materializing the file
    (``repro.stream`` flattens growing exports through this, and
    :func:`read_csv_table` itself is a thin accumulation over it).

    Yields:
        ``(header, rows)`` pairs, the header repeated with every chunk
        so consumers can stay stateless.  A header-only file yields a
        single ``(header, [])`` pair.  Ragged rows raise
        :class:`~repro.errors.DataError` naming the file and the
        absolute data-row number (1-based, counted across chunks — the
        chunking must never blur where in the file the damage is).
    """
    path = pathlib.Path(path)
    if chunk_rows < 1:
        raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows: list[list[str]] = []
        yielded = False
        for row_number, row in enumerate(reader, start=1):
            if len(row) != len(header):
                raise DataError(
                    f"{path}: ragged row {row_number} "
                    f"({len(row)} cells, header has {len(header)}): {row!r}"
                )
            rows.append(row)
            if len(rows) >= chunk_rows:
                yield header, rows
                yielded = True
                rows = []
        if rows or not yielded:
            yield header, rows


def read_csv_table(path: str | pathlib.Path) -> dict[str, list[str]]:
    """Read a CSV into column lists (header-keyed); raw strings.

    A deliberately small reader for round-trip checks and external-data
    ingestion experiments; converting to a typed :class:`Table` is the
    caller's job (schemas are domain knowledge).  Implemented as an
    accumulation over :func:`iter_csv_rows`.
    """
    columns: dict[str, list[str]] | None = None
    for header, rows in iter_csv_rows(path):
        if columns is None:
            columns = {name: [] for name in header}
        for row in rows:
            for name, cell in zip(header, row):
                columns[name].append(cell)
    assert columns is not None  # iter_csv_rows raises on empty files
    return columns
