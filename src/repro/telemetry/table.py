"""A small columnar table on numpy arrays.

The analysis layer needs a dataframe-like structure (mixed categorical /
continuous columns, filtering, group-by) without a pandas dependency.
:class:`Table` provides exactly the operations the paper's analyses use:
column access, row filtering, group-by aggregation and conversion to the
(matrix, schema) pair the CART implementation consumes.

Categorical columns store integer codes; their meaning lives in the
accompanying :class:`~repro.telemetry.schema.Schema`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from ..errors import DataError, SchemaError
from .schema import FeatureKind, FeatureSpec, Schema


class Table:
    """Immutable-ish columnar table with an attached schema.

    Args:
        columns: name → 1-D numpy array; all must share one length.
        schema: feature specs for (at least) the categorical columns.
            Columns without a spec are treated as continuous.
    """

    def __init__(self, columns: dict[str, np.ndarray], schema: Schema | None = None):
        if not columns:
            raise DataError("table needs at least one column")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise DataError(f"column length mismatch: {lengths}")
        self._columns = {name: np.asarray(values) for name, values in columns.items()}
        self.schema = schema or Schema()
        for feature in self.schema:
            if feature.name not in self._columns:
                raise SchemaError(f"schema feature {feature.name!r} has no column")

    # -- basic access ---------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> list[str]:
        """All column names (insertion order)."""
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> np.ndarray:
        """Return one column (the underlying array; treat as read-only)."""
        if name not in self._columns:
            raise DataError(f"unknown column {name!r}; have {self.column_names}")
        return self._columns[name]

    def spec(self, name: str) -> FeatureSpec:
        """Feature spec for ``name``; synthesizes a continuous spec if absent."""
        if name in self.schema:
            return self.schema.get(name)
        self.column(name)
        return FeatureSpec(name, FeatureKind.CONTINUOUS)

    def decoded(self, name: str) -> np.ndarray:
        """Categorical column as label strings (continuous pass through)."""
        spec = self.spec(name)
        values = self.column(name)
        if not spec.is_categorical:
            return values
        assert spec.categories is not None
        labels = np.asarray(spec.categories, dtype=object)
        codes = values.astype(np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(labels)):
            raise DataError(f"{name}: codes outside category range")
        return labels[codes]

    # -- construction of derived tables ---------------------------------

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is True, as a new table."""
        mask = np.asarray(mask)
        if mask.dtype != bool or len(mask) != self.n_rows:
            raise DataError("mask must be a boolean array matching n_rows")
        return Table(
            {name: values[mask] for name, values in self._columns.items()},
            schema=self.schema,
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (gather), as a new table."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(
            {name: values[indices] for name, values in self._columns.items()},
            schema=self.schema,
        )

    def select(self, names: list[str]) -> "Table":
        """Only the given columns, as a new table."""
        for name in names:
            self.column(name)
        schema = Schema(tuple(
            self.schema.get(name) for name in names if name in self.schema
        ))
        return Table({name: self._columns[name] for name in names}, schema=schema)

    def with_column(self, name: str, values: np.ndarray,
                    spec: FeatureSpec | None = None) -> "Table":
        """A new table with ``name`` added (or replaced)."""
        values = np.asarray(values)
        if len(values) != self.n_rows:
            raise DataError(
                f"new column {name!r} has {len(values)} rows, table has {self.n_rows}"
            )
        columns = dict(self._columns)
        columns[name] = values
        schema = self.schema
        if spec is not None:
            if spec.name != name:
                raise SchemaError(f"spec name {spec.name!r} != column name {name!r}")
            features = tuple(f for f in schema if f.name != name) + (spec,)
            schema = Schema(features)
        return Table(columns, schema=schema)

    # -- group-by --------------------------------------------------------

    def group_indices(self, keys: list[str]) -> Iterator[tuple[tuple, np.ndarray]]:
        """Yield (key-tuple, row-indices) for each distinct key combination.

        Key tuples contain decoded labels for categorical keys and raw
        values otherwise; groups are yielded in sorted key order.
        """
        if not keys:
            raise DataError("need at least one group key")
        key_arrays = [self.column(name) for name in keys]
        stacked = np.stack([np.asarray(arr, dtype=float) for arr in key_arrays], axis=1)
        order = np.lexsort(tuple(stacked[:, i] for i in range(stacked.shape[1] - 1, -1, -1)))
        sorted_keys = stacked[order]
        boundaries = np.ones(len(order), dtype=bool)
        if len(order) > 1:
            boundaries[1:] = np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1)
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], len(order))
        for start, end in zip(starts.tolist(), ends.tolist()):
            indices = order[start:end]
            key_values = []
            for key_name, raw in zip(keys, sorted_keys[start]):
                spec = self.spec(key_name)
                if spec.is_categorical:
                    key_values.append(spec.decode(int(raw)))
                else:
                    key_values.append(raw)
            yield tuple(key_values), indices

    def group_reduce(
        self,
        keys: list[str],
        value: str,
        reducers: dict[str, Callable[[np.ndarray], float]],
    ) -> dict[tuple, dict[str, float]]:
        """Aggregate ``value`` per key group through named reducers.

        Example::

            table.group_reduce(["workload"], "failures",
                               {"mean": np.mean, "sd": np.std})
        """
        values = self.column(value).astype(float)
        result: dict[tuple, dict[str, float]] = {}
        for key, indices in self.group_indices(keys):
            group = values[indices]
            result[key] = {name: float(fn(group)) for name, fn in reducers.items()}
        return result

    # -- CART bridge ------------------------------------------------------

    def feature_matrix(self, names: list[str]) -> tuple[np.ndarray, Schema]:
        """(n_rows × n_features float matrix, schema) for the CART fitter.

        Categorical columns keep their integer codes (as floats); the
        schema tells the splitter how to treat each column.
        """
        for name in names:
            self.column(name)
        matrix = np.column_stack([
            self.column(name).astype(float) for name in names
        ]) if names else np.empty((self.n_rows, 0))
        schema = Schema(tuple(self.spec(name) for name in names))
        return matrix, schema

    # -- misc --------------------------------------------------------------

    def head(self, n: int = 5) -> str:
        """A small textual preview (for examples and debugging)."""
        n = min(n, self.n_rows)
        names = self.column_names
        lines = ["\t".join(names)]
        for row in range(n):
            cells = []
            for name in names:
                spec = self.spec(name)
                value = self._columns[name][row]
                if spec.is_categorical:
                    cells.append(str(spec.decode(int(value))))
                else:
                    cells.append(f"{value:.4g}" if isinstance(value, (float, np.floating))
                                 else str(value))
            lines.append("\t".join(cells))
        return "\n".join(lines)

    def concat(self, other: "Table") -> "Table":
        """Row-wise concatenation; both tables must share columns."""
        if set(self.column_names) != set(other.column_names):
            raise DataError(
                f"column mismatch: {self.column_names} vs {other.column_names}"
            )
        return Table(
            {name: np.concatenate([self._columns[name], other.column(name)])
             for name in self.column_names},
            schema=self.schema,
        )
