"""Builds analysis datasets (λ and μ at chosen granularities) from a run.

This is the boundary between "field data" and "analysis": everything
here consumes only what an operator would have — the RMA ticket log,
BMS sensor readings and the rack inventory — and produces the tables
the single-factor and multi-factor analyses consume.

Main products:

* :func:`lambda_matrix` — per-rack per-day ticket counts (the paper's
  failure-generation rate λ at rack/day granularity).
* :func:`mu_matrix` — per-rack per-window concurrent-failure counts
  (the paper's μ, at daily or hourly windows).
* :func:`build_rack_day_table` — one row per commissioned rack-day with
  every Table III feature plus the day's failure count; feeds Figs 2-9
  and the CART fits.
* :func:`rack_static_table` — one row per rack with deployment-time
  features; feeds the provisioning cluster analyses (Q1).
"""

from __future__ import annotations

# repro: noqa-file[schema-fields] — dict keys in this module name Table
# features (table_iii_schema), which deliberately share spellings with
# inventory columns; they are not ticket/inventory artifact keys.

import numpy as np

from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from .schema import FeatureKind, FeatureSpec, Schema, table_iii_schema
from .table import Table
from .windows import (
    event_day_counts,
    n_windows,
    per_group_window_counts,
)


def ticket_mask(
    result: SimulationResult,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    true_positives_only: bool = True,
    dedupe_batches: bool = False,
) -> np.ndarray:
    """Boolean selector over the run's tickets.

    Args:
        result: simulation run.
        faults: restrict to these fault types (None = all types).
        true_positives_only: drop false-positive tickets, as the paper
            does ("we use only the true positives in our analysis").
        dedupe_batches: keep one row per correlated batch event (a batch
            is filed as a single RMA with a repeat count); λ counting
            wants this, μ counting does not.
    """
    log = result.tickets
    mask = np.ones(len(log), dtype=bool)
    if true_positives_only:
        mask &= log.true_positive_mask()
    if faults is not None:
        mask &= log.mask_for_faults(list(faults))
    if dedupe_batches:
        mask &= log.batch_dedupe_mask()
    return mask


def lambda_matrix(
    result: SimulationResult,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    true_positives_only: bool = True,
    dedupe_batches: bool = True,
) -> np.ndarray:
    """Per-rack per-day filed-RMA counts, shape (n_racks, n_days).

    Batch events count once (one filed ticket per event) by default.
    """
    mask = ticket_mask(result, faults, true_positives_only, dedupe_batches)
    log = result.tickets
    return event_day_counts(
        group_index=log.rack_index[mask],
        day_index=log.day_index[mask],
        n_groups=result.fleet.arrays().n_racks,
        total_days=result.n_days,
    )


def merge_per_server_intervals(
    server_gid: np.ndarray,
    start_hours: np.ndarray,
    end_hours: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge overlapping downtime intervals belonging to the same server.

    Two disk failures on one server within the same repair window leave
    *one* server down, not two; server-level μ must not double count.

    Returns (server_gid, start, end) of the merged intervals.
    """
    server_gid = np.asarray(server_gid, dtype=np.int64)
    starts = np.asarray(start_hours, dtype=float)
    ends = np.asarray(end_hours, dtype=float)
    if not (len(server_gid) == len(starts) == len(ends)):
        raise DataError("gid/start/end arrays must be aligned")
    if len(server_gid) == 0:
        return server_gid, starts, ends

    order = np.lexsort((starts, server_gid))
    gid_sorted = server_gid[order]
    start_sorted = starts[order]
    end_sorted = ends[order]

    merged_gid: list[int] = []
    merged_start: list[float] = []
    merged_end: list[float] = []
    current_gid = int(gid_sorted[0])
    current_start = float(start_sorted[0])
    current_end = float(end_sorted[0])
    for gid, start, end in zip(gid_sorted[1:].tolist(),
                               start_sorted[1:].tolist(),
                               end_sorted[1:].tolist()):
        if gid == current_gid and start <= current_end:
            current_end = max(current_end, end)
            continue
        merged_gid.append(current_gid)
        merged_start.append(current_start)
        merged_end.append(current_end)
        current_gid, current_start, current_end = gid, start, end
    merged_gid.append(current_gid)
    merged_start.append(current_start)
    merged_end.append(current_end)
    return (np.array(merged_gid, dtype=np.int64),
            np.array(merged_start), np.array(merged_end))


def mu_matrix(
    result: SimulationResult,
    window_hours: float = 24.0,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    per_server: bool = True,
) -> np.ndarray:
    """Concurrent-unavailability counts μ, shape (n_racks, n_windows).

    μ counts, per rack and window, the devices whose downtime interval
    intersects the window.  Defaults to all hardware faults (§VI-Q1:
    software failures are handled by the application layer, hardware
    failures consume spares).  Only true positives create downtime.

    Args:
        per_server: count distinct *servers* down (overlapping downtime
            on one server merged) — the right unit for server spares.
            Set False to count raw device intervals (component spares:
            each failed disk/DIMM consumes its own spare).
    """
    if faults is None:
        faults = list(HARDWARE_FAULTS)
    mask = ticket_mask(result, faults, true_positives_only=True)
    log = result.tickets
    arrays = result.fleet.arrays()
    total = n_windows(result.n_days, window_hours)

    rack_index = log.rack_index[mask]
    starts = log.start_hour_abs[mask]
    ends = log.end_hour_abs[mask]
    if per_server:
        gid = arrays.server_base[rack_index] + log.server_offset[mask]
        gid, starts, ends = merge_per_server_intervals(gid, starts, ends)
        rack_index = np.searchsorted(arrays.server_base, gid, side="right") - 1
    counts = per_group_window_counts(
        group_index=rack_index,
        start_hours=starts,
        end_hours=ends,
        n_groups=arrays.n_racks,
        window_hours=window_hours,
        total_windows=total,
    )
    if per_server:
        # Sequential failures of one server within a window can still
        # stack after merging; a rack can never have more servers down
        # than it has servers.
        counts = np.minimum(counts, arrays.n_servers[:, np.newaxis])
    return counts


def commissioned_mask_matrix(result: SimulationResult) -> np.ndarray:
    """(n_racks, n_days) boolean: rack in service on that day."""
    arrays = result.fleet.arrays()
    days = np.arange(result.n_days)
    return arrays.commission_day[:, np.newaxis] <= days[np.newaxis, :]


def day_feature_arrays(result: SimulationResult) -> dict[str, np.ndarray]:
    """Per-day calendar feature arrays (day_of_week, month, ...)."""
    calendar = result.calendar
    days = [calendar.day(d) for d in range(result.n_days)]
    return {
        "day_of_week": np.array([d.day_of_week for d in days], dtype=np.int64),
        "week_of_year": np.array([d.week_of_year for d in days], dtype=np.int64),
        "month": np.array([d.month - 1 for d in days], dtype=np.int64),
        "year": np.array([min(d.year, 2) for d in days], dtype=np.int64),
    }


def fleet_schema(result: SimulationResult) -> Schema:
    """Table III schema instantiated with this fleet's category lists."""
    arrays = result.fleet.arrays()
    return table_iii_schema(
        dc_names=list(arrays.dc_names),
        region_names=list(arrays.region_names),
        sku_names=list(arrays.sku_names),
        workload_names=list(arrays.workload_names),
    )


def build_rack_day_table(
    result: SimulationResult,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    extra_fault_columns: dict[str, list[FaultType]] | None = None,
    use_observed_environment: bool = True,
    include_mu: bool = False,
) -> Table:
    """One row per commissioned rack-day, with features and failure counts.

    Columns: every Table III feature (categorical columns as codes) plus

    * ``failures`` — ticket count for the selected fault set,
    * one extra count column per ``extra_fault_columns`` entry
      (e.g. ``{"disk_failures": [FaultType.DISK]}``), and
    * with ``include_mu``: ``mu`` (daily concurrent server
      unavailability from hardware faults) and ``mu_fraction``
      (μ / rack capacity) — the basis of the paper's μmax peak metric.

    Args:
        result: simulation run.
        faults: fault set for the main ``failures`` column (None = all).
        extra_fault_columns: additional named count columns.
        use_observed_environment: read temperature/RH from the BMS
            (noisy, interpolated) rather than simulator ground truth.
        include_mu: add the μ columns described above.
    """
    failures = lambda_matrix(result, faults)
    extra_counts = {}
    for name, fault_list in (extra_fault_columns or {}).items():
        extra_counts[name] = lambda_matrix(result, fault_list)
    mu = mu_matrix(result, window_hours=24.0) if include_mu else None
    return assemble_rack_day_table(
        result, failures, extra_counts=extra_counts,
        use_observed_environment=use_observed_environment, mu=mu,
    )


def assemble_rack_day_table(
    result: SimulationResult,
    failures: np.ndarray,
    extra_counts: dict[str, np.ndarray] | None = None,
    use_observed_environment: bool = True,
    mu: np.ndarray | None = None,
) -> Table:
    """Assemble the rack-day table from precomputed count matrices.

    The feature-tiling half of :func:`build_rack_day_table`, split out
    so count matrices from *any* source — the batch λ/μ functions here
    or the streaming/columnar estimators in
    :mod:`repro.stream.tables` — produce the identical table.

    Args:
        result: simulation run (features, calendar, environment).
        failures: (n_racks, n_days) count matrix for ``failures``.
        extra_counts: additional named (n_racks, n_days) count columns.
        use_observed_environment: read temperature/RH from the BMS.
        mu: optional (n_racks, n_days) daily μ matrix; adds the ``mu``
            and ``mu_fraction`` columns when given.
    """
    arrays = result.fleet.arrays()
    n_racks, total_days = arrays.n_racks, result.n_days
    if failures.shape != (n_racks, total_days):
        raise DataError(
            f"failures matrix must be ({n_racks}, {total_days}), "
            f"got {failures.shape}"
        )
    extra_counts = extra_counts or {}

    if use_observed_environment:
        temp = result.bms.filled_temp_f().T  # (racks, days)
        rh = result.bms.filled_rh().T
    else:
        temp = result.environment.temp_f.T
        rh = result.environment.rh.T

    day_features = day_feature_arrays(result)
    in_service = commissioned_mask_matrix(result)
    flat = in_service.ravel()  # rack-major order

    def tile_rack(values: np.ndarray) -> np.ndarray:
        return np.repeat(values, total_days)[flat]

    def tile_day(values: np.ndarray) -> np.ndarray:
        return np.tile(values, n_racks)[flat]

    day_grid = np.tile(np.arange(total_days), n_racks)[flat]
    commission = np.repeat(arrays.commission_day, total_days)[flat]
    from ..units import DAYS_PER_MONTH

    columns = {
        "rack_index": np.repeat(np.arange(n_racks), total_days)[flat],
        "day_index": day_grid,
        "sku": tile_rack(arrays.sku_code),
        "age_months": (day_grid - commission) / DAYS_PER_MONTH,
        "rated_power_kw": tile_rack(arrays.rated_power_kw),
        "workload": tile_rack(arrays.workload_code),
        "temp_f": temp.ravel()[flat],
        "rh": rh.ravel()[flat],
        "dc": tile_rack(arrays.dc_code),
        "region": tile_rack(arrays.region_code),
        "row": tile_rack(arrays.row - 1),
        "day_of_week": tile_day(day_features["day_of_week"]),
        "week_of_year": tile_day(day_features["week_of_year"]),
        "month": tile_day(day_features["month"]),
        "year": tile_day(day_features["year"]),
        "failures": failures.ravel()[flat].astype(float),
    }
    for name, matrix in extra_counts.items():
        columns[name] = matrix.ravel()[flat].astype(float)
    if mu is not None:
        columns["mu"] = mu.ravel()[flat].astype(float)
        capacity = np.repeat(arrays.n_servers.astype(float), total_days)[flat]
        columns["mu_fraction"] = columns["mu"] / capacity

    return Table(columns, schema=fleet_schema(result))


def rack_static_table(result: SimulationResult) -> Table:
    """One row per rack: deployment-time features for cluster analyses.

    ``age_months`` is the rack's age at the midpoint of the observation
    window (a single representative value for per-rack clustering;
    per-day analyses use the exact daily age).
    """
    arrays = result.fleet.arrays()
    midpoint = result.n_days / 2.0
    from ..units import DAYS_PER_MONTH

    schema = fleet_schema(result).subset(
        ["sku", "workload", "dc", "region", "row"]
    ).with_feature(FeatureSpec("age_months", FeatureKind.CONTINUOUS)).with_feature(
        FeatureSpec("rated_power_kw", FeatureKind.CONTINUOUS)
    )
    columns = {
        "rack_index": np.arange(arrays.n_racks),
        "sku": arrays.sku_code.astype(np.int64),
        "workload": arrays.workload_code.astype(np.int64),
        "dc": arrays.dc_code.astype(np.int64),
        "region": arrays.region_code.astype(np.int64),
        "row": (arrays.row - 1).astype(np.int64),
        "age_months": (midpoint - arrays.commission_day) / DAYS_PER_MONTH,
        "rated_power_kw": arrays.rated_power_kw,
        "n_servers": arrays.n_servers.astype(np.int64),
        "n_hdds": (arrays.n_servers * arrays.hdds_per_server).astype(np.int64),
        "n_dimms": (arrays.n_servers * arrays.dimms_per_server).astype(np.int64),
    }
    return Table(columns, schema=schema)


def mean_rate_by(
    table: Table,
    key: str,
    value: str = "failures",
) -> dict[str, tuple[float, float, int]]:
    """Mean/sd/count of a rate column per category of ``key``.

    The backbone of Figs 2-9: e.g. ``mean_rate_by(rack_days, "workload")``
    gives each workload's mean rack-day failure rate and its spread.
    """
    if table.n_rows == 0:
        raise DataError("empty table")
    result: dict[str, tuple[float, float, int]] = {}
    for group_key, stats in table.group_reduce(
        [key], value, {"mean": np.mean, "sd": np.std, "count": len}
    ).items():
        label = group_key[0] if isinstance(group_key[0], str) else f"{group_key[0]:g}"
        result[label] = (stats["mean"], stats["sd"], int(stats["count"]))
    return result
