"""Telemetry substrate: schemas, columnar tables, windows, λ/μ aggregation."""

from .aggregate import (
    build_rack_day_table,
    commissioned_mask_matrix,
    day_feature_arrays,
    fleet_schema,
    lambda_matrix,
    mean_rate_by,
    mu_matrix,
    rack_static_table,
    ticket_mask,
)
from .io import (
    export_inventory_csv,
    export_table_csv,
    export_tickets_csv,
    read_csv_table,
)
from .reliability import (
    BurstinessSummary,
    burstiness_by_sku,
    fano_factor,
    inter_arrival_hours,
    mtbf_hours,
)
from .schema import (
    DAY_CATEGORIES,
    MONTH_CATEGORIES,
    FeatureKind,
    FeatureSpec,
    Schema,
    table_iii_schema,
)
from .stats import (
    BinSpec,
    Ecdf,
    binned_mean_sd,
    ecdf,
    make_range_bins,
    normalize_to_max,
    weighted_mean,
)
from .table import Table
from .windows import (
    event_day_counts,
    interval_window_counts,
    n_windows,
    per_group_window_counts,
    windows_per_day,
)

__all__ = [
    "DAY_CATEGORIES",
    "MONTH_CATEGORIES",
    "BinSpec",
    "BurstinessSummary",
    "Ecdf",
    "FeatureKind",
    "FeatureSpec",
    "Schema",
    "Table",
    "binned_mean_sd",
    "build_rack_day_table",
    "burstiness_by_sku",
    "commissioned_mask_matrix",
    "day_feature_arrays",
    "ecdf",
    "export_inventory_csv",
    "export_table_csv",
    "export_tickets_csv",
    "event_day_counts",
    "fano_factor",
    "fleet_schema",
    "inter_arrival_hours",
    "interval_window_counts",
    "lambda_matrix",
    "make_range_bins",
    "mean_rate_by",
    "mtbf_hours",
    "mu_matrix",
    "n_windows",
    "normalize_to_max",
    "per_group_window_counts",
    "rack_static_table",
    "read_csv_table",
    "table_iii_schema",
    "ticket_mask",
    "weighted_mean",
    "windows_per_day",
]
