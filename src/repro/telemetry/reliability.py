"""Classic reliability diagnostics: MTBF, inter-arrival times, burstiness.

The field-data literature the paper builds on (Schroeder & Gibson's
MTTF studies, BlueGene/L failure analysis) characterizes failure
streams through inter-failure-time distributions and burstiness; the
paper's own μ metric exists because "correlations become important in
many decisions" (§V).  These helpers quantify that correlation
structure per rack or per group:

* :func:`inter_arrival_hours` — gaps between consecutive failures.
* :func:`mtbf_hours` — mean time between failures over the in-service
  window (exposure-based, not just gap means).
* :func:`fano_factor` — variance/mean of daily counts; 1 = Poisson,
  >1 = bursty (correlated) failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from .aggregate import lambda_matrix, ticket_mask


def inter_arrival_hours(
    result: SimulationResult,
    rack_index: int | None = None,
    faults: list[FaultType] | None = None,
) -> np.ndarray:
    """Gaps (hours) between consecutive hardware failures.

    Args:
        rack_index: restrict to one rack (None = fleet-wide stream).
        faults: fault set (default: hardware).
    """
    faults = faults if faults is not None else list(HARDWARE_FAULTS)
    mask = ticket_mask(result, faults, true_positives_only=True)
    log = result.tickets
    starts = log.start_hour_abs[mask]
    if rack_index is not None:
        racks = log.rack_index[mask]
        if rack_index < 0 or rack_index >= result.fleet.arrays().n_racks:
            raise DataError(f"rack_index {rack_index} out of range")
        starts = starts[racks == rack_index]
    if len(starts) < 2:
        raise DataError("need at least two failures for inter-arrival gaps")
    return np.diff(np.sort(starts))


def mtbf_hours(
    result: SimulationResult,
    faults: list[FaultType] | None = None,
) -> np.ndarray:
    """Per-rack mean time between failures (NaN for failure-free racks).

    Exposure-based: in-service hours divided by failure count, the
    standard fleet MTBF estimator (not the mean of observed gaps, which
    is biased for censored windows).
    """
    faults = faults if faults is not None else list(HARDWARE_FAULTS)
    counts = lambda_matrix(result, faults, dedupe_batches=False).sum(axis=1)
    arrays = result.fleet.arrays()
    in_service_days = np.maximum(
        0, result.n_days - np.maximum(arrays.commission_day, 0)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        mtbf = np.where(counts > 0, in_service_days * 24.0 / counts, np.nan)
    return mtbf


@dataclass(frozen=True)
class BurstinessSummary:
    """Fano-factor summary of a failure stream.

    Attributes:
        fano: variance/mean of daily counts (1 = Poisson).
        mean_daily: mean daily failure count.
        n_days: days measured.
    """

    fano: float
    mean_daily: float
    n_days: int

    @property
    def is_bursty(self) -> bool:
        """Over-dispersed relative to Poisson."""
        return self.fano > 1.2


def fano_factor(
    result: SimulationResult,
    rack_index: int | None = None,
    faults: list[FaultType] | None = None,
) -> BurstinessSummary:
    """Daily-count Fano factor for a rack (or the whole fleet).

    Correlated batch/outage events push the Fano factor above 1; a
    memoryless failure process sits at 1.  This is the quantitative
    version of the paper's "how correlated are failures?" question.
    """
    faults = faults if faults is not None else list(HARDWARE_FAULTS)
    counts = lambda_matrix(result, faults, dedupe_batches=False)
    arrays = result.fleet.arrays()
    if rack_index is not None:
        if rack_index < 0 or rack_index >= arrays.n_racks:
            raise DataError(f"rack_index {rack_index} out of range")
        start = max(int(arrays.commission_day[rack_index]), 0)
        daily = counts[rack_index, start:]
    else:
        daily = counts.sum(axis=0)
    if daily.size == 0:
        raise DataError("no in-service days to measure")
    mean = float(daily.mean())
    if mean <= 0:
        raise DataError("no failures observed; Fano factor undefined")
    return BurstinessSummary(
        fano=float(daily.var() / mean),
        mean_daily=mean,
        n_days=int(daily.size),
    )


def burstiness_by_sku(result: SimulationResult) -> dict[str, float]:
    """Capacity-normalized burstiness per SKU.

    Pools the daily counts of all racks of each SKU and reports their
    Fano factor — the data-side signature of the per-SKU batch-failure
    propensity the generator plants (S3 ≫ S4).
    """
    counts = lambda_matrix(result, list(HARDWARE_FAULTS), dedupe_batches=False)
    arrays = result.fleet.arrays()
    output: dict[str, float] = {}
    for code, name in enumerate(arrays.sku_names):
        members = np.flatnonzero(arrays.sku_code == code)
        if members.size == 0:
            continue
        pooled = []
        for rack in members.tolist():
            start = max(int(arrays.commission_day[rack]), 0)
            pooled.append(counts[rack, start:])
        daily = np.concatenate(pooled)
        mean = float(daily.mean())
        if mean > 0:
            output[name] = float(daily.var() / mean)
    if not output:
        raise DataError("no SKU had any failures")
    return output
