"""Distribution utilities: empirical CDFs, quantiles, binning, normalization.

All of the paper's figures are normalized to their maximum ("results for
these metrics are normalized with respect to their maximum value", §V),
and its provisioning math reads percentiles off empirical CDFs of the
μ metric (Fig 1, Fig 11).  These helpers implement exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a finite sample.

    Attributes:
        values: sorted unique sample values.
        probabilities: P(X <= value) for each entry of ``values``.
        n: underlying sample size.
    """

    values: np.ndarray
    probabilities: np.ndarray
    n: int

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        index = np.searchsorted(self.values, x, side="right") - 1
        if index < 0:
            return 0.0
        return float(self.probabilities[index])

    def quantile(self, q: float) -> float:
        """Smallest sample value v with P(X <= v) >= q.

        ``q = 1.0`` returns the sample maximum — the paper's 100%
        availability SLA provisions for the worst observed window.
        """
        if not 0.0 <= q <= 1.0:
            raise DataError(f"quantile level must be in [0, 1], got {q}")
        if q == 0.0:
            return float(self.values[0])
        index = int(np.searchsorted(self.probabilities, q - 1e-12, side="left"))
        index = min(index, len(self.values) - 1)
        return float(self.values[index])


def ecdf(sample: np.ndarray) -> Ecdf:
    """Build the empirical CDF of ``sample``."""
    sample = np.asarray(sample, dtype=float)
    if sample.size == 0:
        raise DataError("cannot build an ECDF from an empty sample")
    if np.isnan(sample).any():
        raise DataError("sample contains NaNs")
    sorted_values = np.sort(sample)
    values, counts = np.unique(sorted_values, return_counts=True)
    cumulative = np.cumsum(counts) / sample.size
    return Ecdf(values=values, probabilities=cumulative, n=sample.size)


def normalize_to_max(values: np.ndarray) -> np.ndarray:
    """Scale so the maximum becomes 1.0 (paper's plot normalization)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise DataError("cannot normalize an empty array")
    peak = np.nanmax(values)
    if peak <= 0:
        return np.zeros_like(values)
    return values / peak


@dataclass(frozen=True)
class BinSpec:
    """Half-open bins with optional open ends, e.g. Fig 16's <60, 60-65, ...

    Attributes:
        edges: interior edges; bin i covers [edges[i-1], edges[i]), with
            bin 0 = (-inf, edges[0]) and the last bin = [edges[-1], inf).
        labels: human-readable labels, one per bin.
    """

    edges: tuple[float, ...]
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.edges) + 1:
            raise DataError(
                f"need {len(self.edges) + 1} labels for {len(self.edges)} edges"
            )
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise DataError("bin edges must be strictly increasing")

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return len(self.labels)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin index for every value."""
        return np.searchsorted(np.asarray(self.edges), np.asarray(values, dtype=float),
                               side="right")


def make_range_bins(edges: list[float], unit: str = "") -> BinSpec:
    """BinSpec with auto-generated ``<a``, ``a-b``, ``>=b`` labels."""
    if not edges:
        raise DataError("need at least one edge")
    labels = [f"<{edges[0]:g}{unit}"]
    for low, high in zip(edges, edges[1:]):
        labels.append(f"{low:g}-{high:g}{unit}")
    labels.append(f">{edges[-1]:g}{unit}")
    return BinSpec(edges=tuple(edges), labels=tuple(labels))


def binned_mean_sd(
    bin_index: np.ndarray,
    values: np.ndarray,
    n_bins: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(mean, sd, count) of ``values`` per bin.

    Empty bins yield NaN mean/sd and zero count.
    """
    bin_index = np.asarray(bin_index, dtype=np.int64)
    values = np.asarray(values, dtype=float)
    if len(bin_index) != len(values):
        raise DataError("bin_index and values must be aligned")
    means = np.full(n_bins, np.nan)
    sds = np.full(n_bins, np.nan)
    counts = np.zeros(n_bins, dtype=np.int64)
    for b in range(n_bins):
        mask = bin_index == b
        count = int(mask.sum())
        counts[b] = count
        if count:
            group = values[mask]
            means[b] = group.mean()
            sds[b] = group.std()
    return means, sds, counts


def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Weighted mean with validation."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise DataError("values and weights must be aligned")
    total = weights.sum()
    if total <= 0:
        raise DataError("weights must sum to a positive number")
    return float((values * weights).sum() / total)
