"""Time-window machinery for the concurrent-failure metric μ.

The paper's μ "tracks number of devices that are concurrently
unavailable due to failure ... computed at different spatial and
temporal resolutions" (§V).  Concretely, for a window (a day, an hour)
μ counts the devices whose downtime interval intersects the window.

Daily windows treat two non-overlapping same-day failures as
simultaneous; hourly windows do not — which is exactly the "temporal
multiplexing" that lets MF provisioning drop by ~half when moving from
daily to hourly granularity (Fig 10 vs Fig 12).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError

HOURS_PER_DAY = 24.0


def n_windows(n_days: int, window_hours: float) -> int:
    """Number of whole windows covering an ``n_days`` observation."""
    if n_days < 1:
        raise DataError(f"n_days must be >= 1, got {n_days}")
    if window_hours <= 0:
        raise DataError(f"window_hours must be positive, got {window_hours}")
    return int(np.ceil(n_days * HOURS_PER_DAY / window_hours))


def interval_window_counts(
    start_hours: np.ndarray,
    end_hours: np.ndarray,
    window_hours: float,
    total_windows: int,
) -> np.ndarray:
    """Count intervals intersecting each window.

    Args:
        start_hours: interval start, absolute hours from day 0.
        end_hours: interval end (exclusive), absolute hours.
        window_hours: window length in hours (24 = daily, 1 = hourly).
        total_windows: output length.  Intervals partially overlapping
            the range are clipped to it; intervals entirely outside
            ``[0, total_windows)`` are dropped.

    Returns:
        Integer array of length ``total_windows``: the number of given
        intervals overlapping each window.

    Implemented with a difference array: O(n + total_windows), so hourly
    μ over 2.5 years × hundreds of racks stays cheap.
    """
    starts = np.asarray(start_hours, dtype=float)
    ends = np.asarray(end_hours, dtype=float)
    if starts.shape != ends.shape:
        raise DataError(f"shape mismatch: {starts.shape} vs {ends.shape}")
    if total_windows < 1:
        raise DataError(f"total_windows must be >= 1, got {total_windows}")
    if starts.size and np.any(ends < starts):
        raise DataError("interval end before start")

    first = np.floor(starts / window_hours).astype(np.int64)
    last = np.floor(ends / window_hours).astype(np.int64)
    # Intervals entirely outside [0, total_windows) contribute nothing;
    # clipping would wrongly fold them into the edge windows.
    inside = (last >= 0) & (first < total_windows)
    first = np.clip(first[inside], 0, total_windows - 1)
    last = np.clip(last[inside], 0, total_windows - 1)

    diff = np.zeros(total_windows + 1, dtype=np.int64)
    np.add.at(diff, first, 1)
    np.add.at(diff, last + 1, -1)
    return np.cumsum(diff[:-1])


def per_group_window_counts(
    group_index: np.ndarray,
    start_hours: np.ndarray,
    end_hours: np.ndarray,
    n_groups: int,
    window_hours: float,
    total_windows: int,
) -> np.ndarray:
    """Per-group interval-overlap counts: shape (n_groups, total_windows).

    ``group_index`` assigns each interval to a group (e.g. its rack).
    This is the workhorse behind per-rack μ matrices.
    """
    group_index = np.asarray(group_index, dtype=np.int64)
    starts = np.asarray(start_hours, dtype=float)
    ends = np.asarray(end_hours, dtype=float)
    if not (len(group_index) == len(starts) == len(ends)):
        raise DataError("group/start/end arrays must be aligned")
    if n_groups < 1:
        raise DataError(f"n_groups must be >= 1, got {n_groups}")
    if group_index.size and (group_index.min() < 0 or group_index.max() >= n_groups):
        raise DataError("group_index outside [0, n_groups)")
    if starts.size and np.any(ends < starts):
        raise DataError("interval end before start")

    first = np.floor(starts / window_hours).astype(np.int64)
    last = np.floor(ends / window_hours).astype(np.int64)
    # Same out-of-range rule as interval_window_counts: intervals fully
    # outside the observation are dropped, not clipped into the edges.
    inside = (last >= 0) & (first < total_windows)
    group_index = group_index[inside]
    first = np.clip(first[inside], 0, total_windows - 1)
    last = np.clip(last[inside], 0, total_windows - 1)

    # One flattened difference array over groups × (windows + 1).
    stride = total_windows + 1
    diff = np.zeros(n_groups * stride, dtype=np.int64)
    np.add.at(diff, group_index * stride + first, 1)
    np.add.at(diff, group_index * stride + last + 1, -1)
    counts = np.cumsum(diff.reshape(n_groups, stride), axis=1)[:, :-1]
    return counts


def event_day_counts(
    group_index: np.ndarray,
    day_index: np.ndarray,
    n_groups: int,
    total_days: int,
) -> np.ndarray:
    """Per-group per-day event counts: shape (n_groups, total_days).

    The failure-rate metric λ is this matrix averaged over days (or any
    other aggregation the figures need).
    """
    group_index = np.asarray(group_index, dtype=np.int64)
    day_index = np.asarray(day_index, dtype=np.int64)
    if len(group_index) != len(day_index):
        raise DataError("group/day arrays must be aligned")
    if n_groups < 1 or total_days < 1:
        raise DataError("n_groups and total_days must be >= 1")
    if day_index.size and (day_index.min() < 0 or day_index.max() >= total_days):
        raise DataError("day_index outside [0, total_days)")
    if group_index.size and (group_index.min() < 0 or group_index.max() >= n_groups):
        raise DataError("group_index outside [0, n_groups)")
    flat = group_index * total_days + day_index
    counts = np.bincount(flat, minlength=n_groups * total_days)
    return counts.reshape(n_groups, total_days)


def windows_per_day(window_hours: float) -> int:
    """How many windows fit in one day (must divide 24 exactly)."""
    ratio = HOURS_PER_DAY / window_hours
    if abs(ratio - round(ratio)) > 1e-9:
        raise DataError(f"window_hours {window_hours} must divide 24")
    return int(round(ratio))
