"""Marking and enumerating planted-ground-truth surfaces.

The whole reproduction rests on one contract: the analysis layer must
*recover* the planted hazard structure from operator-visible telemetry,
never read it directly.  Generation-side dataclasses tag their planted
fields with :data:`GROUND_TRUTH` metadata, and array containers declare
ground-truth attributes in module-level tuples; this module collects
both into the single forbidden-name set that the ``GT-leak`` rule in
:mod:`repro.staticcheck` (and the architecture-boundary tests) enforce.
"""

from __future__ import annotations

import dataclasses

#: ``field(metadata=GROUND_TRUTH)`` marks a dataclass field as planted
#: hazard ground truth, invisible to the analysis layer.
GROUND_TRUTH: dict[str, bool] = {"ground_truth": True}


def ground_truth_fields(cls) -> frozenset[str]:
    """Names of the dataclass fields marked with :data:`GROUND_TRUTH`."""
    return frozenset(
        f.name for f in dataclasses.fields(cls)
        if f.metadata.get("ground_truth", False)
    )


def ground_truth_attributes() -> frozenset[str]:
    """Every attribute name that carries planted hazard ground truth.

    Generated, not hand-maintained: the union of

    * dataclass fields tagged ``GROUND_TRUTH`` on the SKU / workload /
      region specs, and
    * the declared ground-truth array blocks of ``FleetArrays``
      (:data:`~repro.datacenter.topology.GROUND_TRUTH_ARRAY_FIELDS`)
      and the fault-model context
      (:data:`~repro.failures.faultmodel.GROUND_TRUTH_CONTEXT_FIELDS`).

    Imported lazily so that this module stays dependency-free for the
    analysis side (the callers are lint tooling and boundary tests).
    """
    from .datacenter.sku import SkuSpec
    from .datacenter.topology import GROUND_TRUTH_ARRAY_FIELDS, RegionSpec
    from .datacenter.workload import WorkloadSpec
    from .failures.faultmodel import GROUND_TRUTH_CONTEXT_FIELDS

    names: set[str] = set(GROUND_TRUTH_ARRAY_FIELDS)
    names.update(GROUND_TRUTH_CONTEXT_FIELDS)
    for spec in (SkuSpec, WorkloadSpec, RegionSpec):
        names.update(ground_truth_fields(spec))
    return frozenset(names)
