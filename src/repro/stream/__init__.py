"""Online streaming analysis: event sourcing, incremental estimators,
live decision triggers, checkpoint/resume.

The batch pipeline (:mod:`repro.telemetry`, :mod:`repro.decisions`)
answers the paper's questions over a completed trace; this package
answers them *while the trace is still arriving*, with a verified
contract that both answers are bit-identical.

Since the columnar rewrite the hot path is :mod:`repro.stream.blocks`:
flatteners yield :class:`EventBlock` record batches, every consumer
advances via a vectorized ``update_block``, and the per-:class:`Event`
view is a thin compatibility layer on top (see ``docs/stream.md``).
"""

from .analyzer import StreamAnalyzer
from .blocks import (
    DEFAULT_BLOCK_SIZE,
    EVENT_DTYPE,
    BlockSegment,
    BlockStream,
    EventBlock,
    StringPool,
    blocks_from_directory,
    blocks_from_field_dataset,
    blocks_from_parts,
    blocks_from_result,
)
from .checkpoint import (
    STREAM_CHECKPOINT_SCHEMA,
    checkpoint_meta,
    load_checkpoint,
    save_checkpoint,
)
from .estimators import StreamingGroupCounts, StreamingLambda, StreamingMu
from .events import (
    ALL_KINDS,
    Event,
    EventKind,
    StreamInventory,
    directory_inventory,
    flatten_cached,
    flatten_directory,
    flatten_field_dataset,
    flatten_parts,
    flatten_parts_merged,
    flatten_result,
    follow_directory,
    iter_block_events,
)
from .tables import (
    lambda_matrix_from_blocks,
    mu_matrix_from_blocks,
    rack_day_table_from_blocks,
)
from .triggers import (
    Alert,
    AlertKind,
    RateDriftDetector,
    SlaRiskMonitor,
    calibrated_spare_fraction,
)

__all__ = [
    "ALL_KINDS",
    "Alert",
    "AlertKind",
    "BlockSegment",
    "BlockStream",
    "DEFAULT_BLOCK_SIZE",
    "EVENT_DTYPE",
    "Event",
    "EventBlock",
    "EventKind",
    "RateDriftDetector",
    "STREAM_CHECKPOINT_SCHEMA",
    "SlaRiskMonitor",
    "StreamAnalyzer",
    "StreamInventory",
    "StreamingGroupCounts",
    "StreamingLambda",
    "StreamingMu",
    "StringPool",
    "blocks_from_directory",
    "blocks_from_field_dataset",
    "blocks_from_parts",
    "blocks_from_result",
    "calibrated_spare_fraction",
    "checkpoint_meta",
    "directory_inventory",
    "flatten_cached",
    "flatten_directory",
    "flatten_field_dataset",
    "flatten_parts",
    "flatten_parts_merged",
    "flatten_result",
    "follow_directory",
    "iter_block_events",
    "lambda_matrix_from_blocks",
    "load_checkpoint",
    "mu_matrix_from_blocks",
    "rack_day_table_from_blocks",
    "save_checkpoint",
]
