"""Online streaming analysis: event sourcing, incremental estimators,
live decision triggers, checkpoint/resume.

The batch pipeline (:mod:`repro.telemetry`, :mod:`repro.decisions`)
answers the paper's questions over a completed trace; this package
answers them *while the trace is still arriving*, with a verified
contract that both answers are bit-identical.
"""

from .analyzer import StreamAnalyzer
from .checkpoint import (
    STREAM_CHECKPOINT_SCHEMA,
    checkpoint_meta,
    load_checkpoint,
    save_checkpoint,
)
from .estimators import StreamingGroupCounts, StreamingLambda, StreamingMu
from .events import (
    ALL_KINDS,
    Event,
    EventKind,
    StreamInventory,
    directory_inventory,
    flatten_cached,
    flatten_directory,
    flatten_field_dataset,
    flatten_parts,
    flatten_result,
    follow_directory,
)
from .triggers import (
    Alert,
    AlertKind,
    RateDriftDetector,
    SlaRiskMonitor,
    calibrated_spare_fraction,
)

__all__ = [
    "ALL_KINDS",
    "Alert",
    "AlertKind",
    "Event",
    "EventKind",
    "RateDriftDetector",
    "STREAM_CHECKPOINT_SCHEMA",
    "SlaRiskMonitor",
    "StreamAnalyzer",
    "StreamInventory",
    "StreamingGroupCounts",
    "StreamingLambda",
    "StreamingMu",
    "calibrated_spare_fraction",
    "checkpoint_meta",
    "directory_inventory",
    "flatten_cached",
    "flatten_directory",
    "flatten_field_dataset",
    "flatten_parts",
    "flatten_result",
    "follow_directory",
    "load_checkpoint",
    "save_checkpoint",
]
