"""Columnar event core: chunked structured-array blocks of the stream.

The original flatteners in :mod:`repro.stream.events` materialize one
:class:`~repro.stream.events.Event` object per element — fine for a
quarter-scale year, hopeless at the 10⁸-event scale of real fleet
traces.  This module is the vectorized substrate underneath them:

* :data:`EVENT_DTYPE` — one packed record per event (64 bytes, exact
  ``float64`` times and readings so every consumer stays bit-identical
  to the scalar path);
* :class:`EventBlock` — a contiguous slab of records plus its absolute
  ``start_seq`` stream position (``seq`` is derived, never stored);
* :func:`blocks_from_parts` / :class:`BlockStream` — the columnar
  flatten: per-kind column sources are pre-ordered exactly as the
  legacy generators yield them, then a single stable ``np.lexsort`` on
  ``(time_hours, kind rank)`` reproduces the heap merge's total order
  (ranks are distinct per kind, so equal-key ties only arise within a
  kind, where concatenation position — the source order — breaks them
  just as a stable merge does);
* :class:`BlockSegment` — a flattened stream spilled to a single
  ``.npz`` bundle (via :func:`repro.cache.save_array_bundle`) and read
  back as zero-copy memory maps;
* :class:`StringPool` — interning of rack/SKU/DC labels so segments and
  tables carry small integer codes plus one label table, never
  per-event strings.

The event *model* (kinds, ranks, the rack-geometry inventory) lives
here too, at the bottom of the ``stream`` package's internal layering
(see ``PACKAGE_LAYER_ORDER``): :mod:`repro.stream.events` re-exports it
and builds the per-``Event`` view on top, and the estimators/analyzer
consume blocks directly through their ``update_block`` paths.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..errors import DataError
from ..telemetry.schema import INVENTORY_CSV, TICKET_LOG

if TYPE_CHECKING:
    from ..config import SimulationConfig
    from ..datacenter.topology import Fleet
    from ..failures.engine import SimulationResult
    from ..failures.tickets import TicketLog
    from ..fielddata.dataset import FieldDataset


class EventKind(Enum):
    """The four event kinds of the operator-visible stream."""

    INVENTORY_CHANGE = "inventory-change"
    SENSOR_SAMPLE = "sensor-sample"
    TICKET_OPEN = "ticket-open"
    TICKET_CLOSE = "ticket-close"


#: Tie-break rank at equal timestamps.  Inventory changes land first (a
#: rack exists before it can fail), then sensor samples, then ticket
#: opens, then closes — open-before-close at equal instants keeps the
#: live down-gauge consistent with the batch path's touching-interval
#: merge.  The rank doubles as the stored ``kind`` code in blocks.
KIND_RANK: dict[EventKind, int] = {
    EventKind.INVENTORY_CHANGE: 0,
    EventKind.SENSOR_SAMPLE: 1,
    EventKind.TICKET_OPEN: 2,
    EventKind.TICKET_CLOSE: 3,
}

#: Inverse of :data:`KIND_RANK`: code → kind.
KIND_BY_CODE: tuple[EventKind, ...] = tuple(
    kind for kind, _ in sorted(KIND_RANK.items(), key=lambda item: item[1])
)

ALL_KINDS: frozenset[EventKind] = frozenset(EventKind)

#: Records per block unless the caller chooses otherwise: large enough
#: that per-block Python overhead vanishes against the vectorized ops,
#: small enough that a resident block (~0.5 MB) stays cache- and
#: memory-friendly.
DEFAULT_BLOCK_SIZE = 8192

#: One event as a packed record.  Times and readings are ``float64`` —
#: narrowing them would break the bit-identity contract with the batch
#: path — while indices use the narrowest width that holds real fleets.
EVENT_DTYPE = np.dtype([
    ("time_hours", np.float64),
    ("kind", np.int8),
    (TICKET_LOG.rack_index, np.int32),
    (TICKET_LOG.server_offset, np.int32),
    (TICKET_LOG.day_index, np.int32),
    (TICKET_LOG.fault_code, np.int16),
    (TICKET_LOG.false_positive, np.bool_),
    (TICKET_LOG.repair_hours, np.float64),
    (TICKET_LOG.batch_id, np.int64),
    ("ticket_ordinal", np.int64),
    ("value", np.float64),
    ("value2", np.float64),
])

#: Current on-disk layout version of :class:`BlockSegment` bundles.
SEGMENT_SCHEMA = 1


def _normalize_kinds(
    kinds: Iterable[EventKind] | None,
) -> frozenset[EventKind]:
    if kinds is None:
        return ALL_KINDS
    normalized = frozenset(kinds)
    if not normalized:
        raise DataError("kinds must not be empty")
    unknown = normalized - ALL_KINDS
    if unknown:
        raise DataError(f"unknown event kinds: {sorted(k.value for k in unknown)!r}")
    return normalized


class StringPool:
    """Interning pool: labels in, dense integer codes out.

    Blocks and segments never carry strings — rack/SKU/DC identities
    travel as codes against one shared label table.  ``intern`` is
    idempotent; ``encode`` vectorizes it over label sequences.
    """

    def __init__(self, labels: Iterable[str] = ()):
        self._labels: list[str] = []
        self._index: dict[str, int] = {}
        for label in labels:
            self.intern(label)

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> tuple[str, ...]:
        """All interned labels, in code order."""
        return tuple(self._labels)

    def intern(self, label: str) -> int:
        """The label's code, assigning the next free one if new."""
        code = self._index.get(label)
        if code is None:
            code = len(self._labels)
            self._index[label] = code
            self._labels.append(label)
        return code

    def code_of(self, label: str) -> int:
        """The label's code; raises :class:`DataError` when unknown."""
        try:
            return self._index[label]
        except KeyError:
            raise DataError(f"unknown label {label!r}") from None

    def encode(self, labels: Iterable[str]) -> np.ndarray:
        """Codes for a label sequence (interning new ones)."""
        return np.array([self.intern(label) for label in labels], dtype=np.int64)

    def decode(self, codes: np.ndarray) -> tuple[str, ...]:
        """Labels for a code array."""
        table = self._labels
        try:
            return tuple(table[int(code)] for code in np.asarray(codes).ravel())
        except IndexError:
            raise DataError("code outside the pool") from None


@dataclass(frozen=True)
class StreamInventory:
    """The static substrate a stream consumer needs: rack geometry only.

    A deliberately small projection of the fleet — capacities, service
    dates and grouping labels, nothing the simulator knows that an
    operator would not.  Built from a run, a field dataset, or a bare
    inventory CSV, so the streaming layer never requires the simulator.
    """

    rack_ids: tuple[str, ...]
    n_servers: np.ndarray
    server_base: np.ndarray
    commission_day: np.ndarray
    decommission_day: np.ndarray
    sku_code: np.ndarray
    sku_names: tuple[str, ...]
    dc_code: np.ndarray
    dc_names: tuple[str, ...]
    n_days: int

    @property
    def n_racks(self) -> int:
        """Number of racks."""
        return len(self.rack_ids)

    def fingerprint(self) -> str:
        """Stable digest for checkpoint compatibility checks."""
        import hashlib

        payload = "|".join([
            ",".join(self.rack_ids),
            ",".join(str(int(n)) for n in self.n_servers),
            str(self.n_days),
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def label_pools(self) -> dict[str, StringPool]:
        """Interning pools of the inventory's label columns."""
        return {
            TICKET_LOG.rack_index: StringPool(self.rack_ids),
            INVENTORY_CSV.sku: StringPool(self.sku_names),
            INVENTORY_CSV.dc: StringPool(self.dc_names),
        }

    @staticmethod
    def from_fleet(
        fleet: "Fleet",
        n_days: int,
        decommission_day: np.ndarray | None = None,
    ) -> "StreamInventory":
        """Project a fleet's arrays (decommission defaults to none)."""
        arrays = fleet.arrays()
        if decommission_day is None:
            decommission_day = np.full(arrays.n_racks, n_days, dtype=np.int64)
        return StreamInventory(
            rack_ids=tuple(arrays.rack_ids),
            n_servers=arrays.n_servers.astype(np.int64),
            server_base=arrays.server_base.astype(np.int64),
            commission_day=arrays.commission_day.astype(np.int64),
            decommission_day=np.asarray(decommission_day, dtype=np.int64),
            sku_code=arrays.sku_code.astype(np.int64),
            sku_names=tuple(arrays.sku_names),
            dc_code=arrays.dc_code.astype(np.int64),
            dc_names=tuple(arrays.dc_names),
            n_days=n_days,
        )

    @staticmethod
    def from_result(result: "SimulationResult") -> "StreamInventory":
        """Project a simulation run."""
        return StreamInventory.from_fleet(result.fleet, result.n_days)

    @staticmethod
    def from_field_dataset(dataset: "FieldDataset") -> "StreamInventory":
        """Project a field dataset (keeps its censoring dates)."""
        return StreamInventory.from_fleet(
            dataset.fleet, dataset.n_days,
            decommission_day=dataset.decommission_day,
        )


def _default_records(n: int) -> np.ndarray:
    """A fresh record slab with every field at its Event default."""
    data = np.zeros(n, dtype=EVENT_DTYPE)
    data[TICKET_LOG.rack_index] = -1
    data[TICKET_LOG.server_offset] = -1
    data[TICKET_LOG.day_index] = -1
    data[TICKET_LOG.fault_code] = -1
    data[TICKET_LOG.batch_id] = -1
    data["ticket_ordinal"] = -1
    return data


class EventBlock:
    """One contiguous chunk of the flattened stream.

    Wraps a structured array of :data:`EVENT_DTYPE` records plus the
    absolute stream position of its first record.  ``seq`` numbers are
    derived (``start_seq + arange``), so slicing is zero-copy and a
    memory-mapped segment never stores them.
    """

    __slots__ = ("data", "start_seq", "_open_columns")

    def __init__(self, data: np.ndarray, start_seq: int = 0):
        if data.dtype != EVENT_DTYPE:
            raise DataError(
                f"EventBlock needs EVENT_DTYPE records, got {data.dtype}"
            )
        if start_seq < 0:
            raise DataError(f"start_seq must be >= 0, got {start_seq}")
        self.data = data
        self.start_seq = int(start_seq)
        self._open_columns: dict[str, np.ndarray] | None | bool = False

    def __len__(self) -> int:
        return len(self.data)

    @property
    def end_seq(self) -> int:
        """Stream position one past the last record."""
        return self.start_seq + len(self.data)

    @property
    def seq(self) -> np.ndarray:
        """Absolute stream positions of the records."""
        return np.arange(self.start_seq, self.end_seq, dtype=np.int64)

    # Column views — attribute access keeps consumers free of string
    # field spelling (and the schema-fields lint quiet).

    @property
    def time_hours(self) -> np.ndarray:
        return self.data["time_hours"]

    @property
    def kind_code(self) -> np.ndarray:
        return self.data["kind"]

    @property
    def rack_index(self) -> np.ndarray:
        return self.data[TICKET_LOG.rack_index]

    @property
    def server_offset(self) -> np.ndarray:
        return self.data[TICKET_LOG.server_offset]

    @property
    def day_index(self) -> np.ndarray:
        return self.data[TICKET_LOG.day_index]

    @property
    def fault_code(self) -> np.ndarray:
        return self.data[TICKET_LOG.fault_code]

    @property
    def false_positive(self) -> np.ndarray:
        return self.data[TICKET_LOG.false_positive]

    @property
    def repair_hours(self) -> np.ndarray:
        return self.data[TICKET_LOG.repair_hours]

    @property
    def batch_id(self) -> np.ndarray:
        return self.data[TICKET_LOG.batch_id]

    @property
    def ticket_ordinal(self) -> np.ndarray:
        return self.data["ticket_ordinal"]

    @property
    def value(self) -> np.ndarray:
        return self.data["value"]

    @property
    def value2(self) -> np.ndarray:
        return self.data["value2"]

    def slice(self, start: int, stop: int | None = None) -> "EventBlock":
        """A zero-copy sub-block (``seq`` numbering preserved)."""
        if start < 0:
            raise DataError(f"slice start must be >= 0, got {start}")
        stop = len(self.data) if stop is None else stop
        return EventBlock(self.data[start:stop], self.start_seq + start)

    def open_ticket_columns(self) -> dict[str, np.ndarray] | None:
        """The ticket-open rows as int64/float64 columns (or None).

        Computed once and cached on the block: every ticket consumer
        (λ, μ, the group counters, the drift detector) needs the same
        gather, and re-doing it per consumer is a measurable share of
        analyze throughput.  Keys deliberately differ from the
        telemetry schema's column names (``rack`` vs ``rack_index``):
        these are transient gather buffers, not a serialized layout.
        """
        if self._open_columns is False:
            mask = self.kind_code == KIND_RANK[EventKind.TICKET_OPEN]
            if not mask.any():
                self._open_columns = None
            else:
                self._open_columns = {
                    "rows": np.nonzero(mask)[0],
                    "time": self.time_hours[mask].astype(np.float64),
                    "rack": self.rack_index[mask].astype(np.int64),
                    "offset": self.server_offset[mask].astype(np.int64),
                    "day": self.day_index[mask].astype(np.int64),
                    "fault": self.fault_code[mask].astype(np.int64),
                    "fp": self.false_positive[mask],
                    "repair": self.repair_hours[mask].astype(np.float64),
                    "batch": self.batch_id[mask].astype(np.int64),
                    "ordinal": self.ticket_ordinal[mask].astype(np.int64),
                }
        return self._open_columns


# ---------------------------------------------------------------------------
# Columnar flatten: per-kind pre-ordered column sources + one stable sort.


class _Source:
    """One pre-ordered per-kind column source feeding the merge.

    ``time_at(a, b)`` materializes the source's sorted event times for
    positions ``[a, b)`` on demand — sources never hold their full time
    column, so flatten memory is bounded by the merge window rather
    than the stream length.
    """

    __slots__ = ("code", "n", "time_at", "fill")

    def __init__(self, code: int, n: int, time_at, fill) -> None:
        self.code = code
        self.n = n
        self.time_at = time_at
        self.fill = fill


def _compact_order(order: np.ndarray) -> np.ndarray:
    return order.astype(np.int32) if len(order) < 2**31 else order


def _inventory_source(inventory: StreamInventory) -> _Source:
    n_days = inventory.n_days
    racks = np.arange(inventory.n_racks, dtype=np.int64)
    exit_mask = inventory.decommission_day < n_days
    time = np.concatenate([
        inventory.commission_day.astype(np.float64) * 24.0,
        inventory.decommission_day[exit_mask].astype(np.float64) * 24.0,
    ])
    rack = np.concatenate([racks, racks[exit_mask]])
    delta = np.concatenate([
        np.ones(inventory.n_racks),
        -np.ones(int(exit_mask.sum())),
    ])
    # Same total order as the legacy tuple sort: (time, rack, delta).
    order = np.lexsort((delta, rack, time))
    time, rack, delta = time[order], rack[order], delta[order]

    def fill(out: np.ndarray, rows: np.ndarray, idx: np.ndarray) -> None:
        out["time_hours"][rows] = time[idx]
        out["kind"][rows] = KIND_RANK[EventKind.INVENTORY_CHANGE]
        out[TICKET_LOG.rack_index][rows] = rack[idx]
        out["value"][rows] = delta[idx]

    return _Source(
        KIND_RANK[EventKind.INVENTORY_CHANGE],
        len(time),
        lambda a, b: time[a:b],
        fill,
    )


def _sensor_source(temp_f: np.ndarray, rh: np.ndarray) -> _Source:
    n_days, n_racks = temp_f.shape
    temp_flat = np.ascontiguousarray(temp_f).reshape(-1)
    rh_flat = np.ascontiguousarray(rh).reshape(-1)

    # Sample times are derived, never stored: position // n_racks is
    # the day, and day * 24.0 is exact in float64.
    def time_at(a: int, b: int) -> np.ndarray:
        return (np.arange(a, b, dtype=np.int64) // n_racks) * 24.0

    def fill(out: np.ndarray, rows: np.ndarray, idx: np.ndarray) -> None:
        out["time_hours"][rows] = (idx // n_racks) * 24.0
        out["kind"][rows] = KIND_RANK[EventKind.SENSOR_SAMPLE]
        out[TICKET_LOG.rack_index][rows] = idx % n_racks
        out[TICKET_LOG.day_index][rows] = idx // n_racks
        out["value"][rows] = temp_flat[idx]
        out["value2"][rows] = rh_flat[idx]

    return _Source(
        KIND_RANK[EventKind.SENSOR_SAMPLE], n_days * n_racks, time_at, fill,
    )


def _ticket_source(log: "TicketLog", close: bool) -> _Source:
    kind = EventKind.TICKET_CLOSE if close else EventKind.TICKET_OPEN
    # Zero-copy column views: the typed TicketLog properties copy the
    # whole column per access, which a per-block gather path cannot
    # afford.  float64 is forced for the time math so sort keys match
    # the legacy flatten bit for bit.
    start = np.asarray(
        log.column_view(TICKET_LOG.start_hour_abs), dtype=np.float64,
    )
    repair = np.asarray(
        log.column_view(TICKET_LOG.repair_hours), dtype=np.float64,
    )
    event_time = start + repair if close else start
    # Stable sort by event time: positions are log ordinals, so ties
    # break by ordinal — exactly the legacy generator/heap order.  Only
    # the permutation is retained; sorted times are regathered per
    # merge window from the log's own columns.
    order = _compact_order(np.argsort(event_time, kind="stable"))
    del event_time
    columns = {
        name: log.column_view(name)
        for name in (
            TICKET_LOG.rack_index, TICKET_LOG.server_offset,
            TICKET_LOG.day_index, TICKET_LOG.fault_code,
            TICKET_LOG.false_positive, TICKET_LOG.batch_id,
        )
    }

    def time_at(a: int, b: int) -> np.ndarray:
        ordinal = order[a:b]
        if close:
            return start[ordinal] + repair[ordinal]
        return start[ordinal]

    def fill(out: np.ndarray, rows: np.ndarray, idx: np.ndarray) -> None:
        ordinal = order[idx]
        if close:
            out["time_hours"][rows] = start[ordinal] + repair[ordinal]
        else:
            out["time_hours"][rows] = start[ordinal]
        out["kind"][rows] = KIND_RANK[kind]
        for name, column in columns.items():
            out[name][rows] = column[ordinal]
        out[TICKET_LOG.repair_hours][rows] = repair[ordinal]
        out["ticket_ordinal"][rows] = ordinal

    return _Source(KIND_RANK[kind], len(order), time_at, fill)


def blocks_from_parts(
    inventory: StreamInventory,
    tickets: "TicketLog",
    temp_f: np.ndarray | None = None,
    rh: np.ndarray | None = None,
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[EventBlock]:
    """Flatten inventory + tickets (+ optional sensors) into blocks.

    The columnar engine behind every flattener: each wanted kind
    contributes a pre-ordered column source, one stable
    ``np.lexsort((kind rank, time))`` derives the global order, and
    blocks of ``block_size`` records are gathered lazily — the permuted
    source columns are never materialized whole.  ``skip`` drops the
    first *n* stream positions while preserving global ``seq``
    numbering, the checkpoint/resume primitive.
    """
    if block_size < 1:
        raise DataError(f"block_size must be >= 1, got {block_size}")
    if skip < 0:
        raise DataError(f"skip must be >= 0, got {skip}")
    wanted = _normalize_kinds(kinds)
    sources: list[_Source] = []
    if EventKind.INVENTORY_CHANGE in wanted:
        sources.append(_inventory_source(inventory))
    if EventKind.SENSOR_SAMPLE in wanted and temp_f is not None:
        if rh is None or temp_f.shape != rh.shape:
            raise DataError("sensor matrices must be aligned")
        sources.append(_sensor_source(temp_f, rh))
    if EventKind.TICKET_OPEN in wanted:
        sources.append(_ticket_source(tickets, close=False))
    if EventKind.TICKET_CLOSE in wanted:
        sources.append(_ticket_source(tickets, close=True))
    return _merge_sources(sources, skip=skip, block_size=block_size)


# Per-source events offered to each merge window.  Windows bound the
# flatten working set to O(window) regardless of stream length; the
# floor keeps the per-window stable sort amortized when callers ask
# for tiny blocks.
_MIN_MERGE_WINDOW = 512


def _merge_sources(
    sources: list[_Source], skip: int, block_size: int,
) -> Iterator[EventBlock]:
    """Windowed k-way merge of time-sorted sources into event blocks.

    Each round, every unexhausted source offers its next ``window``
    times; the cut is the smallest of their final offered times, so
    every record with time <= cut (in any source) sits inside some
    offered slice.  Records up to the cut are concatenated in
    kind-rank order and stable-sorted on time alone — equal times fall
    back to rank then per-source canonical order, the legacy heap
    merge's exact tie-break.  A tie run that straddles an offered
    slice is pulled in whole, so equal-time records never split across
    windows.  Peak memory is O(window + block_size), independent of
    the stream length.
    """
    sources = sorted(sources, key=lambda source: source.code)
    total = sum(source.n for source in sources)
    if total == 0 or skip >= total:
        return
    window = max(block_size, _MIN_MERGE_WINDOW)
    cursors = [0] * len(sources)
    position = 0  # absolute seq of the next record to leave the buffer
    pending_src = np.empty(0, dtype=np.int8)
    pending_idx = np.empty(0, dtype=np.int64)
    while True:
        active = [
            index for index, source in enumerate(sources)
            if cursors[index] < source.n
        ]
        if not active:
            break
        offered: dict[int, np.ndarray] = {}
        cut = None
        for index in active:
            a = cursors[index]
            source = sources[index]
            t = source.time_at(a, min(a + window, source.n))
            offered[index] = t
            cut = t[-1] if cut is None else min(cut, t[-1])
        parts_time: list[np.ndarray] = []
        parts_src: list[np.ndarray] = []
        parts_idx: list[np.ndarray] = []

        def take_slice(index: int, a: int, t: np.ndarray) -> int:
            take = int(np.searchsorted(t, cut, side="right"))
            if take:
                parts_time.append(t[:take])
                parts_src.append(np.full(take, index, dtype=np.int8))
                parts_idx.append(np.arange(a, a + take, dtype=np.int64))
                cursors[index] = a + take
            return take

        for index in active:
            source = sources[index]
            t = offered[index]
            take = take_slice(index, cursors[index], t)
            # Extend while the offered slice was consumed whole and
            # rows at exactly `cut` remain beyond it: a tie run must
            # land in one window for the rank tie-break to hold.
            while take == len(t) and cursors[index] < source.n:
                a = cursors[index]
                t = source.time_at(a, min(a + window, source.n))
                take = take_slice(index, a, t)
        del offered
        window_time = np.concatenate(parts_time)
        window_order = np.argsort(window_time, kind="stable")
        window_src = np.concatenate(parts_src)[window_order]
        window_idx = np.concatenate(parts_idx)[window_order]
        del window_time, window_order, parts_time, parts_src, parts_idx
        pending_src = np.concatenate([pending_src, window_src])
        pending_idx = np.concatenate([pending_idx, window_idx])
        del window_src, window_idx
        if position < skip:
            drop = min(skip - position, len(pending_src))
            pending_src = pending_src[drop:]
            pending_idx = pending_idx[drop:]
            position += drop
        offset = 0
        while len(pending_src) - offset >= block_size:
            yield _gather_block(
                sources,
                pending_src[offset:offset + block_size],
                pending_idx[offset:offset + block_size],
                position,
            )
            offset += block_size
            position += block_size
        if offset:
            pending_src = pending_src[offset:].copy()
            pending_idx = pending_idx[offset:].copy()
    if len(pending_src):
        yield _gather_block(sources, pending_src, pending_idx, position)


def _gather_block(
    sources: list[_Source],
    src: np.ndarray,
    idx: np.ndarray,
    start_seq: int,
) -> EventBlock:
    data = _default_records(len(src))
    for index, source in enumerate(sources):
        rows = np.nonzero(src == index)[0]
        if len(rows):
            source.fill(data, rows, idx[rows])
    return EventBlock(data, start_seq=start_seq)


def blocks_from_result(
    result: "SimulationResult",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[EventBlock]:
    """Flatten a simulation run into blocks (BMS sensor readings)."""
    return blocks_from_parts(
        StreamInventory.from_result(result),
        tickets=result.tickets,
        temp_f=result.bms.temp_f,
        rh=result.bms.rh,
        kinds=kinds,
        skip=skip,
        block_size=block_size,
    )


def blocks_from_field_dataset(
    dataset: "FieldDataset",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[EventBlock]:
    """Flatten a (possibly degraded) field dataset, censoring included."""
    return blocks_from_parts(
        StreamInventory.from_field_dataset(dataset),
        tickets=dataset.tickets,
        temp_f=dataset.temp_f,
        rh=dataset.rh,
        kinds=kinds,
        skip=skip,
        block_size=block_size,
    )


def _load_directory(
    in_dir: pathlib.Path, config: "SimulationConfig",
) -> tuple[StreamInventory, "Fleet"]:
    from ..datacenter.builder import build_fleet
    from ..fielddata.ingest import load_inventory_csv
    from ..rng import RngRegistry

    fleet = build_fleet(config.fleet, RngRegistry(config.seed))
    inventory = load_inventory_csv(in_dir / "inventory.csv")
    inventory.validate_against(fleet)
    stream_inventory = StreamInventory.from_fleet(
        fleet, config.n_days, decommission_day=inventory.decommission_day,
    )
    return stream_inventory, fleet


def blocks_from_directory(
    in_dir: str | pathlib.Path,
    config: "SimulationConfig",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[EventBlock]:
    """Flatten an exported directory (``repro simulate``/``corrupt``).

    Same contract as :func:`repro.stream.events.flatten_directory`, block
    form: ``tickets.csv`` and ``inventory.csv`` are required, the
    ``sensors.npz`` bundle optional.
    """
    from ..fielddata.ingest import load_tickets_csv

    in_dir = pathlib.Path(in_dir)
    inventory, fleet = _load_directory(in_dir, config)
    tickets = load_tickets_csv(in_dir / "tickets.csv", fleet)
    temp_f = rh = None
    bundle_path = in_dir / "sensors.npz"
    if bundle_path.exists():
        with np.load(bundle_path) as bundle:
            temp_f = bundle["temp_f"]
            rh = bundle["rh"]
    return blocks_from_parts(
        inventory, tickets, temp_f=temp_f, rh=rh, kinds=kinds, skip=skip,
        block_size=block_size,
    )


class BlockStream:
    """An iterator of :class:`EventBlock` with spill conveniences.

    Thin: construction does no work beyond what the underlying block
    generator does lazily.  ``spill`` drains the stream into one
    memory-mapped segment for repeated passes.
    """

    def __init__(self, blocks: Iterable[EventBlock]):
        self._blocks = iter(blocks)

    def __iter__(self) -> Iterator[EventBlock]:
        return self._blocks

    @classmethod
    def from_parts(cls, *args, **kwargs) -> "BlockStream":
        return cls(blocks_from_parts(*args, **kwargs))

    @classmethod
    def from_result(cls, *args, **kwargs) -> "BlockStream":
        return cls(blocks_from_result(*args, **kwargs))

    @classmethod
    def from_field_dataset(cls, *args, **kwargs) -> "BlockStream":
        return cls(blocks_from_field_dataset(*args, **kwargs))

    @classmethod
    def from_directory(cls, *args, **kwargs) -> "BlockStream":
        return cls(blocks_from_directory(*args, **kwargs))

    def spill(self, path: str | pathlib.Path,
              block_size: int = DEFAULT_BLOCK_SIZE) -> "BlockSegment":
        """Drain into a segment file; returns it re-opened memory-mapped."""
        segment = BlockSegment.from_blocks(self, block_size=block_size)
        segment.save(path)
        return BlockSegment.load(path)


class BlockSegment:
    """A flattened stream region as one contiguous record array.

    The spill format of the columnar core: ``save`` writes a single
    uncompressed ``.npz`` bundle (records + JSON metadata), ``load``
    memory-maps it back so iteration over a multi-gigabyte trace pages
    lazily.  Iterating yields :class:`EventBlock` views of
    ``block_size`` records; nothing is copied.
    """

    def __init__(
        self,
        records: np.ndarray,
        start_seq: int = 0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        pools: dict[str, tuple[str, ...]] | None = None,
    ):
        if records.dtype != EVENT_DTYPE:
            raise DataError(
                f"BlockSegment needs EVENT_DTYPE records, got {records.dtype}"
            )
        if block_size < 1:
            raise DataError(f"block_size must be >= 1, got {block_size}")
        self.records = records
        self.start_seq = int(start_seq)
        self.block_size = int(block_size)
        self.pools = dict(pools or {})

    @property
    def n_events(self) -> int:
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EventBlock]:
        for start in range(0, len(self.records), self.block_size):
            yield EventBlock(
                self.records[start:start + self.block_size],
                start_seq=self.start_seq + start,
            )

    @staticmethod
    def from_blocks(
        blocks: Iterable[EventBlock],
        block_size: int = DEFAULT_BLOCK_SIZE,
        pools: dict[str, StringPool] | None = None,
    ) -> "BlockSegment":
        """Materialize a block iterator (positions must be contiguous)."""
        parts: list[np.ndarray] = []
        start_seq: int | None = None
        expected: int | None = None
        for block in blocks:
            if start_seq is None:
                start_seq = block.start_seq
            elif block.start_seq != expected:
                raise DataError(
                    f"blocks are not contiguous: expected start_seq "
                    f"{expected}, got {block.start_seq}"
                )
            expected = block.end_seq
            parts.append(block.data)
        records = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=EVENT_DTYPE))
        return BlockSegment(
            records,
            start_seq=start_seq or 0,
            block_size=block_size,
            pools={name: pool.labels for name, pool in (pools or {}).items()},
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the segment as one uncompressed ``.npz`` bundle."""
        from ..cache import save_array_bundle

        meta = {
            "schema": SEGMENT_SCHEMA,
            "start_seq": self.start_seq,
            "block_size": self.block_size,
            "n_events": self.n_events,
            "pools": {name: list(labels) for name, labels in self.pools.items()},
        }
        return save_array_bundle(path, {"events": self.records}, meta)

    @staticmethod
    def load(path: str | pathlib.Path, mmap: bool = True) -> "BlockSegment":
        """Read a saved segment back (memory-mapped by default)."""
        from ..cache import load_array_bundle

        arrays, meta = load_array_bundle(path, mmap=mmap)
        if meta.get("schema") != SEGMENT_SCHEMA or "events" not in arrays:
            raise DataError(f"{path} is not a block segment")
        records = np.asarray(arrays["events"])
        if records.dtype != EVENT_DTYPE:
            # A segment written by a different layout version: refuse
            # rather than misread fields.
            raise DataError(f"{path}: unknown segment record layout")
        if len(records) != int(meta.get("n_events", -1)):
            raise DataError(f"{path}: truncated segment")
        return BlockSegment(
            records,
            start_seq=int(meta.get("start_seq", 0)),
            block_size=int(meta.get("block_size", DEFAULT_BLOCK_SIZE)),
            pools={name: tuple(labels)
                   for name, labels in meta.get("pools", {}).items()},
        )


# ---------------------------------------------------------------------------
# Segmented scans: exact per-group prefix reductions for the vectorized
# consumers (μ interval merge, the SLA down-gauge).


def group_start_flags(sorted_keys: np.ndarray) -> np.ndarray:
    """True where a new group begins in a group-sorted key array."""
    flags = np.empty(len(sorted_keys), dtype=bool)
    if len(flags):
        flags[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=flags[1:])
    return flags


def segmented_scan(
    values: np.ndarray,
    starts: np.ndarray,
    op,
) -> np.ndarray:
    """Inclusive per-group prefix reduction (groups are contiguous).

    Hillis–Steele over log₂(n) doubling passes: element *i* folds in
    element *i − shift* whenever both sit in the same group.  Exact for
    any associative ``op`` (``np.maximum``, ``np.minimum``, integer
    ``np.add``) — no floating-point re-bracketing tricks, which is what
    keeps the vectorized μ merge bit-identical to the scalar greedy one.
    """
    n = len(values)
    out = values.copy()
    if n == 0:
        return out
    position = np.arange(n)
    first = np.maximum.accumulate(np.where(starts, position, 0))
    offset = position - first
    shift = 1
    while shift < n:
        eligible = offset >= shift
        shifted = np.empty_like(out)
        shifted[shift:] = out[:-shift]
        shifted[:shift] = out[:shift]  # never read: offset < shift there
        np.copyto(out, op(out, shifted), where=eligible)
        shift <<= 1
    return out
