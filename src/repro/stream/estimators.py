"""Incremental estimators: batch-identical λ and μ, one event at a time.

Each estimator consumes :class:`~repro.stream.events.Event` objects in
stream order and maintains O(1)-amortized-per-event state from which the
batch matrices can be read back **bit-identically**:

* :class:`StreamingLambda` reproduces
  :func:`repro.telemetry.aggregate.lambda_matrix` — including the batch
  dedupe rule, which the batch path defines in *log order*: the counted
  row of a correlated batch is the one with the smallest log ordinal,
  regardless of arrival order, so the estimator keeps a per-batch
  winner and re-points the count when an earlier-ordinal row arrives.
* :class:`StreamingMu` reproduces
  :func:`repro.telemetry.aggregate.mu_matrix` — per-server downtime
  intervals merged greedily (the stream is start-ordered, so greedy
  merging equals the batch sort-and-merge), accumulated into the same
  difference array the batch path uses, capped at rack capacity.

Because the state is small and explicit, every estimator serializes to
flat arrays (see :mod:`repro.stream.checkpoint`) and resumes exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DataError
from ..failures.tickets import FAULT_CODE, FAULT_TYPES, HARDWARE_FAULTS, FaultType
from ..telemetry.windows import n_windows
from .blocks import KIND_RANK, EventBlock, group_start_flags, segmented_scan
from .events import Event, EventKind

_NO_WINNER = -1

_OPEN_CODE = KIND_RANK[EventKind.TICKET_OPEN]


def _open_ticket_columns(block: EventBlock) -> dict[str, np.ndarray] | None:
    """The block's ticket-open rows as columns (cached on the block)."""
    return block.open_ticket_columns()


def _fault_codes(
    faults: list[FaultType] | tuple[FaultType, ...] | None,
) -> frozenset[int] | None:
    if faults is None:
        return None
    return frozenset(FAULT_CODE[fault] for fault in faults)


def codes_to_faults(codes: list[int] | None) -> tuple[FaultType, ...] | None:
    """Inverse of the code-set serialization used by checkpoints."""
    if codes is None:
        return None
    return tuple(FAULT_TYPES[code] for code in codes)


class StreamingLambda:
    """Rolling per-rack per-day filed-RMA counts (the paper's λ).

    Bit-identical to :func:`~repro.telemetry.aggregate.lambda_matrix`
    with the same ``faults``/``true_positives_only``/``dedupe_batches``
    arguments, on any event order of the same ticket log.
    """

    def __init__(
        self,
        n_racks: int,
        n_days: int,
        faults: list[FaultType] | tuple[FaultType, ...] | None = None,
        true_positives_only: bool = True,
        dedupe_batches: bool = True,
    ):
        if n_racks < 1 or n_days < 1:
            raise DataError("n_racks and n_days must be >= 1")
        self.n_racks = n_racks
        self.n_days = n_days
        self.true_positives_only = true_positives_only
        self.dedupe_batches = dedupe_batches
        self._codes = _fault_codes(faults)
        self._counts = np.zeros((n_racks, n_days), dtype=np.int64)
        # batch_id -> [log ordinal, rack, day, passes-filters flag] of the
        # current winner (the smallest-ordinal row seen so far).
        self._winner: dict[int, list[int]] = {}
        self.events_counted = 0

    def _passes(self, event: Event) -> bool:
        if self.true_positives_only and event.false_positive:
            return False
        if self._codes is not None and event.fault_code not in self._codes:
            return False
        return True

    def _count(self, rack: int, day: int, delta: int) -> None:
        if not 0 <= day < self.n_days:
            raise DataError(f"day_index outside [0, {self.n_days})")
        if not 0 <= rack < self.n_racks:
            raise DataError(f"group_index outside [0, {self.n_racks})")
        self._counts[rack, day] += delta
        self.events_counted += delta

    def update(self, event: Event) -> None:
        """Fold one event into the counts (non-ticket kinds ignored)."""
        if event.kind is not EventKind.TICKET_OPEN:
            return
        if self.dedupe_batches and event.batch_id >= 0:
            passes = int(self._passes(event))
            row = [event.ticket_ordinal, event.rack_index, event.day_index, passes]
            current = self._winner.get(event.batch_id)
            if current is not None and current[0] <= event.ticket_ordinal:
                return
            if current is not None and current[3]:
                self._count(current[1], current[2], -1)
            self._winner[event.batch_id] = row
            if passes:
                self._count(event.rack_index, event.day_index, +1)
            return
        if self._passes(event):
            self._count(event.rack_index, event.day_index, +1)

    def _passes_mask(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        passes = np.ones(len(columns["rack"]), dtype=bool)
        if self.true_positives_only:
            passes &= ~columns["fp"]
        if self._codes is not None:
            codes = np.fromiter(sorted(self._codes), dtype=np.int64)
            passes &= np.isin(columns["fault"], codes)
        return passes

    def _validate_counted(self, rack: np.ndarray, day: np.ndarray) -> None:
        bad_day = (day < 0) | (day >= self.n_days)
        bad_rack = (rack < 0) | (rack >= self.n_racks)
        bad = np.nonzero(bad_day | bad_rack)[0]
        if len(bad):
            if bad_day[bad[0]]:
                raise DataError(f"day_index outside [0, {self.n_days})")
            raise DataError(f"group_index outside [0, {self.n_racks})")

    def update_block(self, block: EventBlock) -> None:
        """Fold a whole block into the counts, vectorized.

        Bit-identical final state to calling :meth:`update` on each of
        the block's events in order (non-open kinds are skipped by
        construction).  On out-of-range data the same
        :class:`~repro.errors.DataError` is raised, though intermediate
        state and the choice among multiple bad rows may differ from
        the scalar path — errors are terminal either way.
        """
        columns = _open_ticket_columns(block)
        if columns is None:
            return
        rack, day = columns["rack"], columns["day"]
        passes = self._passes_mask(columns)
        batched = self.dedupe_batches & (columns["batch"] >= 0)
        simple = passes & ~batched
        if simple.any():
            self._validate_counted(rack[simple], day[simple])
            np.add.at(self._counts, (rack[simple], day[simple]), 1)
            self.events_counted += int(simple.sum())
        rows = np.nonzero(batched)[0]
        if not len(rows):
            return
        # Batch dedupe is a running argmin over log ordinals: the loop
        # below is the scalar rule verbatim, but over plain ints (no
        # Event objects) and with count deltas deferred to two add.at
        # calls.  Bounded by the block's batch rows, not the stream.
        winner = self._winner
        inc: list[tuple[int, int]] = []
        dec: list[tuple[int, int]] = []
        for b, o, r, d, p in zip(
            columns["batch"][rows].tolist(),
            columns["ordinal"][rows].tolist(),
            rack[rows].tolist(),
            day[rows].tolist(),
            passes[rows].tolist(),
        ):
            current = winner.get(b)
            if current is not None and current[0] <= o:
                continue
            if current is not None and current[3]:
                dec.append((current[1], current[2]))
            winner[b] = [o, r, d, int(p)]
            if p:
                if not 0 <= d < self.n_days:
                    raise DataError(f"day_index outside [0, {self.n_days})")
                if not 0 <= r < self.n_racks:
                    raise DataError(f"group_index outside [0, {self.n_racks})")
                inc.append((r, d))
        if dec:
            pairs = np.array(dec, dtype=np.int64)
            np.add.at(self._counts, (pairs[:, 0], pairs[:, 1]), -1)
        if inc:
            pairs = np.array(inc, dtype=np.int64)
            np.add.at(self._counts, (pairs[:, 0], pairs[:, 1]), 1)
        self.events_counted += len(inc) - len(dec)

    def matrix(self) -> np.ndarray:
        """The (n_racks, n_days) count matrix accumulated so far."""
        return self._counts.copy()

    # -- checkpoint support -------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the estimator state."""
        winners = np.array(
            [[batch_id, *row] for batch_id, row in sorted(self._winner.items())],
            dtype=np.int64,
        ).reshape(-1, 5)
        return {"counts": self._counts.copy(), "winners": winners}

    def meta(self) -> dict:
        """JSON-serializable configuration + scalars."""
        return {
            "n_racks": self.n_racks,
            "n_days": self.n_days,
            "faults": None if self._codes is None else sorted(self._codes),
            "true_positives_only": self.true_positives_only,
            "dedupe_batches": self.dedupe_batches,
            "events_counted": self.events_counted,
        }

    @staticmethod
    def from_state(arrays: dict[str, np.ndarray], meta: dict) -> "StreamingLambda":
        """Rebuild an estimator from :meth:`state_arrays` + :meth:`meta`."""
        estimator = StreamingLambda(
            n_racks=int(meta["n_racks"]),
            n_days=int(meta["n_days"]),
            faults=codes_to_faults(meta["faults"]),
            true_positives_only=bool(meta["true_positives_only"]),
            dedupe_batches=bool(meta["dedupe_batches"]),
        )
        estimator._counts = np.asarray(arrays["counts"], dtype=np.int64).copy()
        estimator._winner = {
            int(row[0]): [int(v) for v in row[1:]]
            for row in np.asarray(arrays["winners"], dtype=np.int64)
        }
        estimator.events_counted = int(meta["events_counted"])
        return estimator


class StreamingMu:
    """Rolling concurrent-unavailability counts (the paper's μ).

    Bit-identical to :func:`~repro.telemetry.aggregate.mu_matrix` with
    the same ``window_hours``/``faults``/``per_server`` arguments.  Open
    per-server merged intervals are kept until a later, non-overlapping
    interval for the same server closes them (or :meth:`matrix`
    provisionally flushes into a copy), so the matrix can be read at
    any stream position.
    """

    def __init__(
        self,
        n_servers: np.ndarray,
        server_base: np.ndarray,
        n_days: int,
        window_hours: float = 24.0,
        faults: list[FaultType] | tuple[FaultType, ...] | None = None,
        per_server: bool = True,
    ):
        if faults is None:
            faults = list(HARDWARE_FAULTS)
        self.n_servers = np.asarray(n_servers, dtype=np.int64)
        self.server_base = np.asarray(server_base, dtype=np.int64)
        self.n_days = n_days
        self.window_hours = float(window_hours)
        self.per_server = per_server
        self.total_windows = n_windows(n_days, window_hours)
        self._codes = _fault_codes(faults)
        self.n_racks = len(self.n_servers)
        self._diff = np.zeros(
            (self.n_racks, self.total_windows + 1), dtype=np.int64
        )
        # Still-open merged interval per server, dense by gid (NaN =
        # none open): two float64 columns instead of a dict of lists,
        # which at fleet scale was the analyzer's largest single
        # allocation.  Corrupted gids past the fleet (tolerated, like
        # the batch path) go to the overflow dict.
        self._gid_span = (
            int(self.server_base[-1] + self.n_servers[-1])
            if self.n_racks else 0
        )
        self._open_start = np.full(self._gid_span, np.nan)
        self._open_end = np.full(self._gid_span, np.nan)
        self._overflow: dict[int, list[float]] = {}

    def _rack_of_gid(self, gid: int) -> int:
        # Same derivation as the batch path: tolerant of corrupted
        # server offsets that spill past rack boundaries.
        rack = int(np.searchsorted(self.server_base, gid, side="right")) - 1
        if not 0 <= rack < self.n_racks:
            raise DataError(f"group_index outside [0, {self.n_racks})")
        return rack

    def _add_interval(
        self, diff: np.ndarray, rack: int, start: float, end: float,
    ) -> None:
        # Mirrors per_group_window_counts: intervals entirely outside
        # [0, total_windows) are dropped, partial overlaps clipped.
        first = int(math.floor(start / self.window_hours))
        last = int(math.floor(end / self.window_hours))
        if last < 0 or first >= self.total_windows:
            return
        first = max(first, 0)
        last = min(last, self.total_windows - 1)
        diff[rack, first] += 1
        diff[rack, last + 1] -= 1

    def update(self, event: Event) -> None:
        """Fold one event into the μ state (non-open kinds ignored)."""
        if event.kind is not EventKind.TICKET_OPEN:
            return
        if event.false_positive:
            return
        if self._codes is not None and event.fault_code not in self._codes:
            return
        if event.repair_hours < 0:
            raise DataError("interval end before start")
        start = event.time_hours
        end = start + event.repair_hours
        if not self.per_server:
            if not 0 <= event.rack_index < self.n_racks:
                raise DataError(f"group_index outside [0, {self.n_racks})")
            self._add_interval(self._diff, event.rack_index, start, end)
            return
        if not 0 <= event.rack_index < self.n_racks:
            raise DataError(f"group_index outside [0, {self.n_racks})")
        gid = int(self.server_base[event.rack_index]) + event.server_offset
        if 0 <= gid < self._gid_span:
            open_end = self._open_end[gid]
            if not math.isnan(open_end) and start <= open_end:
                # The stream is start-ordered per server, so greedy
                # extension reproduces the batch sort-and-merge exactly.
                if end > open_end:
                    self._open_end[gid] = end
                return
            if not math.isnan(open_end):
                self._add_interval(
                    self._diff, self._rack_of_gid(gid),
                    float(self._open_start[gid]), float(open_end),
                )
            self._open_start[gid] = start
            self._open_end[gid] = end
            return
        current = self._overflow.get(gid)
        if current is not None and start <= current[1]:
            if end > current[1]:
                current[1] = end
            return
        if current is not None:
            self._add_interval(
                self._diff, self._rack_of_gid(gid), current[0], current[1],
            )
        self._overflow[gid] = [start, end]

    def _add_intervals(
        self, diff: np.ndarray, racks: np.ndarray,
        starts: np.ndarray, ends: np.ndarray,
    ) -> None:
        """Vectorized :meth:`_add_interval` over parallel arrays."""
        first = np.floor(starts / self.window_hours).astype(np.int64)
        last = np.floor(ends / self.window_hours).astype(np.int64)
        keep = (last >= 0) & (first < self.total_windows)
        if not keep.any():
            return
        racks = racks[keep]
        first = np.maximum(first[keep], 0)
        last = np.minimum(last[keep], self.total_windows - 1)
        np.add.at(diff, (racks, first), 1)
        np.add.at(diff, (racks, last + 1), -1)

    def update_block(self, block: EventBlock) -> None:
        """Fold a whole block into the μ state, vectorized.

        Bit-identical final state to per-event :meth:`update` calls:
        within each server, block rows arrive start-ordered, so a row
        opens a new merged interval exactly when its start exceeds the
        running maximum of all earlier ends for that server (carried
        open intervals included) — a segmented prefix-max, not a dict
        walk.  All but the last merged interval per server flush into
        the difference array; the last stays open.
        """
        columns = _open_ticket_columns(block)
        if columns is None:
            return
        keep = ~columns["fp"]
        if self._codes is not None:
            codes = np.fromiter(sorted(self._codes), dtype=np.int64)
            keep &= np.isin(columns["fault"], codes)
        if not keep.any():
            return
        rack = columns["rack"][keep]
        start = columns["time"][keep]
        repair = columns["repair"][keep]
        if (repair < 0).any():
            raise DataError("interval end before start")
        if ((rack < 0) | (rack >= self.n_racks)).any():
            raise DataError(f"group_index outside [0, {self.n_racks})")
        end = start + repair
        if not self.per_server:
            self._add_intervals(self._diff, rack, start, end)
            return
        gid = self.server_base[rack] + columns["offset"][keep]
        order = np.argsort(gid, kind="stable")
        gid, start, end = gid[order], start[order], end[order]
        flags = group_start_flags(gid)
        # Splice each server's carried open interval in front of its
        # first block row (starts stay sorted: it opened earlier).
        first_rows = np.nonzero(flags)[0]
        first_gids = gid[first_rows]
        in_dense = (first_gids >= 0) & (first_gids < self._gid_span)
        carry_start = np.full(len(first_rows), np.nan)
        carry_end = np.full(len(first_rows), np.nan)
        carry_start[in_dense] = self._open_start[first_gids[in_dense]]
        carry_end[in_dense] = self._open_end[first_gids[in_dense]]
        if self._overflow:
            for i in np.nonzero(~in_dense)[0].tolist():
                bounds = self._overflow.get(int(first_gids[i]))
                if bounds is not None:
                    carry_start[i], carry_end[i] = bounds
        have = ~np.isnan(carry_end)
        if have.any():
            pre_rows = first_rows[have]
            gid = np.insert(gid, pre_rows, gid[pre_rows])
            start = np.insert(start, pre_rows, carry_start[have])
            end = np.insert(end, pre_rows, carry_end[have])
            flags = group_start_flags(gid)
        running_end = segmented_scan(end, flags, np.maximum)
        new_segment = flags.copy()
        if len(start) > 1:
            new_segment[1:] |= start[1:] > running_end[:-1]
        segment_first = np.nonzero(new_segment)[0]
        segment_last = np.append(segment_first[1:] - 1, len(gid) - 1)
        group_last = np.append(flags[1:], True)
        flush = ~group_last[segment_last]
        if flush.any():
            flush_gid = gid[segment_first[flush]]
            flush_rack = (
                np.searchsorted(self.server_base, flush_gid, side="right") - 1
            )
            if ((flush_rack < 0) | (flush_rack >= self.n_racks)).any():
                raise DataError(f"group_index outside [0, {self.n_racks})")
            self._add_intervals(
                self._diff,
                flush_rack,
                start[segment_first[flush]],
                running_end[segment_last[flush]],
            )
        open_first = segment_first[~flush]
        open_last = segment_last[~flush]
        open_gid = gid[open_first]
        open_lo = start[open_first]
        open_hi = running_end[open_last]
        dense = (open_gid >= 0) & (open_gid < self._gid_span)
        self._open_start[open_gid[dense]] = open_lo[dense]
        self._open_end[open_gid[dense]] = open_hi[dense]
        if not dense.all():
            for g, s, e in zip(
                open_gid[~dense].tolist(),
                open_lo[~dense].tolist(),
                open_hi[~dense].tolist(),
            ):
                self._overflow[g] = [s, e]

    def matrix(self) -> np.ndarray:
        """The (n_racks, total_windows) μ matrix as of this position.

        Pure: pending open intervals are flushed into a copy, so the
        stream can keep advancing afterwards.
        """
        diff = self._diff.copy()
        open_gids = np.nonzero(~np.isnan(self._open_end))[0]
        if len(open_gids):
            racks = (
                np.searchsorted(self.server_base, open_gids, side="right") - 1
            )
            if ((racks < 0) | (racks >= self.n_racks)).any():
                raise DataError(f"group_index outside [0, {self.n_racks})")
            self._add_intervals(
                diff, racks,
                self._open_start[open_gids], self._open_end[open_gids],
            )
        for gid in sorted(self._overflow):
            start, end = self._overflow[gid]
            self._add_interval(diff, self._rack_of_gid(gid), start, end)
        counts = np.cumsum(diff[:, :-1], axis=1)
        if self.per_server:
            counts = np.minimum(counts, self.n_servers[:, np.newaxis])
        return counts

    # -- checkpoint support -------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the estimator state."""
        dense_gids = np.nonzero(~np.isnan(self._open_end))[0].astype(np.int64)
        over_gids = np.array(sorted(self._overflow), dtype=np.int64)
        gids = np.concatenate([dense_gids, over_gids])
        bounds = np.concatenate([
            np.column_stack([
                self._open_start[dense_gids], self._open_end[dense_gids],
            ]),
            np.array(
                [self._overflow[int(gid)] for gid in over_gids], dtype=float,
            ).reshape(-1, 2),
        ])
        order = np.argsort(gids, kind="stable")
        return {
            "diff": self._diff.copy(),
            "open_gids": gids[order],
            "open_bounds": bounds[order].reshape(-1, 2),
        }

    def meta(self) -> dict:
        """JSON-serializable configuration."""
        return {
            "n_days": self.n_days,
            "window_hours": self.window_hours,
            "faults": None if self._codes is None else sorted(self._codes),
            "per_server": self.per_server,
        }

    @staticmethod
    def from_state(
        n_servers: np.ndarray,
        server_base: np.ndarray,
        arrays: dict[str, np.ndarray],
        meta: dict,
    ) -> "StreamingMu":
        """Rebuild an estimator from :meth:`state_arrays` + :meth:`meta`."""
        estimator = StreamingMu(
            n_servers=n_servers,
            server_base=server_base,
            n_days=int(meta["n_days"]),
            window_hours=float(meta["window_hours"]),
            faults=codes_to_faults(meta["faults"]),
            per_server=bool(meta["per_server"]),
        )
        estimator._diff = np.asarray(arrays["diff"], dtype=np.int64).copy()
        for gid, (start, end) in zip(
            np.asarray(arrays["open_gids"], dtype=np.int64),
            np.asarray(arrays["open_bounds"], dtype=float).reshape(-1, 2),
        ):
            if 0 <= gid < estimator._gid_span:
                estimator._open_start[gid] = float(start)
                estimator._open_end[gid] = float(end)
            else:
                estimator._overflow[int(gid)] = [float(start), float(end)]
        return estimator


class StreamingGroupCounts:
    """Per-group ticket counters (per-SKU, per-DC) with a trailing window.

    Counts true-positive filed tickets (one per correlated batch, first
    row seen) cumulatively and over a trailing ``trailing_days`` ring
    buffer — the live "which SKU is hurting this month" gauge.
    """

    def __init__(
        self,
        group_code: np.ndarray,
        group_names: tuple[str, ...],
        trailing_days: int = 28,
    ):
        if trailing_days < 1:
            raise DataError(f"trailing_days must be >= 1, got {trailing_days}")
        self.group_code = np.asarray(group_code, dtype=np.int64)
        self.group_names = tuple(group_names)
        self.trailing_days = trailing_days
        n_groups = len(group_names)
        self.totals = np.zeros(n_groups, dtype=np.int64)
        self._ring = np.zeros((n_groups, trailing_days), dtype=np.int64)
        self._current_day = 0
        self._seen_batches: set[int] = set()

    def update(self, event: Event) -> None:
        """Fold one event into the group counters."""
        if event.kind is not EventKind.TICKET_OPEN or event.false_positive:
            return
        if event.batch_id >= 0:
            if event.batch_id in self._seen_batches:
                return
            self._seen_batches.add(event.batch_id)
        if not 0 <= event.rack_index < len(self.group_code):
            return
        day = max(int(event.time_hours // 24.0), 0)
        self._advance(day)
        group = int(self.group_code[event.rack_index])
        self.totals[group] += 1
        self._ring[group, day % self.trailing_days] += 1

    def _advance(self, day: int) -> None:
        if day <= self._current_day:
            return
        steps = min(self.trailing_days, day - self._current_day)
        for offset in range(1, steps + 1):
            self._ring[:, (self._current_day + offset) % self.trailing_days] = 0
        self._current_day = day

    def update_block(self, block: EventBlock) -> None:
        """Fold a whole block into the counters, vectorized.

        Bit-identical final state to per-event :meth:`update` calls.
        Batch dedupe keeps the first in-stream row of each unseen batch
        (and marks the batch seen even when that row's rack is out of
        range, exactly as the scalar path does); arrival days are
        non-decreasing in stream order, so the ring advances once per
        distinct day instead of once per event.
        """
        columns = _open_ticket_columns(block)
        if columns is None:
            return
        keep = ~columns["fp"]
        batch = columns["batch"]
        batched = keep & (batch >= 0)
        if batched.any():
            rows = np.nonzero(batched)[0]
            unique, first = np.unique(batch[rows], return_index=True)
            new = np.fromiter(
                (b not in self._seen_batches for b in unique.tolist()),
                dtype=bool, count=len(unique),
            )
            winners = np.zeros(len(rows), dtype=bool)
            winners[first[new]] = True
            keep[rows] = winners
            self._seen_batches.update(unique[new].tolist())
        rack = columns["rack"]
        keep &= (rack >= 0) & (rack < len(self.group_code))
        if not keep.any():
            return
        day = np.maximum(
            (columns["time"][keep] // 24.0).astype(np.int64), 0,
        )
        group = self.group_code[rack[keep]]
        np.add.at(self.totals, group, 1)
        # One advance straight to the block's last day: the scalar
        # path's interleaved advances erase exactly the counts whose
        # day has since left the trailing window, so zeroing the
        # skipped slots first and then adding only the still-in-window
        # rows lands on the identical ring state.
        final = int(day[-1])  # stream order => non-decreasing days
        self._advance(final)
        recent = day > final - self.trailing_days
        np.add.at(
            self._ring,
            (group[recent], day[recent] % self.trailing_days),
            1,
        )

    def trailing_counts(self) -> np.ndarray:
        """Per-group counts over the trailing window."""
        return self._ring.sum(axis=1)

    # -- checkpoint support -------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the counter state."""
        return {
            "totals": self.totals.copy(),
            "ring": self._ring.copy(),
            "seen": np.array(sorted(self._seen_batches), dtype=np.int64),
        }

    def meta(self) -> dict:
        """JSON-serializable scalars."""
        return {
            "trailing_days": self.trailing_days,
            "current_day": self._current_day,
        }

    def restore(self, arrays: dict[str, np.ndarray], meta: dict) -> None:
        """Load :meth:`state_arrays` + :meth:`meta` back into this counter."""
        self.totals = np.asarray(arrays["totals"], dtype=np.int64).copy()
        self._ring = np.asarray(arrays["ring"], dtype=np.int64).copy()
        self._seen_batches = {int(b) for b in np.asarray(arrays["seen"])}
        self._current_day = int(meta["current_day"])
