"""Online decision triggers: SLA-risk monitoring and λ drift detection.

The batch pipeline answers Q1 ("how many spares?") once, over a
completed trace.  These triggers re-ask it continuously:

* :class:`SlaRiskMonitor` keeps a live per-rack down-server gauge from
  ticket-open/close events and emits a typed :class:`Alert` the moment
  a rack's provisioned spare pool can no longer cover its concurrent
  failures at the availability target — the same
  ``k ≥ μ − (1 − s) · C`` inequality :mod:`repro.decisions.availability`
  provisions by, evaluated on the instantaneous μ instead of the
  historical quantile.
* :class:`RateDriftDetector` tracks the fleet-wide daily filed-RMA
  arrival rate and flags regime changes: a trailing-mean baseline vs a
  recent window, with both a ratio threshold and an absolute event
  margin so quiet fleets don't alarm on shot noise.

Both are deterministic, O(1) per event, and expose flat-array state for
:mod:`repro.stream.checkpoint`.

A monitor calibrated with :func:`calibrated_spare_fraction` on the very
μ history it then streams is *provably* silent: the instantaneous down
count never exceeds the window μ, whose pooled maximum is exactly what
the calibration covers.  That is the "zero spurious alerts at severity
0" contract — alerts only fire when provisioning is genuinely below
what the observed stream demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..decisions.availability import AvailabilitySla, uniform_fraction_for_pool
from ..errors import DataError
from ..failures.tickets import HARDWARE_FAULTS
from .blocks import KIND_RANK, EventBlock, group_start_flags, segmented_scan
from .estimators import _fault_codes
from .events import Event, EventKind, StreamInventory

_OPEN_CODE = KIND_RANK[EventKind.TICKET_OPEN]
_CLOSE_CODE = KIND_RANK[EventKind.TICKET_CLOSE]


class AlertKind(Enum):
    """Typed trigger outcomes."""

    SLA_RISK = "sla-risk"
    RATE_DRIFT = "rate-drift"
    PREDICTED_FAILURE = "predicted-failure"


@dataclass(frozen=True)
class Alert:
    """One trigger firing.

    Attributes:
        kind: which trigger fired.
        time_hours: stream time of the firing event.
        message: human-readable one-liner (CLI prints it verbatim).
        rack_index: affected rack (-1 for fleet-wide alerts).
        value: the observed quantity (down servers / recent daily rate).
        threshold: the level it crossed.
    """

    kind: AlertKind
    time_hours: float
    message: str
    rack_index: int = -1
    value: float = 0.0
    threshold: float = 0.0


def calibrated_spare_fraction(
    mu_counts: np.ndarray,
    n_servers: np.ndarray,
    sla: AvailabilitySla,
) -> float:
    """The SF spare fraction that exactly covers a μ history.

    Pools every rack's μ/capacity samples and applies the same rule as
    :func:`~repro.decisions.availability.uniform_fraction_for_pool`.  A
    :class:`SlaRiskMonitor` provisioned with this fraction is silent on
    the stream the history came from (the zero-spurious-alert contract).
    """
    mu_counts = np.asarray(mu_counts, dtype=float)
    n_servers = np.asarray(n_servers, dtype=float)
    if mu_counts.ndim != 2 or mu_counts.shape[0] != len(n_servers):
        raise DataError("mu_counts must be (n_racks, n_windows)")
    fractions = (mu_counts / n_servers[:, np.newaxis]).ravel()
    return uniform_fraction_for_pool(fractions, sla)


class SlaRiskMonitor:
    """Live Q1 re-evaluation: does the spare pool still cover failures?

    Maintains the instantaneous count of distinct down servers per rack
    (multiple concurrent tickets on one server count once, mirroring the
    batch per-server interval merge) and fires when

        down  >  spares + (1 − sla) · capacity

    i.e. when available capacity net of spares drops below the SLA
    level.  One alert per breach episode: the rack must recover below
    the threshold before it can alert again.

    Args:
        inventory: rack geometry.
        sla: availability target.
        spare_fraction: provisioned spares as a fraction of each rack's
            capacity — a scalar (SF-style uniform) or per-rack array
            (MF-style).
        faults: fault types that count as a down server (default: the
            hardware faults, matching batch μ).
    """

    def __init__(
        self,
        inventory: StreamInventory,
        sla: AvailabilitySla,
        spare_fraction: float | np.ndarray,
        faults=None,
    ):
        if faults is None:
            faults = list(HARDWARE_FAULTS)
        self.inventory = inventory
        self.sla = sla
        fraction = np.broadcast_to(
            np.asarray(spare_fraction, dtype=float), (inventory.n_racks,)
        ).copy()
        if (fraction < 0).any():
            raise DataError("spare_fraction must be >= 0")
        self.spare_fraction = fraction
        self._codes = _fault_codes(faults)
        capacity = inventory.n_servers.astype(float)
        # Breach when down > allowed; allowed = spares + tolerated shortfall.
        self.allowed = fraction * capacity + sla.shortfall * capacity
        self._active: dict[int, int] = {}
        self.down = np.zeros(inventory.n_racks, dtype=np.int64)
        self.breached = np.zeros(inventory.n_racks, dtype=bool)
        self.alerts_emitted = 0

    def set_spare_fraction(self, spare_fraction: float | np.ndarray) -> None:
        """Retarget the provisioned spare fraction mid-stream.

        The closed-loop mutation point: when delivered spare orders
        change a rack's provisioning, the monitor's breach threshold
        must follow.  Gauge state (active tickets, down counts) is
        untouched; breach hysteresis re-evaluates naturally on the next
        event, so a rack that the new provisioning covers simply stops
        alerting.
        """
        fraction = np.broadcast_to(
            np.asarray(spare_fraction, dtype=float),
            (self.inventory.n_racks,),
        ).copy()
        if (fraction < 0).any():
            raise DataError("spare_fraction must be >= 0")
        self.spare_fraction = fraction
        capacity = self.inventory.n_servers.astype(float)
        self.allowed = fraction * capacity + self.sla.shortfall * capacity

    def _tracks(self, event: Event) -> bool:
        if event.false_positive:
            return False
        if self._codes is not None and event.fault_code not in self._codes:
            return False
        return 0 <= event.rack_index < self.inventory.n_racks

    def update(self, event: Event) -> list[Alert]:
        """Fold one event into the gauge; returns any new alerts."""
        if event.kind is EventKind.TICKET_OPEN and self._tracks(event):
            gid = (
                int(self.inventory.server_base[event.rack_index])
                + event.server_offset
            )
            count = self._active.get(gid, 0)
            self._active[gid] = count + 1
            if count == 0:
                self.down[event.rack_index] += 1
            return self._check(event.rack_index, event.time_hours)
        if event.kind is EventKind.TICKET_CLOSE and self._tracks(event):
            gid = (
                int(self.inventory.server_base[event.rack_index])
                + event.server_offset
            )
            count = self._active.get(gid, 0)
            if count <= 1:
                self._active.pop(gid, None)
                if count == 1:
                    self.down[event.rack_index] -= 1
            else:
                self._active[gid] = count - 1
            return self._check(event.rack_index, event.time_hours)
        return []

    #: Breach comparisons tolerate float fuzz in ``fraction * capacity``
    #: (e.g. ``(1 - 0.9) * 10`` lands an epsilon under 1.0): a rack is
    #: only in breach when it is down by materially more than allowed.
    _EPSILON = 1e-9

    def _check(self, rack: int, time_hours: float) -> list[Alert]:
        capacity = int(self.inventory.n_servers[rack])
        down = min(int(self.down[rack]), capacity)
        if down > self.allowed[rack] + self._EPSILON * max(capacity, 1):
            if self.breached[rack]:
                return []
            self.breached[rack] = True
            self.alerts_emitted += 1
            return [Alert(
                kind=AlertKind.SLA_RISK,
                time_hours=time_hours,
                rack_index=rack,
                value=float(down),
                threshold=float(self.allowed[rack]),
                message=(
                    f"rack {self.inventory.rack_ids[rack]}: {down} servers "
                    f"down exceeds spares + shortfall "
                    f"({self.allowed[rack]:.2f}) at SLA "
                    f"{self.sla.percent_label}"
                ),
            )]
        self.breached[rack] = False
        return []

    def update_block(self, block: EventBlock) -> list[Alert]:
        """Fold a whole block into the gauge; returns new alerts in order."""
        return [alert for _, alert in self._update_block_indexed(block)]

    def _update_block_indexed(
        self, block: EventBlock,
    ) -> list[tuple[int, Alert]]:
        """Block update returning ``(block row, alert)`` pairs.

        Bit-identical final state and alert sequence to per-event
        :meth:`update` calls.  The per-server ticket count is clamped
        at zero on closes, so its trajectory is the Skorokhod
        reflection of the ±1 delta walk — a pair of segmented scans
        (sum, then running min) instead of a dict walk; per-rack down
        gauges and breach edges fall out of one more segmented sum in
        stream order.
        """
        kind = block.kind_code
        relevant = (kind == _OPEN_CODE) | (kind == _CLOSE_CODE)
        if not relevant.any():
            return []
        rows = np.nonzero(relevant)[0]
        tracks = ~block.false_positive[rows]
        if self._codes is not None:
            codes = np.fromiter(sorted(self._codes), dtype=np.int64)
            tracks &= np.isin(block.fault_code[rows], codes)
        rack = block.rack_index[rows].astype(np.int64)
        tracks &= (rack >= 0) & (rack < self.inventory.n_racks)
        if not tracks.any():
            return []
        rows = rows[tracks]
        rack = rack[tracks]
        n = len(rows)
        delta = np.where(
            kind[rows] == _OPEN_CODE, 1, -1,
        ).astype(np.int64)
        gid = self.inventory.server_base[rack] \
            + block.server_offset[rows].astype(np.int64)
        # Clamped per-server counts via reflection of the delta walk.
        order = np.argsort(gid, kind="stable")
        g, d = gid[order], delta[order]
        flags = group_start_flags(g)
        first = np.nonzero(flags)[0]
        prior = np.zeros(n, dtype=np.int64)
        active = self._active
        for i in first.tolist():
            prior[i] = active.get(int(g[i]), 0)
        base = d.copy()
        base[first] += prior[first]
        walk = segmented_scan(base, flags, np.add)
        run_min = segmented_scan(walk, flags, np.minimum)
        count = walk - np.minimum(run_min, 0)
        down_now = count > 0
        down_before = np.empty(n, dtype=bool)
        down_before[1:] = down_now[:-1]
        down_before[first] = prior[first] > 0
        transition = down_now.astype(np.int64) - down_before.astype(np.int64)
        # Per-rack running down gauge, back in stream order.
        stream_transition = np.empty(n, dtype=np.int64)
        stream_transition[order] = transition
        rack_order = np.argsort(rack, kind="stable")
        by_rack = rack[rack_order]
        rack_flags = group_start_flags(by_rack)
        rack_first = np.nonzero(rack_flags)[0]
        base = stream_transition[rack_order].copy()
        base[rack_first] += self.down[by_rack[rack_first]]
        down_gauge = segmented_scan(base, rack_flags, np.add)
        capacity = self.inventory.n_servers[by_rack]
        down_capped = np.minimum(down_gauge, capacity)
        breach = down_capped > (
            self.allowed[by_rack] + self._EPSILON * np.maximum(capacity, 1)
        )
        breach_before = np.empty(n, dtype=bool)
        breach_before[1:] = breach[:-1]
        breach_before[rack_first] = self.breached[by_rack[rack_first]]
        rising = breach & ~breach_before
        # Commit final per-rack and per-server state.
        rack_last = np.append(rack_first[1:] - 1, n - 1)
        self.down[by_rack[rack_last]] = down_gauge[rack_last]
        self.breached[by_rack[rack_last]] = breach[rack_last]
        gid_last = np.append(first[1:] - 1, n - 1)
        for g_value, c_value in zip(
            g[gid_last].tolist(), count[gid_last].tolist(),
        ):
            if c_value > 0:
                active[g_value] = c_value
            else:
                active.pop(g_value, None)
        if not rising.any():
            return []
        alerts: list[tuple[int, Alert]] = []
        hits = np.nonzero(rising)[0]
        hits = hits[np.argsort(rack_order[hits])]
        for i in hits.tolist():
            row = int(rows[rack_order[i]])
            rack_value = int(by_rack[i])
            down_value = int(down_capped[i])
            alerts.append((row, Alert(
                kind=AlertKind.SLA_RISK,
                time_hours=float(block.time_hours[row]),
                rack_index=rack_value,
                value=float(down_value),
                threshold=float(self.allowed[rack_value]),
                message=(
                    f"rack {self.inventory.rack_ids[rack_value]}: "
                    f"{down_value} servers down exceeds spares + shortfall "
                    f"({self.allowed[rack_value]:.2f}) at SLA "
                    f"{self.sla.percent_label}"
                ),
            )))
        self.alerts_emitted += len(alerts)
        return alerts

    # -- checkpoint support -------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the gauge state."""
        gids = np.array(sorted(self._active), dtype=np.int64)
        counts = np.array(
            [self._active[int(gid)] for gid in gids], dtype=np.int64,
        )
        return {
            "active_gids": gids,
            "active_counts": counts,
            "down": self.down.copy(),
            "breached": self.breached.copy(),
            "spare_fraction": self.spare_fraction.copy(),
        }

    def meta(self) -> dict:
        """JSON-serializable configuration + scalars."""
        return {
            "sla_level": self.sla.level,
            "faults": None if self._codes is None else sorted(self._codes),
            "alerts_emitted": self.alerts_emitted,
        }

    @staticmethod
    def from_state(
        inventory: StreamInventory,
        arrays: dict[str, np.ndarray],
        meta: dict,
    ) -> "SlaRiskMonitor":
        """Rebuild a monitor from :meth:`state_arrays` + :meth:`meta`."""
        from .estimators import codes_to_faults

        monitor = SlaRiskMonitor(
            inventory=inventory,
            sla=AvailabilitySla(float(meta["sla_level"])),
            spare_fraction=np.asarray(arrays["spare_fraction"], dtype=float),
            faults=codes_to_faults(meta["faults"]),
        )
        monitor._active = {
            int(gid): int(count)
            for gid, count in zip(arrays["active_gids"], arrays["active_counts"])
        }
        monitor.down = np.asarray(arrays["down"], dtype=np.int64).copy()
        monitor.breached = np.asarray(arrays["breached"], dtype=bool).copy()
        monitor.alerts_emitted = int(meta["alerts_emitted"])
        return monitor


class RateDriftDetector:
    """Fleet-wide λ regime-change detection.

    Counts filed tickets (true positives, one per correlated batch) per
    *arrival* day and, as each day completes, compares the mean rate of
    the last ``recent_days`` against the mean of the ``baseline_days``
    immediately before them.  Fires when the recent rate departs by more
    than ``ratio`` in either direction *and* the recent window carries at
    least ``min_excess`` events more (or fewer) than the baseline
    predicts — the absolute guard keeps near-zero baselines from
    alarming on single tickets.  One alert per drift episode.

    Args:
        n_days: trace length (bounds the daily-count history).
        baseline_days: trailing baseline window length.
        recent_days: recent comparison window length.
        ratio: departure factor (2.0 = double / half the baseline rate).
        min_excess: minimum absolute event-count departure over the
            recent window.
    """

    def __init__(
        self,
        n_days: int,
        baseline_days: int = 28,
        recent_days: int = 7,
        ratio: float = 2.0,
        min_excess: float = 5.0,
    ):
        if n_days < 1:
            raise DataError(f"n_days must be >= 1, got {n_days}")
        if baseline_days < 1 or recent_days < 1:
            raise DataError("baseline_days and recent_days must be >= 1")
        if ratio <= 1.0:
            raise DataError(f"ratio must be > 1, got {ratio}")
        self.n_days = n_days
        self.baseline_days = baseline_days
        self.recent_days = recent_days
        self.ratio = ratio
        self.min_excess = min_excess
        self.day_counts = np.zeros(n_days, dtype=np.int64)
        self._current_day = 0
        self._in_drift = False
        self._seen_batches: set[int] = set()
        self.alerts_emitted = 0

    def _counts(self, event: Event) -> bool:
        if event.kind is not EventKind.TICKET_OPEN or event.false_positive:
            return False
        if event.batch_id >= 0:
            if event.batch_id in self._seen_batches:
                return False
            self._seen_batches.add(event.batch_id)
        return True

    def update(self, event: Event) -> list[Alert]:
        """Fold one event in; returns alerts for any days it completes."""
        alerts: list[Alert] = []
        if event.kind is EventKind.TICKET_OPEN:
            day = int(event.time_hours // 24.0)
            if day > self._current_day:
                alerts = self._roll_to(day, event.time_hours)
            if self._counts(event) and 0 <= day < self.n_days:
                self.day_counts[day] += 1
        return alerts

    def update_block(self, block: EventBlock) -> list[Alert]:
        """Fold a whole block in; returns alerts for completed days."""
        return [alert for _, alert in self._update_block_indexed(block)]

    def _update_block_indexed(
        self, block: EventBlock,
    ) -> list[tuple[int, Alert]]:
        """Block update returning ``(block row, alert)`` pairs.

        Bit-identical to per-event :meth:`update` calls.  Arrival days
        are non-decreasing in stream order, so the block's counts can
        all land in ``day_counts`` up front (an evaluation of
        completed day *c* only reads windows ending at *c*, and every
        row with day ≤ *c* precedes the run whose arrival triggers
        that evaluation), and the whole block's completed days are
        then evaluated in one vectorized pass.  Each alert is anchored
        — like the scalar path — to the first open event of the run
        that rolled past its day.
        """
        columns = block.open_ticket_columns()
        if columns is None:
            return []
        open_rows = columns["rows"]
        time = columns["time"]
        day = (time // 24.0).astype(np.int64)
        batch = columns["batch"]
        counted = ~columns["fp"]
        batched = counted & (batch >= 0)
        if batched.any():
            rows = np.nonzero(batched)[0]
            unique, first = np.unique(batch[rows], return_index=True)
            new = np.fromiter(
                (b not in self._seen_batches for b in unique.tolist()),
                dtype=bool, count=len(unique),
            )
            winners = np.zeros(len(rows), dtype=bool)
            winners[first[new]] = True
            counted[rows] = winners
            self._seen_batches.update(unique[new].tolist())
        in_range = counted & (day >= 0) & (day < self.n_days)
        np.add.at(self.day_counts, day[in_range], 1)

        boundaries = np.nonzero(np.diff(day) != 0)[0] + 1
        run_starts = np.concatenate([[0], boundaries])
        run_days = day[run_starts]  # strictly increasing
        final = int(run_days[-1])
        start = self._current_day
        self._current_day = max(self._current_day, final)
        evaluated = self._evaluate_days(start, min(final, self.n_days))
        if evaluated is None:
            return []
        days, recent, baseline, rising = evaluated
        out: list[tuple[int, Alert]] = []
        for index in rising.tolist():
            completed = int(days[index])
            # The run whose arrival rolled past this day anchors the
            # alert's row and timestamp.
            run = int(np.searchsorted(run_days, completed, side="right"))
            anchor = int(run_starts[run])
            out.append((
                int(open_rows[anchor]),
                self._alert(completed, float(recent[index]),
                            float(baseline[index]), float(time[anchor])),
            ))
        self.alerts_emitted += len(out)
        return out

    def finish(self, time_hours: float | None = None) -> list[Alert]:
        """Evaluate the remaining completed days at end of stream."""
        if time_hours is None:
            time_hours = self.n_days * 24.0
        final_day = min(int(time_hours // 24.0), self.n_days)
        return self._roll_to(final_day, time_hours)

    def _roll_to(self, day: int, time_hours: float) -> list[Alert]:
        start = self._current_day
        self._current_day = max(self._current_day, day)
        evaluated = self._evaluate_days(start, min(day, self.n_days))
        if evaluated is None:
            return []
        days, recent, baseline, rising = evaluated
        alerts = [
            self._alert(int(days[index]), float(recent[index]),
                        float(baseline[index]), time_hours)
            for index in rising.tolist()
        ]
        self.alerts_emitted += len(alerts)
        return alerts

    def _evaluate_days(self, start: int, end: int):
        """Evaluate completed days ``[start, end)`` in one pass.

        Returns ``(days, recent, baseline, rising)`` — the evaluable
        days, their window means, and the indices where a drift
        *starts* (honoring the hysteresis state machine carried in
        ``_in_drift``) — or ``None`` when no day is evaluable.  Days
        whose baseline window would reach before the trace leave the
        state machine untouched, exactly like the scalar path did.
        The means come from one cumulative sum; counts are integers,
        so the float64 arithmetic is exact and matches ``.mean()``
        bit for bit.
        """
        first = max(start, self.baseline_days + self.recent_days - 1)
        if first >= end:
            return None
        csum = np.concatenate([[0], np.cumsum(self.day_counts[:end])])
        days = np.arange(first, end)
        recent_start = days - self.recent_days + 1
        baseline_start = recent_start - self.baseline_days
        recent = (csum[days + 1] - csum[recent_start]) / self.recent_days
        baseline = (
            (csum[recent_start] - csum[baseline_start]) / self.baseline_days
        )
        excess = np.abs(recent - baseline) * self.recent_days
        drifted = (excess >= self.min_excess) & (
            (recent > self.ratio * baseline)
            | (recent * self.ratio < baseline)
        )
        previous = np.empty(len(drifted), dtype=bool)
        previous[0] = self._in_drift
        previous[1:] = drifted[:-1]
        self._in_drift = bool(drifted[-1])
        rising = np.nonzero(drifted & ~previous)[0]
        return days, recent, baseline, rising

    def _alert(self, day: int, recent: float, baseline: float,
               time_hours: float) -> Alert:
        direction = "above" if recent > baseline else "below"
        return Alert(
            kind=AlertKind.RATE_DRIFT,
            time_hours=time_hours,
            value=recent,
            threshold=baseline,
            message=(
                f"day {day}: filed-RMA rate {recent:.2f}/day is {direction} "
                f"{self.ratio:g}x the trailing baseline {baseline:.2f}/day"
            ),
        )

    # -- checkpoint support -------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the detector state."""
        return {
            "day_counts": self.day_counts.copy(),
            "seen": np.array(sorted(self._seen_batches), dtype=np.int64),
        }

    def meta(self) -> dict:
        """JSON-serializable configuration + scalars."""
        return {
            "n_days": self.n_days,
            "baseline_days": self.baseline_days,
            "recent_days": self.recent_days,
            "ratio": self.ratio,
            "min_excess": self.min_excess,
            "current_day": self._current_day,
            "in_drift": self._in_drift,
            "alerts_emitted": self.alerts_emitted,
        }

    @staticmethod
    def from_state(
        arrays: dict[str, np.ndarray], meta: dict,
    ) -> "RateDriftDetector":
        """Rebuild a detector from :meth:`state_arrays` + :meth:`meta`."""
        detector = RateDriftDetector(
            n_days=int(meta["n_days"]),
            baseline_days=int(meta["baseline_days"]),
            recent_days=int(meta["recent_days"]),
            ratio=float(meta["ratio"]),
            min_excess=float(meta["min_excess"]),
        )
        detector.day_counts = np.asarray(
            arrays["day_counts"], dtype=np.int64,
        ).copy()
        detector._seen_batches = {int(b) for b in np.asarray(arrays["seen"])}
        detector._current_day = int(meta["current_day"])
        detector._in_drift = bool(meta["in_drift"])
        detector.alerts_emitted = int(meta["alerts_emitted"])
        return detector
