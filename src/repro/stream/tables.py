"""Batch matrices and the rack-day table, computed from event blocks.

The batch functions in :mod:`repro.telemetry.aggregate` read a
:class:`~repro.failures.engine.SimulationResult` whole.  These wrappers
compute the same artifacts — bit-identically — from a columnar block
stream instead, one :class:`~repro.stream.blocks.EventBlock` at a time:
a memory-mapped :class:`~repro.stream.blocks.BlockSegment` of a
multi-year trace never needs to be resident, and a single pass feeds
every requested matrix at once.

They live here (above the estimators in the layer order) rather than in
:mod:`repro.stream.blocks` because they are *consumers* of blocks: the
block core sits below the estimators and cannot import them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..failures.tickets import FaultType
from ..telemetry.aggregate import assemble_rack_day_table
from ..telemetry.table import Table
from .blocks import DEFAULT_BLOCK_SIZE, EventBlock, EventKind, blocks_from_result
from .estimators import StreamingLambda, StreamingMu

if TYPE_CHECKING:
    from ..failures.engine import SimulationResult


def lambda_matrix_from_blocks(
    blocks: Iterable[EventBlock],
    n_racks: int,
    n_days: int,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    true_positives_only: bool = True,
    dedupe_batches: bool = True,
) -> np.ndarray:
    """:func:`repro.telemetry.aggregate.lambda_matrix` from a block stream.

    Bit-identical to the batch function on the same ticket log (the
    streaming estimator's contract); ``blocks`` need only carry
    ticket-open rows — other kinds are skipped.
    """
    estimator = StreamingLambda(
        n_racks, n_days, faults=faults,
        true_positives_only=true_positives_only,
        dedupe_batches=dedupe_batches,
    )
    for block in blocks:
        estimator.update_block(block)
    return estimator.matrix()


def mu_matrix_from_blocks(
    blocks: Iterable[EventBlock],
    n_servers: np.ndarray,
    server_base: np.ndarray,
    n_days: int,
    window_hours: float = 24.0,
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    per_server: bool = True,
) -> np.ndarray:
    """:func:`repro.telemetry.aggregate.mu_matrix` from a block stream.

    Bit-identical to the batch function on the same ticket log.
    """
    estimator = StreamingMu(
        n_servers, server_base, n_days, window_hours=window_hours,
        faults=faults, per_server=per_server,
    )
    for block in blocks:
        estimator.update_block(block)
    return estimator.matrix()


def rack_day_table_from_blocks(
    result: "SimulationResult",
    faults: list[FaultType] | tuple[FaultType, ...] | None = None,
    extra_fault_columns: dict[str, list[FaultType]] | None = None,
    use_observed_environment: bool = True,
    include_mu: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Table:
    """:func:`repro.telemetry.aggregate.build_rack_day_table`, block-fed.

    Flattens the run's tickets into blocks once and feeds every
    requested count matrix — ``failures``, each extra fault column, and
    (optionally) daily μ — from that single pass, then assembles the
    identical table via
    :func:`repro.telemetry.aggregate.assemble_rack_day_table`.
    """
    arrays = result.fleet.arrays()
    main = StreamingLambda(arrays.n_racks, result.n_days, faults=faults)
    extras = {
        name: StreamingLambda(arrays.n_racks, result.n_days, faults=fault_list)
        for name, fault_list in (extra_fault_columns or {}).items()
    }
    mu = None
    if include_mu:
        mu = StreamingMu(
            arrays.n_servers, arrays.server_base, result.n_days,
            window_hours=24.0,
        )
    for block in blocks_from_result(
        result, kinds={EventKind.TICKET_OPEN}, block_size=block_size,
    ):
        main.update_block(block)
        for estimator in extras.values():
            estimator.update_block(block)
        if mu is not None:
            mu.update_block(block)
    return assemble_rack_day_table(
        result,
        main.matrix(),
        extra_counts={name: e.matrix() for name, e in extras.items()},
        use_observed_environment=use_observed_environment,
        mu=None if mu is None else mu.matrix(),
    )
