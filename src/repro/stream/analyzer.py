"""StreamAnalyzer: the one-object consumer wiring estimators + triggers.

Feed it events (from any :mod:`repro.stream.events` flattener) and it
maintains the full live picture — rolling λ and μ matrices, per-SKU and
per-DC counters, the SLA-risk gauge and the drift detector — emitting
typed alerts as they fire.  It tracks its absolute stream position, so
:mod:`repro.stream.checkpoint` can serialize it mid-trace and a resumed
analyzer (fed the stream suffix via ``skip=events_seen``) produces
bit-identical matrices, summaries and alerts.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..decisions.availability import AvailabilitySla
from ..errors import DataError
from ..telemetry.schema import TICKET_LOG
from .blocks import KIND_RANK, EventBlock
from .estimators import StreamingGroupCounts, StreamingLambda, StreamingMu
from .events import Event, EventKind, StreamInventory
from .triggers import Alert, RateDriftDetector, SlaRiskMonitor

_INVENTORY_CODE = KIND_RANK[EventKind.INVENTORY_CHANGE]
_SENSOR_CODE = KIND_RANK[EventKind.SENSOR_SAMPLE]


class StreamAnalyzer:
    """Incremental analysis state over one event stream.

    Args:
        inventory: the stream's rack geometry.
        window_hours: μ window length (24 = daily, 1 = hourly).
        sla: availability target for the SLA-risk monitor.
        spare_fraction: provisioned spare fraction (scalar or per-rack);
            ``None`` disables the SLA-risk monitor.
        drift: enable the λ drift detector.
        drift_ratio / drift_min_excess: its sensitivity (see
            :class:`~repro.stream.triggers.RateDriftDetector`).
    """

    def __init__(
        self,
        inventory: StreamInventory,
        window_hours: float = 24.0,
        sla: AvailabilitySla | None = None,
        spare_fraction: float | np.ndarray | None = None,
        drift: bool = True,
        drift_ratio: float = 2.0,
        drift_min_excess: float = 5.0,
    ):
        if sla is None:
            sla = AvailabilitySla(1.0)
        self.inventory = inventory
        self.window_hours = float(window_hours)
        self.sla = sla
        self.lam = StreamingLambda(inventory.n_racks, inventory.n_days)
        self.mu = StreamingMu(
            inventory.n_servers, inventory.server_base, inventory.n_days,
            window_hours=window_hours,
        )
        self.sku_counts = StreamingGroupCounts(
            inventory.sku_code, inventory.sku_names,
        )
        self.dc_counts = StreamingGroupCounts(
            inventory.dc_code, inventory.dc_names,
        )
        self.monitor: SlaRiskMonitor | None = None
        if spare_fraction is not None:
            self.monitor = SlaRiskMonitor(inventory, sla, spare_fraction)
        self.drift: RateDriftDetector | None = None
        if drift:
            self.drift = RateDriftDetector(
                inventory.n_days, ratio=drift_ratio,
                min_excess=drift_min_excess,
            )
        self.extra_monitors: list = []
        self.events_seen = 0
        self.blocks_seen = 0
        self.last_time_hours = 0.0
        self.racks_in_service = 0
        self.sensor_samples = 0
        self.alerts: list[Alert] = []
        self.finished = False

    def attach_monitor(self, monitor) -> None:
        """Attach an extra trigger (e.g. a predictive monitor).

        Anything exposing ``update(event)``, ``update_block(block)`` /
        ``_update_block_indexed(block)`` and ``finish()`` plugs in; it
        sees *every* event (sensors included — feature-based monitors
        need them), and its alerts sort after the built-in triggers'
        within an event.  Must be attached before any event is fed.
        Monitors that also expose ``state_arrays()``/``meta()``
        checkpoint with the analyzer; resuming hands each one's state
        to a caller-supplied factory (see
        :func:`repro.stream.checkpoint.load_checkpoint`).
        """
        if self.events_seen or self.finished:
            raise DataError("attach monitors before feeding the stream")
        self.extra_monitors.append(monitor)

    def process(self, event: Event) -> list[Alert]:
        """Fold one event in; returns (and records) any new alerts.

        Events must arrive in stream order: ``event.seq`` has to equal
        the analyzer's current position, which is what makes a mid-trace
        resume provably seamless (a gap or replay raises
        :class:`~repro.errors.DataError` instead of silently skewing
        results).
        """
        if event.seq != self.events_seen:
            raise DataError(
                f"stream position mismatch: analyzer at {self.events_seen}, "
                f"event seq {event.seq} (resume with skip=events_seen)"
            )
        if self.finished:
            raise DataError("analyzer already finished")
        alerts: list[Alert] = []
        if event.kind is EventKind.INVENTORY_CHANGE:
            self.racks_in_service += int(event.value)
        elif event.kind is EventKind.SENSOR_SAMPLE:
            self.sensor_samples += 1
        else:
            self.lam.update(event)
            self.mu.update(event)
            self.sku_counts.update(event)
            self.dc_counts.update(event)
            if self.drift is not None:
                alerts.extend(self.drift.update(event))
            if self.monitor is not None:
                alerts.extend(self.monitor.update(event))
        for monitor in self.extra_monitors:
            alerts.extend(monitor.update(event))
        self.events_seen = event.seq + 1
        self.last_time_hours = max(self.last_time_hours, event.time_hours)
        self.alerts.extend(alerts)
        return alerts

    def consume(
        self,
        events: Iterable[Event],
        max_events: int | None = None,
    ) -> int:
        """Process events until exhaustion (or ``max_events``); returns
        how many were processed this call."""
        processed = 0
        for event in events:
            if max_events is not None and processed >= max_events:
                break
            self.process(event)
            processed += 1
        return processed

    def process_block(self, block: EventBlock) -> list[Alert]:
        """Fold a whole :class:`~repro.stream.blocks.EventBlock` in.

        The columnar fast path: bit-identical matrices, summaries and
        alert sequence to calling :meth:`process` on each of the
        block's events, but every consumer advances via its vectorized
        ``update_block``.  The block's ``start_seq`` must equal the
        analyzer's position — the same resume contract as per-event
        processing.
        """
        if block.start_seq != self.events_seen:
            raise DataError(
                f"stream position mismatch: analyzer at {self.events_seen}, "
                f"event seq {block.start_seq} (resume with skip=events_seen)"
            )
        if self.finished:
            raise DataError("analyzer already finished")
        if not len(block):
            return []
        kind = block.kind_code
        inventory_rows = kind == _INVENTORY_CODE
        if inventory_rows.any():
            self.racks_in_service += int(block.value[inventory_rows].sum())
        self.sensor_samples += int((kind == _SENSOR_CODE).sum())
        self.lam.update_block(block)
        self.mu.update_block(block)
        self.sku_counts.update_block(block)
        self.dc_counts.update_block(block)
        indexed: list[tuple[int, int, Alert]] = []
        if self.drift is not None:
            indexed.extend(
                (row, 0, alert)
                for row, alert in self.drift._update_block_indexed(block)
            )
        if self.monitor is not None:
            indexed.extend(
                (row, 1, alert)
                for row, alert in self.monitor._update_block_indexed(block)
            )
        for extra_rank, monitor in enumerate(self.extra_monitors):
            indexed.extend(
                (row, 2 + extra_rank, alert)
                for row, alert in monitor._update_block_indexed(block)
            )
        indexed.sort(key=lambda item: item[:2])
        alerts = [alert for _, _, alert in indexed]
        self.events_seen = block.end_seq
        self.blocks_seen += 1
        self.last_time_hours = max(
            self.last_time_hours, float(block.time_hours.max()),
        )
        self.alerts.extend(alerts)
        return alerts

    def consume_blocks(
        self,
        blocks: Iterable[EventBlock],
        max_events: int | None = None,
    ) -> int:
        """Process blocks until exhaustion (or ``max_events`` events);
        returns how many events were processed this call.  A block
        straddling the ``max_events`` boundary is split — the analyzer
        stops at exactly the same stream position the per-event path
        would."""
        processed = 0
        for block in blocks:
            if max_events is not None:
                remaining = max_events - processed
                if remaining <= 0:
                    break
                if len(block) > remaining:
                    self.process_block(block.slice(0, remaining))
                    processed += remaining
                    break
            self.process_block(block)
            processed += len(block)
        return processed

    def finish(self) -> list[Alert]:
        """Mark end-of-stream: evaluates the drift detector's trailing
        days.  Call exactly once, only when the stream is truly over —
        a checkpointed mid-trace analyzer must *not* be finished, or the
        resumed run would double-evaluate.  Returns the new alerts.
        """
        if self.finished:
            raise DataError("analyzer already finished")
        self.finished = True
        alerts: list[Alert] = []
        if self.drift is not None:
            alerts = self.drift.finish()
        for monitor in self.extra_monitors:
            alerts.extend(monitor.finish())
        self.alerts.extend(alerts)
        return alerts

    # -- read-back ----------------------------------------------------------

    def lambda_matrix(self) -> np.ndarray:
        """Per-rack per-day filed-RMA counts so far (batch-identical)."""
        return self.lam.matrix()

    def mu_matrix(self) -> np.ndarray:
        """Per-rack per-window concurrent-failure counts so far
        (batch-identical)."""
        return self.mu.matrix()

    def mu_max(self) -> int:
        """The worst concurrent-failure count observed in any window."""
        matrix = self.mu.matrix()
        return int(matrix.max()) if matrix.size else 0

    def summary(self) -> dict:
        """JSON-friendly snapshot of the live picture."""
        lam = self.lambda_matrix()
        mu = self.mu_matrix()
        sku_trailing = self.sku_counts.trailing_counts()
        dc_trailing = self.dc_counts.trailing_counts()
        return {
            "events_seen": self.events_seen,
            "last_time_hours": round(self.last_time_hours, 3),
            "racks_in_service": self.racks_in_service,
            "sensor_samples": self.sensor_samples,
            "window_hours": self.window_hours,
            "tickets_counted": int(lam.sum()),
            "lambda_mean_per_rack_day": float(lam.mean()),
            "mu_max": int(mu.max()) if mu.size else 0,
            "per_sku_total": {
                name: int(count)
                for name, count in zip(
                    self.inventory.sku_names, self.sku_counts.totals,
                )
            },
            "per_sku_trailing": {
                name: int(count)
                for name, count in zip(self.inventory.sku_names, sku_trailing)
            },
            "per_dc_total": {
                name: int(count)
                for name, count in zip(
                    self.inventory.dc_names, self.dc_counts.totals,
                )
            },
            "per_dc_trailing": {
                name: int(count)
                for name, count in zip(self.inventory.dc_names, dc_trailing)
            },
            "alerts": [
                {
                    "kind": alert.kind.value,
                    "time_hours": round(alert.time_hours, 3),
                    TICKET_LOG.rack_index: alert.rack_index,
                    "value": alert.value,
                    "threshold": alert.threshold,
                    "message": alert.message,
                }
                for alert in self.alerts
            ],
        }
