"""Event view: the flattened stream as per-:class:`Event` iterators.

Batch analyses consume a *completed* trace; a real operator consumes
RMA tickets and BMS readings as they arrive.  The event *model* — the
four kinds, their tie-break ranks, and the rack-geometry
:class:`~repro.stream.blocks.StreamInventory` — lives in
:mod:`repro.stream.blocks`, which also owns the columnar flatten that
actually orders the stream.  This module is the compatibility view on
top of it:

* :class:`Event` — one stream element as a frozen dataclass, exactly
  the shape consumers have always seen;
* ``flatten_parts`` / ``flatten_result`` / ``flatten_field_dataset`` /
  ``flatten_directory`` — the historical entry points, now thin
  generators that iterate :class:`~repro.stream.blocks.EventBlock`
  chunks and materialize one :class:`Event` per record
  (:func:`iter_block_events`);
* ``flatten_parts_merged`` — the original generator-based heap merge,
  kept as the executable reference the property tests compare the
  columnar path against, and as the engine of :func:`follow_directory`
  (tailing a growing CSV is inherently per-row).

The total order — ``(time_hours, kind rank, source order)`` — is
deterministic either way, which is what makes checkpoint/resume exact:
a consumer that processed the first *k* events and resumes at
``skip=k`` sees exactly the suffix it would have seen in one pass.
"""

from __future__ import annotations

import heapq
import pathlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..errors import DataError
from ..failures.tickets import TicketLog
from .blocks import (
    ALL_KINDS,
    DEFAULT_BLOCK_SIZE,
    KIND_BY_CODE,
    KIND_RANK,
    EventBlock,
    EventKind,
    StreamInventory,
    _load_directory,
    _normalize_kinds,
    blocks_from_directory,
    blocks_from_parts,
)

if TYPE_CHECKING:
    from ..config import SimulationConfig
    from ..failures.engine import SimulationResult
    from ..fielddata.dataset import FieldDataset

__all__ = [
    "ALL_KINDS",
    "Event",
    "EventKind",
    "KIND_RANK",
    "StreamInventory",
    "directory_inventory",
    "flatten_cached",
    "flatten_directory",
    "flatten_field_dataset",
    "flatten_parts",
    "flatten_parts_merged",
    "flatten_result",
    "follow_directory",
    "iter_block_events",
]


@dataclass(frozen=True, slots=True, eq=False)
class Event:
    """One element of the flattened stream.

    Attributes:
        seq: global position in the stream (assigned by the merger;
            checkpoint/resume skips by it).
        time_hours: absolute event time, hours from day 0.
        kind: event kind.
        rack_index: flat rack index (all kinds).
        server_offset: within-rack server position (ticket kinds).
        day_index: the ticket's recorded detection day (ticket kinds;
            carried separately from ``time_hours`` because degraded
            field data can have the two disagree, and the batch λ path
            counts by the recorded day).
        fault_code: fault-type code (ticket kinds).
        false_positive: ticket resolved as "no fault found".
        repair_hours: open-to-close duration (ticket kinds).
        batch_id: correlated-batch id, -1 for independent tickets.
        ticket_ordinal: the ticket's row position in the source log —
            the batch path's batch-dedupe rule is defined in log order,
            so streaming consumers need it to reproduce that rule
            bit-for-bit on arbitrarily ordered data.
        value: kind-specific reading — temperature °F for sensor
            samples, +1/-1 service delta for inventory changes (0.0 for
            kinds that carry none; NaN marks a *missing* BMS reading).
        value2: second reading (relative humidity for sensor samples).
    """

    seq: int
    time_hours: float
    kind: EventKind
    rack_index: int = -1
    server_offset: int = -1
    day_index: int = -1
    fault_code: int = -1
    false_positive: bool = False
    repair_hours: float = 0.0
    batch_id: int = -1
    ticket_ordinal: int = -1
    value: float = 0.0
    value2: float = 0.0

    @property
    def end_hour_abs(self) -> float:
        """Resolution time of a ticket-open event."""
        return self.time_hours + self.repair_hours

    def _identity(self) -> tuple:
        # NaN sensor readings (missing BMS samples) must compare equal
        # across passes, so normalize them to a sentinel.
        value = None if self.value != self.value else self.value
        value2 = None if self.value2 != self.value2 else self.value2
        return (
            self.seq, self.time_hours, self.kind, self.rack_index,
            self.server_offset, self.day_index, self.fault_code,
            self.false_positive, self.repair_hours, self.batch_id,
            self.ticket_ordinal, value, value2,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())


def iter_block_events(block: EventBlock) -> Iterator[Event]:
    """Materialize a block's records as :class:`Event` objects.

    This is the only place the compatibility view pays per-event
    object cost; columnar consumers (``update_block`` paths) never
    call it.
    """
    data = block.data
    columns = zip(
        block.seq.tolist(),
        block.time_hours.tolist(),
        block.kind_code.tolist(),
        block.rack_index.tolist(),
        block.server_offset.tolist(),
        block.day_index.tolist(),
        block.fault_code.tolist(),
        block.false_positive.tolist(),
        block.repair_hours.tolist(),
        block.batch_id.tolist(),
        block.ticket_ordinal.tolist(),
        block.value.tolist(),
        block.value2.tolist(),
    )
    del data
    for (seq, time_hours, code, rack, offset, day, fault, fp, repair,
         batch, ordinal, value, value2) in columns:
        yield Event(
            seq=seq, time_hours=time_hours, kind=KIND_BY_CODE[code],
            rack_index=rack, server_offset=offset, day_index=day,
            fault_code=fault, false_positive=fp, repair_hours=repair,
            batch_id=batch, ticket_ordinal=ordinal, value=value,
            value2=value2,
        )


def _events_from_blocks(blocks: Iterable[EventBlock]) -> Iterator[Event]:
    for block in blocks:
        yield from iter_block_events(block)


# ---------------------------------------------------------------------------
# Reference implementation: per-kind generators + heap merge.  The
# columnar flatten in `blocks` must reproduce this order bit-for-bit;
# `follow_directory` still runs on it (tailing a CSV is per-row).


def _inventory_events(inventory: StreamInventory) -> Iterator[Event]:
    entries = [
        (float(day) * 24.0, rack, +1.0)
        for rack, day in enumerate(inventory.commission_day.tolist())
    ]
    entries += [
        (float(day) * 24.0, rack, -1.0)
        for rack, day in enumerate(inventory.decommission_day.tolist())
        if day < inventory.n_days
    ]
    entries.sort()
    for time_hours, rack, delta in entries:
        yield Event(
            seq=-1, time_hours=time_hours, kind=EventKind.INVENTORY_CHANGE,
            rack_index=rack, value=delta,
        )


def _sensor_events(temp_f: np.ndarray, rh: np.ndarray) -> Iterator[Event]:
    n_days, n_racks = temp_f.shape
    for day in range(n_days):
        time_hours = day * 24.0
        temp_row = temp_f[day]
        rh_row = rh[day]
        for rack in range(n_racks):
            yield Event(
                seq=-1, time_hours=time_hours, kind=EventKind.SENSOR_SAMPLE,
                rack_index=rack, day_index=day,
                value=float(temp_row[rack]), value2=float(rh_row[rack]),
            )


def _ticket_open_events(log: TicketLog) -> Iterator[Event]:
    """Ticket-open events in start-time order (stable by log position).

    The log columns stay as compact numpy arrays; events materialize one
    at a time.
    """
    if len(log) == 0:
        return
    start = log.start_hour_abs
    day = log.day_index
    rack = log.rack_index
    offset = log.server_offset
    fault = log.fault_code
    fp = log.false_positive
    repair = log.repair_hours
    batch = log.batch_id
    order = np.argsort(start, kind="stable")
    for ordinal in order.tolist():
        yield Event(
            seq=-1,
            time_hours=float(start[ordinal]),
            kind=EventKind.TICKET_OPEN,
            rack_index=int(rack[ordinal]),
            server_offset=int(offset[ordinal]),
            day_index=int(day[ordinal]),
            fault_code=int(fault[ordinal]),
            false_positive=bool(fp[ordinal]),
            repair_hours=float(repair[ordinal]),
            batch_id=int(batch[ordinal]),
            ticket_ordinal=int(ordinal),
        )


def _close_of(open_event: Event) -> Event:
    return replace(
        open_event,
        kind=EventKind.TICKET_CLOSE,
        time_hours=open_event.end_hour_abs,
    )


class _CloseHeap:
    """Pending ticket-close events, synthesized from opens.

    Bounded by the number of concurrently open tickets, so the merge
    stays memory-light even on unbounded streams (the property follow
    mode relies on).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, open_event: Event) -> None:
        close = _close_of(open_event)
        heapq.heappush(
            self._heap, (close.time_hours, open_event.ticket_ordinal, close)
        )

    def pop_due(self, time_hours: float, rank: int) -> Iterator[Event]:
        """Closes strictly ordered before a ``(time, rank)`` key."""
        close_rank = KIND_RANK[EventKind.TICKET_CLOSE]
        while self._heap and (self._heap[0][0], close_rank) < (time_hours, rank):
            yield heapq.heappop(self._heap)[2]

    def drain(self) -> Iterator[Event]:
        """All remaining closes, in order."""
        while self._heap:
            yield heapq.heappop(self._heap)[2]

    def snapshot(self) -> list[Event]:
        """The pending opens' close events, heap-ordered (for state)."""
        return [item[2] for item in sorted(self._heap, key=lambda i: i[:2])]


def _merge_events(
    sources: list[Iterator[Event]],
    kinds: frozenset[EventKind],
    skip: int = 0,
) -> Iterator[Event]:
    """Heap-merge sources, synthesize closes, assign global seq numbers.

    ``skip`` drops the first *n* stream positions (after kind
    filtering), preserving the global numbering — the resume primitive.
    """
    emit_closes = EventKind.TICKET_CLOSE in kinds
    merged = heapq.merge(
        *sources, key=lambda e: (e.time_hours, KIND_RANK[e.kind])
    )
    closes = _CloseHeap()
    seq = 0

    def numbered(event: Event) -> Iterator[Event]:
        nonlocal seq
        if seq >= skip:
            yield replace(event, seq=seq)
        seq += 1

    for event in merged:
        if emit_closes:
            for close in closes.pop_due(event.time_hours, KIND_RANK[event.kind]):
                yield from numbered(close)
        if event.kind is EventKind.TICKET_OPEN and emit_closes:
            closes.push(event)
        if event.kind in kinds:
            yield from numbered(event)
    if emit_closes:
        for close in closes.drain():
            yield from numbered(close)


def flatten_parts_merged(
    inventory: StreamInventory,
    tickets: TicketLog,
    temp_f: np.ndarray | None = None,
    rh: np.ndarray | None = None,
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
) -> Iterator[Event]:
    """The original generator-based flatten (reference implementation).

    Sources whose kind is filtered out are never built; ticket-open
    sources are still consumed internally when only closes are
    requested (a close exists because an open did).  The columnar
    :func:`repro.stream.blocks.blocks_from_parts` path is property-
    tested element-for-element against this.
    """
    wanted = _normalize_kinds(kinds)
    sources: list[Iterator[Event]] = []
    if EventKind.INVENTORY_CHANGE in wanted:
        sources.append(_inventory_events(inventory))
    if EventKind.SENSOR_SAMPLE in wanted and temp_f is not None:
        if rh is None or temp_f.shape != rh.shape:
            raise DataError("sensor matrices must be aligned")
        sources.append(_sensor_events(temp_f, rh))
    if wanted & {EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE}:
        sources.append(_ticket_open_events(tickets))
    return _merge_events(sources, wanted, skip=skip)


# ---------------------------------------------------------------------------
# Entry points: thin Event views over the columnar flatten.


def flatten_parts(
    inventory: StreamInventory,
    tickets: TicketLog,
    temp_f: np.ndarray | None = None,
    rh: np.ndarray | None = None,
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[Event]:
    """Flatten inventory + tickets (+ optional sensor matrices).

    The shared entry point behind the other ``flatten_*`` functions —
    an :class:`Event` view over the columnar
    :func:`~repro.stream.blocks.blocks_from_parts` engine.
    """
    return _events_from_blocks(blocks_from_parts(
        inventory, tickets, temp_f=temp_f, rh=rh, kinds=kinds, skip=skip,
        block_size=block_size,
    ))


def flatten_result(
    result: "SimulationResult",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
) -> Iterator[Event]:
    """Flatten a simulation run into the event stream.

    Sensor samples come from the BMS (the operator-visible readings,
    NaN where missing), never from simulator ground truth.
    """
    return flatten_parts(
        StreamInventory.from_result(result),
        tickets=result.tickets,
        temp_f=result.bms.temp_f,
        rh=result.bms.rh,
        kinds=kinds,
        skip=skip,
    )


def flatten_cached(
    config: "SimulationConfig",
    cache=None,
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
) -> Iterator[Event]:
    """Flatten the run for ``config``, reusing the keyed run cache.

    ``simulate → flatten`` with the simulation step served from
    :func:`repro.cache.simulate_cached` when a :class:`~repro.cache.RunCache`
    (or cache directory path) is given — repeated streaming passes over
    the same configuration (calibration, resume, benchmarks) then skip
    the simulation entirely.
    """
    from ..cache import RunCache, simulate_cached

    if isinstance(cache, (str, pathlib.Path)):
        cache = RunCache(cache)
    result, _ = simulate_cached(config, cache)
    return flatten_result(result, kinds=kinds, skip=skip)


def flatten_field_dataset(
    dataset: "FieldDataset",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
) -> Iterator[Event]:
    """Flatten a (possibly degraded) field dataset, censoring included."""
    return flatten_parts(
        StreamInventory.from_field_dataset(dataset),
        tickets=dataset.tickets,
        temp_f=dataset.temp_f,
        rh=dataset.rh,
        kinds=kinds,
        skip=skip,
    )


def directory_inventory(
    in_dir: str | pathlib.Path, config: "SimulationConfig",
) -> StreamInventory:
    """The :class:`StreamInventory` of an exported run/field directory.

    The fleet is rebuilt deterministically from ``config`` and checked
    against ``inventory.csv`` (same contract as
    :func:`repro.fielddata.ingest.load_field_dataset`); censoring dates
    are honored when the export carries them.
    """
    return _load_directory(pathlib.Path(in_dir), config)[0]


def flatten_directory(
    in_dir: str | pathlib.Path,
    config: "SimulationConfig",
    kinds: Iterable[EventKind] | None = None,
    skip: int = 0,
) -> Iterator[Event]:
    """Flatten an exported directory (``repro simulate``/``corrupt`` output).

    ``tickets.csv`` and ``inventory.csv`` are required; the
    ``sensors.npz`` bundle is optional (plain ``simulate`` exports do
    not carry one — sensor-sample events are simply absent then).
    """
    return _events_from_blocks(blocks_from_directory(
        in_dir, config, kinds=kinds, skip=skip,
    ))


def _ticket_row_event(
    row: list[str],
    positions: dict[str, int],
    ordinal: int,
    rack_index_by_id: dict[str, int],
    fault_code_by_label: dict[str, int],
    path: pathlib.Path,
) -> Event:
    """Parse one exported ticket row into a ticket-open event."""
    def cell(name: str) -> str:
        return row[positions[name]]

    try:
        return Event(
            seq=-1,
            time_hours=float(cell("start_hour_abs")),
            kind=EventKind.TICKET_OPEN,
            rack_index=rack_index_by_id[cell("rack_id")],
            server_offset=int(cell("server_offset")),
            day_index=int(cell("day_index")),
            fault_code=fault_code_by_label[cell("fault_type")],
            false_positive=cell("false_positive") == "1",
            repair_hours=float(cell("repair_hours")),
            batch_id=int(cell("batch_id")),
            ticket_ordinal=ordinal,
        )
    except (ValueError, KeyError) as error:
        raise DataError(
            f"{path}: row {ordinal + 2}: cannot parse ticket ({error})"
        ) from None


def follow_directory(
    in_dir: str | pathlib.Path,
    config: "SimulationConfig",
    poll_interval: float = 1.0,
    max_idle_polls: int = 3,
    sleep=None,
    skip: int = 0,
) -> Iterator[Event]:
    """Incrementally stream a *growing* export directory's ticket events.

    Re-reads ``tickets.csv`` through the chunked
    :func:`~repro.telemetry.io.iter_csv_rows` reader, parsing only rows
    appended since the previous poll, and yields ticket-open plus
    synthesized ticket-close events in the same global order
    :func:`flatten_directory` would produce (the producer must append
    rows in non-decreasing ``start_hour_abs`` order — the exporters'
    canonical order — else a :class:`~repro.errors.DataError` is
    raised).  Sensor and inventory events are not followed; use the
    one-shot flatteners for those.

    The generator ends after ``max_idle_polls`` consecutive polls with
    no growth, draining pending closes.  ``sleep`` is injectable for
    tests (defaults to :func:`time.sleep`).
    """
    import time

    from ..fielddata.ingest import FAULT_CODE_BY_LABEL
    from ..telemetry.io import TICKET_COLUMNS, iter_csv_rows

    if max_idle_polls < 1:
        raise DataError(f"max_idle_polls must be >= 1, got {max_idle_polls}")
    if sleep is None:
        sleep = time.sleep
    in_dir = pathlib.Path(in_dir)
    inventory, _ = _load_directory(in_dir, config)
    rack_index_by_id = {
        rack_id: index for index, rack_id in enumerate(inventory.rack_ids)
    }
    tickets_path = in_dir / "tickets.csv"
    open_rank = KIND_RANK[EventKind.TICKET_OPEN]
    closes = _CloseHeap()
    rows_seen = 0
    last_open_hour = float("-inf")
    idle_polls = 0
    seq = 0

    def numbered(event: Event) -> Iterator[Event]:
        nonlocal seq
        if seq >= skip:
            yield replace(event, seq=seq)
        seq += 1

    while idle_polls < max_idle_polls:
        new_rows = 0
        if tickets_path.exists():
            ordinal = 0
            for header, rows in iter_csv_rows(tickets_path):
                positions = {name: header.index(name) for name in TICKET_COLUMNS
                             if name in header}
                missing = [name for name in (
                    "start_hour_abs", "rack_id", "server_offset", "day_index",
                    "fault_type", "false_positive", "repair_hours", "batch_id",
                ) if name not in positions]
                if missing:
                    raise DataError(f"{tickets_path}: missing columns {missing}")
                for row in rows:
                    if ordinal >= rows_seen:
                        event = _ticket_row_event(
                            row, positions, ordinal, rack_index_by_id,
                            FAULT_CODE_BY_LABEL, tickets_path,
                        )
                        if event.time_hours < last_open_hour:
                            raise DataError(
                                f"{tickets_path}: row {ordinal + 2}: tickets "
                                "must be appended in start-time order for "
                                "--follow"
                            )
                        last_open_hour = event.time_hours
                        for close in closes.pop_due(event.time_hours, open_rank):
                            yield from numbered(close)
                        yield from numbered(event)
                        closes.push(event)
                        new_rows += 1
                    ordinal += 1
            rows_seen = max(rows_seen, ordinal)
        if new_rows == 0:
            idle_polls += 1
        else:
            idle_polls = 0
        if idle_polls < max_idle_polls:
            sleep(poll_interval)
    for close in closes.drain():
        yield from numbered(close)
