"""Deterministic checkpoint/resume for :class:`~repro.stream.analyzer.StreamAnalyzer`.

One ``.npz`` bundle holds everything: each component's flat state
arrays under dotted keys (``lambda.counts``, ``mu.diff``, ...) plus a
``meta_json`` blob (UTF-8 bytes as a uint8 array) carrying the schema
version, the inventory fingerprint, scalar counters, trigger
configuration and the alerts emitted so far.

The contract: save at any stream position *k*, reload against the same
inventory, feed the stream suffix (``skip=k`` on any flattener), and
every downstream artifact — λ/μ matrices, summaries, alerts, their
order and timestamps — is bit-identical to a single uninterrupted pass.
The analyzer enforces the seam itself (it refuses events whose ``seq``
does not match its position), and the fingerprint check refuses resumes
against a different fleet.

Attached extra monitors (e.g. a
:class:`~repro.predict.monitor.PredictiveMonitor`) checkpoint too:
each one's flat arrays land under an indexed ``extra{i}.`` prefix and
its type name is recorded in the metadata.  What the bundle does *not*
carry is anything the monitor holds by reference rather than by state
— a fitted model, most prominently — so :func:`load_checkpoint` takes
one factory per extra monitor that closes over those references and
rebuilds the monitor from its arrays + metadata (see
``PredictiveMonitor.from_state`` for the canonical shape).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..decisions.availability import AvailabilitySla
from ..errors import DataError
from ..telemetry.schema import TICKET_LOG
from .analyzer import StreamAnalyzer
from .estimators import StreamingLambda, StreamingMu
from .events import StreamInventory
from .triggers import Alert, AlertKind, RateDriftDetector, SlaRiskMonitor

#: Bump on any incompatible change to the bundle layout.
STREAM_CHECKPOINT_SCHEMA = 1

_PARTS = ("lambda", "mu", "sku", "dc", "monitor", "drift")


def _alert_to_json(alert: Alert) -> dict:
    return {
        "kind": alert.kind.value,
        "time_hours": alert.time_hours,
        "message": alert.message,
        TICKET_LOG.rack_index: alert.rack_index,
        "value": alert.value,
        "threshold": alert.threshold,
    }


def _alert_from_json(payload: dict) -> Alert:
    return Alert(
        kind=AlertKind(payload["kind"]),
        time_hours=float(payload["time_hours"]),
        message=str(payload["message"]),
        rack_index=int(payload[TICKET_LOG.rack_index]),
        value=float(payload["value"]),
        threshold=float(payload["threshold"]),
    )


def save_checkpoint(
    analyzer: StreamAnalyzer, path: str | pathlib.Path,
) -> pathlib.Path:
    """Serialize a mid-trace analyzer to one ``.npz`` bundle.

    A finished analyzer is refused: end-of-stream processing (drift
    rollover) has already run, so resuming it would double-count.
    """
    if analyzer.finished:
        raise DataError("cannot checkpoint a finished analyzer")
    for index, extra in enumerate(analyzer.extra_monitors):
        if not (hasattr(extra, "state_arrays") and hasattr(extra, "meta")):
            raise DataError(
                f"extra monitor #{index} "
                f"({type(extra).__name__}) does not expose "
                "state_arrays()/meta() and cannot be checkpointed"
            )
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    metas: dict[str, dict] = {}

    def add(prefix: str, state: dict[str, np.ndarray], meta: dict) -> None:
        for name, array in state.items():
            arrays[f"{prefix}.{name}"] = array
        metas[prefix] = meta

    add("lambda", analyzer.lam.state_arrays(), analyzer.lam.meta())
    add("mu", analyzer.mu.state_arrays(), analyzer.mu.meta())
    add("sku", analyzer.sku_counts.state_arrays(), analyzer.sku_counts.meta())
    add("dc", analyzer.dc_counts.state_arrays(), analyzer.dc_counts.meta())
    if analyzer.monitor is not None:
        add("monitor", analyzer.monitor.state_arrays(), analyzer.monitor.meta())
    if analyzer.drift is not None:
        add("drift", analyzer.drift.state_arrays(), analyzer.drift.meta())
    extras = []
    for index, extra in enumerate(analyzer.extra_monitors):
        add(f"extra{index}", extra.state_arrays(), extra.meta())
        extras.append({"type": type(extra).__name__})

    meta = {
        "schema": STREAM_CHECKPOINT_SCHEMA,
        "inventory_fingerprint": analyzer.inventory.fingerprint(),
        "events_seen": analyzer.events_seen,
        "blocks_seen": analyzer.blocks_seen,
        "last_time_hours": analyzer.last_time_hours,
        "racks_in_service": analyzer.racks_in_service,
        "sensor_samples": analyzer.sensor_samples,
        "window_hours": analyzer.window_hours,
        "sla_level": analyzer.sla.level,
        "alerts": [_alert_to_json(alert) for alert in analyzer.alerts],
        "parts": metas,
        "extras": extras,
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8,
    )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def checkpoint_meta(path: str | pathlib.Path) -> dict:
    """The bundle's metadata (schema, fingerprint, position, ...)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such checkpoint: {path}")
    with np.load(path) as bundle:
        if "meta_json" not in bundle:
            raise DataError(f"{path} is not a stream checkpoint")
        raw = bytes(bundle["meta_json"].tobytes())
    try:
        meta = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DataError(f"{path}: corrupt checkpoint metadata ({error})") from None
    if meta.get("schema") != STREAM_CHECKPOINT_SCHEMA:
        raise DataError(
            f"{path}: checkpoint schema {meta.get('schema')!r} != "
            f"{STREAM_CHECKPOINT_SCHEMA}"
        )
    return meta


def load_checkpoint(
    path: str | pathlib.Path, inventory: StreamInventory,
    extra_monitor_factories=None,
) -> StreamAnalyzer:
    """Rebuild an analyzer from a bundle, verified against ``inventory``.

    The returned analyzer sits exactly at ``events_seen``; feed it the
    stream suffix (``skip=analyzer.events_seen``) to continue.

    Args:
        path: the ``.npz`` bundle written by :func:`save_checkpoint`.
        inventory: the stream's rack geometry (fingerprint-checked).
        extra_monitor_factories: one callable per extra monitor in the
            bundle, in attach order.  Each receives ``(arrays, meta)``
            — the monitor's flat state arrays and its JSON metadata —
            and returns the rebuilt monitor; the factory supplies
            whatever the bundle does not carry (e.g. the fitted model:
            ``lambda a, m: PredictiveMonitor.from_state(inv, model, a,
            m)``).  Required exactly when the bundle has extras.
    """
    path = pathlib.Path(path)
    meta = checkpoint_meta(path)
    if meta["inventory_fingerprint"] != inventory.fingerprint():
        raise DataError(
            f"{path}: checkpoint was taken against a different inventory "
            f"(fingerprint {meta['inventory_fingerprint']} != "
            f"{inventory.fingerprint()})"
        )
    parts = meta["parts"]
    extras_meta = meta.get("extras", [])
    factories = list(extra_monitor_factories or [])
    if len(factories) != len(extras_meta):
        kinds = [extra["type"] for extra in extras_meta]
        raise DataError(
            f"{path}: bundle carries {len(extras_meta)} extra "
            f"monitor(s) {kinds} but {len(factories)} factory(ies) "
            "were supplied; pass one extra_monitor_factories entry per "
            "attached monitor, in attach order"
        )
    prefixes = list(_PARTS) + [f"extra{i}" for i in range(len(extras_meta))]
    with np.load(path) as bundle:
        arrays = {
            prefix: {
                key.split(".", 1)[1]: bundle[key]
                for key in bundle.files
                if key.startswith(f"{prefix}.")
            }
            for prefix in prefixes
        }

    analyzer = StreamAnalyzer(
        inventory,
        window_hours=float(meta["window_hours"]),
        sla=AvailabilitySla(float(meta["sla_level"])),
        spare_fraction=None,
        drift=False,
    )
    analyzer.lam = StreamingLambda.from_state(
        arrays["lambda"], parts["lambda"],
    )
    analyzer.mu = StreamingMu.from_state(
        inventory.n_servers, inventory.server_base,
        arrays["mu"], parts["mu"],
    )
    # "sku"/"dc" here are checkpoint part prefixes (_PARTS), not
    # telemetry column names.
    analyzer.sku_counts.restore(arrays["sku"], parts["sku"])  # repro: noqa[schema-fields]
    analyzer.dc_counts.restore(arrays["dc"], parts["dc"])  # repro: noqa[schema-fields]
    if "monitor" in parts:
        analyzer.monitor = SlaRiskMonitor.from_state(
            inventory, arrays["monitor"], parts["monitor"],
        )
    if "drift" in parts:
        analyzer.drift = RateDriftDetector.from_state(
            arrays["drift"], parts["drift"],
        )
    for index, factory in enumerate(factories):
        prefix = f"extra{index}"
        # Restored directly (not via attach_monitor, which refuses a
        # mid-stream analyzer): the monitor's own state already sits at
        # the checkpoint position.
        analyzer.extra_monitors.append(
            factory(arrays[prefix], parts[prefix]),
        )
    analyzer.events_seen = int(meta["events_seen"])
    analyzer.blocks_seen = int(meta.get("blocks_seen", 0))
    analyzer.last_time_hours = float(meta["last_time_hours"])
    analyzer.racks_in_service = int(meta["racks_in_service"])
    analyzer.sensor_samples = int(meta["sensor_samples"])
    analyzer.alerts = [_alert_from_json(a) for a in meta["alerts"]]
    return analyzer
