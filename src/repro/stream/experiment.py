"""The ``streaming`` experiment: online vs batch, on one run.

Demonstrates (and re-verifies, every time it renders) the subsystem's
three contracts on the context's simulation run:

1. **Batch equivalence** — streaming λ and μ matrices are bit-identical
   to :mod:`repro.telemetry.aggregate` on the same data.
2. **Checkpoint/resume determinism** — a mid-trace checkpoint resumed on
   the stream suffix reproduces the one-pass matrices and alerts exactly.
3. **Trigger calibration** — an SLA-risk monitor provisioned from the
   run's own μ history emits zero alerts, while halving its spare pool
   on the same stream surfaces genuine risk.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..decisions.availability import AvailabilitySla
from ..reporting.context import AnalysisContext
from ..telemetry.aggregate import lambda_matrix, mu_matrix
from .analyzer import StreamAnalyzer
from .blocks import blocks_from_result
from .checkpoint import load_checkpoint, save_checkpoint
from .events import EventKind, StreamInventory
from .triggers import calibrated_spare_fraction

#: Pipeline stage dependencies of the registered ``streaming``
#: experiment: none beyond the simulation itself — the experiment
#: re-derives its batch baselines in-process on purpose, since its whole
#: point is verifying the online analyzers against them.  Cross-checked
#: against the experiment registry's declaration by tests.
STAGE_DEPS: tuple[str, ...] = ()

#: Modules whose source content invalidates a cached rendering of the
#: ``streaming`` experiment (cross-checked likewise).
CODE_MODULES: tuple[str, ...] = ("repro.stream.experiment",)

#: Event kinds the experiment streams (sensor samples carry no λ/μ
#: signal and would dominate the event count at paper scale).
_KINDS = frozenset({
    EventKind.INVENTORY_CHANGE,
    EventKind.TICKET_OPEN,
    EventKind.TICKET_CLOSE,
})


def streaming_experiment(
    context: AnalysisContext,
    window_hours: float = 24.0,
    stress_factor: float = 0.5,
) -> str:
    """Render the streaming-vs-batch report for the context's run."""
    result = context.result
    inventory = StreamInventory.from_result(result)
    sla = AvailabilitySla(1.0)

    batch_lambda = lambda_matrix(result)
    batch_mu = mu_matrix(result, window_hours)
    fraction = calibrated_spare_fraction(
        batch_mu, inventory.n_servers, sla,
    )

    def stream(spare_fraction: float) -> StreamAnalyzer:
        analyzer = StreamAnalyzer(
            inventory, window_hours=window_hours, sla=sla,
            spare_fraction=spare_fraction,
        )
        analyzer.consume_blocks(blocks_from_result(result, kinds=_KINDS))
        analyzer.finish()
        return analyzer

    calibrated = stream(fraction)
    lambda_equal = np.array_equal(calibrated.lambda_matrix(), batch_lambda)
    mu_equal = np.array_equal(calibrated.mu_matrix(), batch_mu)

    # Checkpoint at the stream midpoint, resume on the suffix, and
    # compare against the uninterrupted pass.
    split = calibrated.events_seen // 2
    partial = StreamAnalyzer(
        inventory, window_hours=window_hours, sla=sla, spare_fraction=fraction,
    )
    partial.consume_blocks(blocks_from_result(result, kinds=_KINDS),
                           max_events=split)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(partial, Path(tmp) / "stream.ckpt.npz")
        resumed = load_checkpoint(path, inventory)
    resumed.consume_blocks(
        blocks_from_result(result, kinds=_KINDS, skip=resumed.events_seen)
    )
    resumed.finish()
    resume_equal = (
        np.array_equal(resumed.lambda_matrix(), calibrated.lambda_matrix())
        and np.array_equal(resumed.mu_matrix(), calibrated.mu_matrix())
        and resumed.alerts == calibrated.alerts
    )

    stressed = stream(fraction * stress_factor)

    summary = calibrated.summary()
    lines = [
        "Streaming analysis vs batch (repro.stream)",
        "",
        f"events streamed          : {calibrated.events_seen}",
        f"tickets counted (λ)      : {summary['tickets_counted']}",
        f"μmax ({window_hours:g}h windows)     : {summary['mu_max']}",
        f"λ bit-identical to batch : {'yes' if lambda_equal else 'NO'}",
        f"μ bit-identical to batch : {'yes' if mu_equal else 'NO'}",
        f"checkpoint/resume exact  : {'yes' if resume_equal else 'NO'}"
        f" (split at event {split})",
        "",
        f"calibrated spare fraction: {fraction:.4f} "
        f"(SLA {sla.percent_label})",
        f"alerts at calibration    : {len(calibrated.alerts)}",
        f"alerts at {stress_factor:g}x spares    : {len(stressed.alerts)}",
    ]
    for alert in stressed.alerts[:5]:
        lines.append(f"  [{alert.kind.value}] t={alert.time_hours:.1f}h "
                     f"{alert.message}")
    if len(stressed.alerts) > 5:
        lines.append(f"  ... and {len(stressed.alerts) - 5} more")
    return "\n".join(lines)
