"""Process-parallel execution of embarrassingly parallel runs.

Three workloads in this repository are trivially parallel and worth
running that way once the engine itself is vectorized:

* multi-seed robustness/ablation sweeps (one process per seed),
* multi-seed CSV exports from the CLI, and
* rendering the report's independent experiments (one process pool whose
  workers share a single simulation via the run cache).

Everything here is deliberately small: a ``ProcessPoolExecutor`` wrapper
with a serial fast path (``jobs <= 1`` never spawns processes, so tests
and single-core environments behave exactly as before).  Work functions
must be picklable (module-level functions or :func:`functools.partial`
of them).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any

from .errors import ConfigError, ReproError

if TYPE_CHECKING:
    from .config import SimulationConfig


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 → all cores, n → n.

    Negative values are rejected; 1 means serial execution.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def map_seeds(
    fn: Callable[[int], Any],
    seeds: Sequence[int],
    jobs: int | None = 1,
) -> list[Any]:
    """Apply ``fn`` to every seed, optionally across processes.

    Args:
        fn: picklable callable taking one seed.
        seeds: seeds to map over (result order matches input order).
        jobs: worker processes; ``<= 1`` runs serially in-process,
            ``None``/``0`` uses every core.

    Returns:
        ``[fn(seed) for seed in seeds]`` — identical to the serial
        result regardless of ``jobs``, since each seed's work is
        deterministic and independent.
    """
    if not seeds:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seeds) == 1:
        return [fn(seed) for seed in seeds]
    with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
        return list(pool.map(fn, seeds))


# ---------------------------------------------------------------------------
# Parallel experiment rendering.
#
# Each worker process obtains the SimulationResult once (through the run
# cache when one is configured — the parent warms it before forking, so
# workers never duplicate the simulation) and renders its share of the
# report's experiments.

_WORKER_CONTEXT: Any = None


def _experiment_worker_init(config: "SimulationConfig", cache_dir: str | None) -> None:
    global _WORKER_CONTEXT
    from .cache import RunCache, simulate_cached
    from .reporting.context import AnalysisContext

    cache = RunCache(cache_dir) if cache_dir else None
    result, _ = simulate_cached(config, cache)
    _WORKER_CONTEXT = AnalysisContext(result)


def _render_experiment(experiment_id: str) -> tuple[str, str | None, str | None]:
    from .reporting.experiments import get_experiment

    try:
        return experiment_id, get_experiment(experiment_id).render(_WORKER_CONTEXT), None
    except ReproError as error:
        return experiment_id, None, str(error)


def run_experiments(
    experiment_ids: Sequence[str],
    *,
    context: Any = None,
    config: "SimulationConfig | None" = None,
    jobs: int | None = 1,
    cache_dir: str | None = None,
) -> list[tuple[str, str | None, str | None]]:
    """Render experiments, in parallel when ``jobs > 1``.

    Args:
        experiment_ids: experiments to render, in output order.
        context: an existing :class:`~repro.reporting.context.AnalysisContext`
            (required for the serial path, optional otherwise).
        config: simulation config for worker processes to (re)obtain the
            run; required when ``jobs > 1``.
        jobs: worker processes; ``<= 1`` renders serially via ``context``.
        cache_dir: run-cache directory workers load the simulation from;
            without it each worker re-simulates ``config`` once.

    Returns:
        ``(experiment_id, rendered_text, error)`` triples in input
        order; exactly one of ``rendered_text``/``error`` is set per
        entry (``error`` carries a :class:`~repro.errors.ReproError`
        message for artifacts this run cannot support).
    """
    ids = list(experiment_ids)
    if not ids:
        return []
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(ids) > 1:
        if config is None:
            raise ConfigError("parallel run_experiments needs the simulation config")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ids)),
            initializer=_experiment_worker_init,
            initargs=(config, cache_dir),
        ) as pool:
            return list(pool.map(_render_experiment, ids))
    if context is None:
        if config is None:
            raise ConfigError("run_experiments needs a context or a config")
        from .cache import RunCache, simulate_cached
        from .reporting.context import AnalysisContext

        cache = RunCache(cache_dir) if cache_dir else None
        result, _ = simulate_cached(config, cache)
        context = AnalysisContext(result)
    rendered: list[tuple[str, str | None, str | None]] = []
    from .reporting.experiments import get_experiment

    for experiment_id in ids:
        try:
            rendered.append(
                (experiment_id, get_experiment(experiment_id).render(context), None)
            )
        except ReproError as error:
            rendered.append((experiment_id, None, str(error)))
    return rendered
