"""Process-parallel execution of embarrassingly parallel runs.

Three workloads in this repository are trivially parallel and worth
running that way once the engine itself is vectorized:

* multi-seed robustness/ablation sweeps (one process per seed),
* multi-seed CSV exports from the CLI, and
* rendering the report's independent experiments (one process pool whose
  workers share a single simulation via the run cache).

Everything here is deliberately small: a ``ProcessPoolExecutor`` wrapper
with a serial fast path (``jobs <= 1`` never spawns processes, so tests
and single-core environments behave exactly as before).  Work functions
must be picklable (module-level functions or :func:`functools.partial`
of them).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from .errors import ConfigError, ReproError

if TYPE_CHECKING:
    from .config import SimulationConfig


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 → all cores, n → n.

    Negative values are rejected; 1 means serial execution.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def map_seeds(
    fn: Callable[[int], Any],
    seeds: Sequence[int],
    jobs: int | None = 1,
) -> list[Any]:
    """Apply ``fn`` to every seed, optionally across processes.

    Args:
        fn: picklable callable taking one seed.
        seeds: seeds to map over (result order matches input order).
        jobs: worker processes; ``<= 1`` runs serially in-process,
            ``None``/``0`` uses every core.

    Returns:
        ``[fn(seed) for seed in seeds]`` — identical to the serial
        result regardless of ``jobs``, since each seed's work is
        deterministic and independent.
    """
    if not seeds:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seeds) == 1:
        return [fn(seed) for seed in seeds]
    with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
        return list(pool.map(fn, seeds))


def map_items(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int | None = 1,
) -> list[Any]:
    """Apply ``fn`` to every item, optionally across processes.

    The generic sibling of :func:`map_seeds` for non-seed workloads
    (the lint engine fans per-module analysis out through it).  Both
    ``fn`` and each item must be picklable; result order matches input
    order, so serial and parallel runs are indistinguishable to the
    caller as long as ``fn`` itself is deterministic.
    """
    if not items:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


class WorkerPool:
    """Bounded, lazily spawned worker pool for long-lived services.

    The serve layer dispatches cold query computations here so a burst
    of expensive simulations saturates exactly ``jobs`` processes while
    the event loop stays responsive.  Unlike :func:`map_seeds` — which
    owns a pool per call — this pool lives as long as its owner and is
    shut down explicitly (draining by default).

    Args:
        jobs: maximum concurrent workers; ``None``/``0`` means all
            cores.  Unlike :func:`map_seeds`, ``1`` still spawns one
            worker process — callers use the pool precisely to keep
            work off their own thread.
        use_threads: run work in threads instead of processes.  Thread
            workers share the caller's interpreter (monkeypatching and
            in-memory stores remain visible), which tests and
            fork-restricted platforms rely on; work functions no longer
            need to be picklable.
    """

    def __init__(self, jobs: int | None = None, use_threads: bool = False):
        self.jobs = resolve_jobs(jobs)
        self.use_threads = use_threads
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None

    @property
    def executor(self) -> ProcessPoolExecutor | ThreadPoolExecutor:
        """The underlying executor, created on first use."""
        if self._executor is None:
            if self.use_threads:
                self._executor = ThreadPoolExecutor(max_workers=self.jobs)
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Schedule ``fn(*args)`` on the pool (picklable for processes)."""
        return self.executor.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; with ``wait`` the call drains running work."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None


# ---------------------------------------------------------------------------
# Parallel experiment rendering.
#
# Experiments are scheduled over the pool at *stage* granularity: ids
# with identical declared stage signatures (see
# repro.reporting.experiments.Experiment.stages) form one work group, so
# a shared intermediate — say the all-faults rack-day table behind Figs
# 2-9/16 — is built once per group instead of once per experiment.  Each
# worker holds one report pipeline; with a shared artifact store the
# simulation itself is computed by whichever worker gets there first and
# disk-loaded by the rest.

_WORKER_PIPELINE: Any = None


def _pipeline_worker_init(config: "SimulationConfig", store_dir: str | None) -> None:
    global _WORKER_PIPELINE
    from .pipeline import ArtifactStore, build_report_pipeline

    store = ArtifactStore(store_dir) if store_dir else None
    _WORKER_PIPELINE = build_report_pipeline(config, store=store)


def _render_group(
    experiment_ids: Sequence[str],
) -> tuple[list[tuple[str, str | None, str | None]], list[dict]]:
    """Render one stage-signature group; returns triples + provenance."""
    from .pipeline import render_stage_name
    from .reporting.experiments import get_experiment

    pipeline = _WORKER_PIPELINE
    before = len(pipeline.executions)
    rendered: list[tuple[str, str | None, str | None]] = []
    for experiment_id in experiment_ids:
        try:
            get_experiment(experiment_id)  # registry error for unknown ids
            text = pipeline.get(render_stage_name(experiment_id))
            rendered.append((experiment_id, text, None))
        except ReproError as error:
            rendered.append((experiment_id, None, str(error)))
    executions = [e.to_json() for e in pipeline.executions[before:]]
    return rendered, executions


def _group_by_stages(ids: Sequence[str]) -> list[list[str]]:
    """Group ids by declared stage signature (unknown ids stay alone)."""
    from .reporting.experiments import EXPERIMENTS

    groups: dict[tuple, list[str]] = {}
    for experiment_id in ids:
        experiment = EXPERIMENTS.get(experiment_id)
        signature: tuple = (
            experiment.stages if experiment is not None
            else ("?unknown?", experiment_id)
        )
        groups.setdefault(signature, []).append(experiment_id)
    return list(groups.values())


def run_experiments(
    experiment_ids: Sequence[str],
    *,
    context: Any = None,
    config: "SimulationConfig | None" = None,
    jobs: int | None = 1,
    cache_dir: str | None = None,
    pipeline: Any = None,
    executions_sink: Callable[[list], None] | None = None,
) -> list[tuple[str, str | None, str | None]]:
    """Render experiments, in parallel when ``jobs > 1``.

    Args:
        experiment_ids: experiments to render, in output order.
        context: an existing :class:`~repro.reporting.context.AnalysisContext`
            (required for the serial path when no ``pipeline`` is given,
            optional otherwise).
        config: simulation config for worker processes to (re)obtain the
            run; required when ``jobs > 1``.
        jobs: worker processes; ``<= 1`` renders serially.
        cache_dir: artifact-store directory workers share; without it
            each worker re-simulates ``config`` once.
        pipeline: a :class:`~repro.pipeline.core.Pipeline` carrying the
            render stages; the serial path resolves render artifacts
            through it (provenance lands in ``pipeline.executions``)
            instead of rendering directly off the context.
        executions_sink: called with the list of
            :class:`~repro.pipeline.core.StageExecution` records
            produced by worker processes (parallel path only — the
            caller's own ``pipeline`` already accumulates serial ones).

    Returns:
        ``(experiment_id, rendered_text, error)`` triples in input
        order; exactly one of ``rendered_text``/``error`` is set per
        entry (``error`` carries a :class:`~repro.errors.ReproError`
        message for artifacts this run cannot support).
    """
    ids = list(experiment_ids)
    if not ids:
        return []
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(ids) > 1:
        if config is None:
            raise ConfigError("parallel run_experiments needs the simulation config")
        groups = _group_by_stages(ids)
        by_id: dict[str, tuple[str, str | None, str | None]] = {}
        worker_executions: list = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(groups)),
            initializer=_pipeline_worker_init,
            initargs=(config, cache_dir),
        ) as pool:
            for rendered, executions in pool.map(_render_group, groups):
                for triple in rendered:
                    by_id[triple[0]] = triple
                worker_executions.extend(executions)
        if executions_sink is not None and worker_executions:
            from .pipeline import execution_from_json

            executions_sink(
                [execution_from_json(e) for e in worker_executions]
            )
        return [by_id[experiment_id] for experiment_id in ids]
    if pipeline is None and context is None:
        if config is None:
            raise ConfigError("run_experiments needs a context or a config")
        from .pipeline import ArtifactStore, build_report_pipeline

        store = ArtifactStore(cache_dir) if cache_dir else None
        pipeline = build_report_pipeline(config, store=store)
    rendered_list: list[tuple[str, str | None, str | None]] = []
    from .reporting.experiments import get_experiment

    for experiment_id in ids:
        try:
            if pipeline is not None:
                from .pipeline import render_stage_name

                stage = render_stage_name(experiment_id)
                if pipeline.has_stage(stage):
                    rendered_list.append(
                        (experiment_id, pipeline.get(stage), None))
                    continue
            rendered_list.append(
                (experiment_id, get_experiment(experiment_id).render(context), None)
            )
        except ReproError as error:
            rendered_list.append((experiment_id, None, str(error)))
    return rendered_list
