"""Physical units and simulation-calendar helpers.

The paper reports temperatures in Fahrenheit (its MF model finds a 78 °F
split point), humidity in percent relative humidity, rack power in kW and
device age in months.  All internal models in this library use the same
units so that reproduced numbers can be compared to the paper directly.

The simulation calendar is deliberately simple: a run starts on a
configurable weekday and month and advances in whole days (with optional
hourly sub-steps).  The paper's temporal features (Table III) — day of
week, week of year, month, year — are all derivable from a day index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7
DAYS_PER_YEAR = 365
DAYS_PER_MONTH = 30.4375  # average Gregorian month length
MONTHS_PER_YEAR = 12

DAY_NAMES = ("Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat")
MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

# Cumulative day-of-year at which each month starts (non-leap year).
_MONTH_START_DOY = (0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334)


def fahrenheit_to_celsius(deg_f: float) -> float:
    """Convert a temperature from °F to °C."""
    return (deg_f - 32.0) * 5.0 / 9.0


def celsius_to_fahrenheit(deg_c: float) -> float:
    """Convert a temperature from °C to °F."""
    return deg_c * 9.0 / 5.0 + 32.0


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp interval: [{low}, {high}]")
    return max(low, min(high, value))


def months_between_days(start_day: int, end_day: int) -> float:
    """Elapsed months between two absolute day indices (fractional)."""
    return (end_day - start_day) / DAYS_PER_MONTH


@dataclass(frozen=True)
class CalendarDay:
    """Calendar attributes of one simulated day.

    Attributes:
        day_index: absolute day since the start of the simulation (0-based).
        day_of_week: 0=Sunday .. 6=Saturday, matching Fig 3's axis.
        week_of_year: 1..53, matching Table III's ``Week`` feature.
        month: 1..12 (Jan..Dec), matching Fig 4's axis.
        year: 0-based year since simulation start (Table III: ``Year 0-2``).
        day_of_year: 0..364 position within the current simulated year.
    """

    day_index: int
    day_of_week: int
    week_of_year: int
    month: int
    year: int
    day_of_year: int

    @property
    def day_name(self) -> str:
        """Short English weekday name (``Sun`` .. ``Sat``)."""
        return DAY_NAMES[self.day_of_week]

    @property
    def month_name(self) -> str:
        """Short English month name (``Jan`` .. ``Dec``)."""
        return MONTH_NAMES[self.month - 1]

    @property
    def is_weekend(self) -> bool:
        """True on Saturday and Sunday."""
        return self.day_of_week in (0, 6)


@dataclass(frozen=True)
class CalendarArrays:
    """Columnar calendar features over a contiguous run of days.

    Each attribute is an aligned array of length ``n_days``, matching the
    per-day fields of :class:`CalendarDay`.
    """

    day_index: np.ndarray
    day_of_week: np.ndarray
    month: np.ndarray
    year: np.ndarray
    day_of_year: np.ndarray
    is_weekend: np.ndarray

    @property
    def n_days(self) -> int:
        """Number of days covered."""
        return len(self.day_index)


class SimCalendar:
    """Maps absolute day indices to calendar features.

    Args:
        start_day_of_week: weekday of day 0 (0=Sunday .. 6=Saturday).
        start_day_of_year: day-of-year of day 0 (0=Jan 1 .. 364=Dec 31).

    The calendar ignores leap years; the paper's analyses bin by
    day-of-week and month, for which a fixed 365-day year is sufficient.
    """

    def __init__(self, start_day_of_week: int = 0, start_day_of_year: int = 0):
        if not 0 <= start_day_of_week < DAYS_PER_WEEK:
            raise ValueError(f"start_day_of_week out of range: {start_day_of_week}")
        if not 0 <= start_day_of_year < DAYS_PER_YEAR:
            raise ValueError(f"start_day_of_year out of range: {start_day_of_year}")
        self.start_day_of_week = start_day_of_week
        self.start_day_of_year = start_day_of_year

    def day(self, day_index: int) -> CalendarDay:
        """Return the :class:`CalendarDay` for an absolute day index."""
        if day_index < 0:
            raise ValueError(f"day_index must be >= 0, got {day_index}")
        absolute_doy = self.start_day_of_year + day_index
        year = absolute_doy // DAYS_PER_YEAR
        day_of_year = absolute_doy % DAYS_PER_YEAR
        month = self.month_of_day_of_year(day_of_year)
        day_of_week = (self.start_day_of_week + day_index) % DAYS_PER_WEEK
        week_of_year = day_of_year // DAYS_PER_WEEK + 1
        return CalendarDay(
            day_index=day_index,
            day_of_week=day_of_week,
            week_of_year=week_of_year,
            month=month,
            year=year,
            day_of_year=day_of_year,
        )

    def feature_arrays(self, n_days: int, start_day: int = 0) -> "CalendarArrays":
        """Vectorized calendar features for ``start_day .. start_day+n_days``.

        The batched analogue of calling :meth:`day` once per day; the
        vectorized failure engine consumes whole columns at a time.
        """
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        if start_day < 0:
            raise ValueError(f"start_day must be >= 0, got {start_day}")
        day_index = np.arange(start_day, start_day + n_days, dtype=np.int64)
        absolute_doy = self.start_day_of_year + day_index
        day_of_year = absolute_doy % DAYS_PER_YEAR
        day_of_week = (self.start_day_of_week + day_index) % DAYS_PER_WEEK
        month = np.searchsorted(
            np.asarray(_MONTH_START_DOY), day_of_year, side="right"
        ).astype(np.int64)
        return CalendarArrays(
            day_index=day_index,
            day_of_week=day_of_week,
            month=month,
            year=absolute_doy // DAYS_PER_YEAR,
            day_of_year=day_of_year,
            is_weekend=(day_of_week == 0) | (day_of_week == 6),
        )

    @staticmethod
    def month_of_day_of_year(day_of_year: int) -> int:
        """Return the 1-based month containing ``day_of_year`` (0..364)."""
        if not 0 <= day_of_year < DAYS_PER_YEAR:
            raise ValueError(f"day_of_year out of range: {day_of_year}")
        for month_index in range(MONTHS_PER_YEAR - 1, -1, -1):
            if day_of_year >= _MONTH_START_DOY[month_index]:
                return month_index + 1
        raise AssertionError("unreachable: day_of_year matched no month")
