"""The repo's architectural contract, as data the rules consume.

Everything here is *derived* from the domain modules at lint time —
the forbidden ground-truth attributes come from the hazard schema marks
(:mod:`repro.groundtruth`) and the telemetry key set from
:mod:`repro.telemetry.schema` — so extending the simulator extends the
lint without touching the checker.
"""

from __future__ import annotations

import functools

#: Packages on the operator-visible side of the field-data boundary.
#: They may consume simulator *outputs* (tickets, sensor streams,
#: inventory) but never the planted hazard model.
ANALYSIS_PACKAGES: frozenset[str] = frozenset(
    {"analysis", "autonomics", "decisions", "predict", "reporting", "stream",
     "telemetry"}
)

#: Packages whose dict keys for tickets/inventory must come from
#: ``telemetry.schema`` constants (the analysis side plus the field-data
#: ingestion/degradation layer, which round-trips the same artifacts).
SCHEMA_KEYED_PACKAGES: frozenset[str] = ANALYSIS_PACKAGES | {"fielddata"}

#: Modules holding the planted hazard model; the analysis side must not
#: import them (directly or via `import repro.failures.hazards as h`).
FORBIDDEN_GROUND_TRUTH_MODULES: tuple[str, ...] = (
    "repro.failures.hazards",
    "repro.failures.faultmodel",
)

#: The named-stream helper module exempt from RNG discipline.
RNG_HELPER_MODULES: frozenset[str] = frozenset({"repro.rng"})

#: Declared taint sanitizers for the interprocedural GT-taint rule
#: (``module:qualname`` node ids).  The simulation engine is the
#: paper's operator-visibility projection: planted hazard parameters
#: go in, and what comes out (tickets, sensor streams, inventory) *is*
#: the legitimate operator-visible dataset — so taint stops at its
#: return value.  Anything added here must be an intentional
#: ground-truth → observable boundary, not a convenience.
TAINT_BOUNDARY: frozenset[str] = frozenset({
    "repro.failures.engine:simulate",
    # The stepping session is the same projection, released
    # incrementally: each step's ticket chunk (and the running prefix /
    # final result) is operator-visible field data, so taint stops at
    # these return values exactly as it does at batch ``simulate``.
    "repro.failures.engine:SimulationSession.step",
    "repro.failures.engine:SimulationSession.tickets_so_far",
    "repro.failures.engine:SimulationSession.result",
})

#: Call refs whose result depends on when/where the process runs —
#: poison for content-addressed cache keys (fingerprint-purity rule).
NONDETERMINISTIC_CALLS: frozenset[str] = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.perf_counter",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "os.getenv",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "random.random",
    "random.randint",
    "random.choice",
    "random.shuffle",
})

#: Call refs that block the event loop when reached from an ``async
#: def`` without an executor hop (async-safety rule).
BLOCKING_CALLS: frozenset[str] = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "open",
})

#: Attribute-call names that hop work off the event loop; traversal of
#: the async-reachability closure stops at call sites passing through
#: these (their callable arguments run on an executor thread).
EXECUTOR_HOPS: frozenset[str] = frozenset({
    "run_in_executor",
    "to_thread",
})

#: Declared package layering, lowest first.  A module may import from
#: its own layer or below; importing *upward* is a ``layering`` finding
#: unless the (module, layer) pair is listed in
#: :data:`LAYERING_EXCEPTIONS`.  Top-level modules (``repro.cache``,
#: ``repro.cli``, …) sit outside the order and are exempt on both ends.
#:
#: Entries may be dotted to rank one module independently of its
#: package: ``stream.blocks`` (the columnar event core) sits *below*
#: the rest of ``stream`` so the estimators/analyzer consume it while
#: it stays importable from anywhere a flattened trace is useful.  A
#: module resolves to its most-specific dotted prefix in the order
#: (``repro.stream.blocks`` → ``stream.blocks``,
#: ``repro.stream.estimators`` → ``stream``); see :func:`resolve_layer`.
PACKAGE_LAYER_ORDER: tuple[str, ...] = (
    "datacenter",
    "environment",
    "failures",
    "telemetry",
    "analysis",
    "decisions",
    "reporting",
    "fielddata",
    "stream.blocks",
    "stream",
    "predict",
    "autonomics",
    "pipeline",
    "staticcheck",
    "serve",
)

#: Baselined upward imports: ``(importer module, imported package)``
#: pairs the layering rule accepts.  Each is a deliberate, documented
#: inversion — the experiment registry reaches up to the fielddata and
#: stream experiments it federates, and the sweep workers build
#: pipeline sub-DAGs — performed via function-level imports so module
#: import time stays layered.
LAYERING_EXCEPTIONS: frozenset[tuple[str, str]] = frozenset({
    ("repro.reporting.experiments", "fielddata"),
    ("repro.reporting.experiments", "stream"),
    ("repro.reporting.experiments", "predict"),
    ("repro.reporting.experiments", "autonomics"),
    ("repro.reporting.sweeps", "pipeline"),
    # airflow's feature marks come from telemetry.schema, a leaf
    # declarations module with no further repro imports.
    ("repro.environment.airflow", "telemetry"),
})


def layer_rank(package: str) -> int | None:
    """Position of a package in the layer order (None = unranked)."""
    try:
        return PACKAGE_LAYER_ORDER.index(package)
    except ValueError:
        return None


def resolve_layer(dotted: str) -> str | None:
    """Most-specific layer entry covering a dotted path under ``repro``.

    ``dotted`` omits the leading ``repro.``: ``"stream.estimators"``
    resolves to ``"stream"``, ``"stream.blocks"`` to itself, and paths
    with no covering entry (top-level modules) to ``None``.
    """
    best: str | None = None
    for entry in PACKAGE_LAYER_ORDER:
        if dotted == entry or dotted.startswith(entry + "."):
            if best is None or len(entry) > len(best):
                best = entry
    return best


@functools.lru_cache(maxsize=1)
def ground_truth_attributes() -> frozenset[str]:
    """Attribute names the analysis side must never read (generated)."""
    from ..groundtruth import ground_truth_attributes as generate

    return generate()


@functools.lru_cache(maxsize=1)
def telemetry_field_names() -> frozenset[str]:
    """Ticket/inventory field names that must be spelled via constants."""
    from ..telemetry.schema import telemetry_field_names as generate

    return generate()


def is_analysis_module(module_name: str) -> bool:
    """True for modules inside the analysis-side packages."""
    parts = module_name.split(".")
    return len(parts) > 2 and parts[1] in ANALYSIS_PACKAGES
