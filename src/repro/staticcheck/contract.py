"""The repo's architectural contract, as data the rules consume.

Everything here is *derived* from the domain modules at lint time —
the forbidden ground-truth attributes come from the hazard schema marks
(:mod:`repro.groundtruth`) and the telemetry key set from
:mod:`repro.telemetry.schema` — so extending the simulator extends the
lint without touching the checker.
"""

from __future__ import annotations

import functools

#: Packages on the operator-visible side of the field-data boundary.
#: They may consume simulator *outputs* (tickets, sensor streams,
#: inventory) but never the planted hazard model.
ANALYSIS_PACKAGES: frozenset[str] = frozenset(
    {"analysis", "decisions", "reporting", "stream", "telemetry"}
)

#: Packages whose dict keys for tickets/inventory must come from
#: ``telemetry.schema`` constants (the analysis side plus the field-data
#: ingestion/degradation layer, which round-trips the same artifacts).
SCHEMA_KEYED_PACKAGES: frozenset[str] = ANALYSIS_PACKAGES | {"fielddata"}

#: Modules holding the planted hazard model; the analysis side must not
#: import them (directly or via `import repro.failures.hazards as h`).
FORBIDDEN_GROUND_TRUTH_MODULES: tuple[str, ...] = (
    "repro.failures.hazards",
    "repro.failures.faultmodel",
)

#: The named-stream helper module exempt from RNG discipline.
RNG_HELPER_MODULES: frozenset[str] = frozenset({"repro.rng"})


@functools.lru_cache(maxsize=1)
def ground_truth_attributes() -> frozenset[str]:
    """Attribute names the analysis side must never read (generated)."""
    from ..groundtruth import ground_truth_attributes as generate

    return generate()


@functools.lru_cache(maxsize=1)
def telemetry_field_names() -> frozenset[str]:
    """Ticket/inventory field names that must be spelled via constants."""
    from ..telemetry.schema import telemetry_field_names as generate

    return generate()


def is_analysis_module(module_name: str) -> bool:
    """True for modules inside the analysis-side packages."""
    parts = module_name.split(".")
    return len(parts) > 2 and parts[1] in ANALYSIS_PACKAGES
