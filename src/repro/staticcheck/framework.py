"""Rule framework: module model, registry, suppressions, single-walk driver.

A :class:`ModuleInfo` is one parsed source file plus everything rules
need to reason about it: its dotted module name, its top-level package
within ``repro``, its resolved import bindings and per-line suppression
map.  Rules subclass :class:`Rule` and register with :func:`register`;
the driver parses each file once, walks its AST once, and dispatches
every node to the rules that declared interest in its type.
"""

from __future__ import annotations

import ast
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Iterator

from ..errors import DataError

#: Per-line suppression: ``# repro: noqa[RULE-ID]`` or ``[ID1,ID2]``.
NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s-]+)\]")

#: Whole-file suppression: ``# repro: noqa-file[RULE-ID]`` on any line.
NOQA_FILE_PATTERN = re.compile(r"#\s*repro:\s*noqa-file\[([A-Za-z0-9_,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # package-relative, e.g. "repro/telemetry/stats.py"
    line: int
    col: int
    message: str
    source_line: str = ""

    def location(self) -> str:
        """``path:line:col`` for human output."""
        return f"{self.path}:{self.line}:{self.col}"


class ModuleInfo:
    """One parsed module and the derived facts rules dispatch on.

    Attributes:
        name: dotted module name, e.g. ``repro.telemetry.stats``.
        package: first package segment under ``repro`` ("" for
            top-level modules like ``repro.cache``).
        path: on-disk location (may be synthetic for snippet linting).
        relpath: stable package-relative path used in findings and
            baseline fingerprints.
        tree: the parsed AST.
        lines: source split into lines (1-indexed via ``line(n)``).
        bindings: local name → dotted origin for imports, e.g.
            ``{"np": "numpy", "datetime": "datetime.datetime"}``.
        import_edges: ``(imported module, lineno)`` pairs with relative
            imports resolved against ``known_modules``.
    """

    def __init__(
        self,
        source: str,
        name: str,
        path: pathlib.Path,
        known_modules: frozenset[str],
    ):
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            raise DataError(f"{path}: cannot parse: {error}") from error
        self.source = source
        self.name = name
        parts = name.split(".")
        self.package = parts[1] if len(parts) > 2 else ""
        self.path = path
        self.relpath = name.replace(".", "/") + ".py"
        self.lines = source.splitlines()
        self.known_modules = known_modules
        self.suppressions, self.file_suppressions = _parse_suppressions(source)
        self.bindings = _import_bindings(self.tree)
        self.import_edges = _import_edges(self.tree, name, known_modules)

    def line(self, lineno: int) -> str:
        """Source text of 1-indexed ``lineno`` ("" out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of an expression, imports expanded.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        returns None for expressions that are not plain dotted names.
        """
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        origin = self.bindings.get(root)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a noqa comment covers this finding."""
        if finding.rule in self.file_suppressions or "*" in self.file_suppressions:
            return True
        rules = self.suppressions.get(finding.line, frozenset())
        return finding.rule in rules or "*" in rules


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and whole-file noqa pragmas from comments."""
    per_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        file_match = NOQA_FILE_PATTERN.search(text)
        if file_match:
            whole_file.update(_split_rule_ids(file_match.group(1)))
            continue
        match = NOQA_PATTERN.search(text)
        if match:
            per_line[lineno] = frozenset(_split_rule_ids(match.group(1)))
    return per_line, frozenset(whole_file)


def _split_rule_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_bindings(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin for every top-level import."""
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                bindings[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{node.module}.{alias.name}"
    return bindings


def _import_edges(
    tree: ast.Module, module_name: str, known_modules: frozenset[str],
) -> list[tuple[str, int]]:
    """Absolute ``(target module, lineno)`` for every import statement.

    ``from pkg import name`` resolves ``name`` to a submodule when one
    exists in ``known_modules`` and falls back to ``pkg`` otherwise;
    relative imports are resolved against ``module_name``.
    """
    edges: list[tuple[str, int]] = []
    package_parts = module_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # "from ..x import y": climb level-1 packages up.
                if node.level - 1 > len(package_parts):
                    continue  # beyond the package root; leave unresolved
                base_parts = package_parts[:len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                target = candidate if candidate in known_modules else base
                edges.append((target, node.lineno))
    return edges


class Rule:
    """One named invariant checked against every walked module.

    Subclasses set the class attributes, optionally narrow
    :meth:`applies_to`, and implement :meth:`check_module` (whole-file
    checks, e.g. over the import graph) and/or :meth:`check_node`
    together with :attr:`node_types` (per-node checks dispatched by the
    framework's single AST walk).
    """

    #: Stable rule identifier used in noqa comments and baselines.
    id: ClassVar[str] = ""
    #: One-line summary shown in reports.
    title: ClassVar[str] = ""
    #: Why the invariant matters (shown by ``repro lint --list-rules``).
    rationale: ClassVar[str] = ""
    #: AST node classes this rule wants to see (empty = module-only).
    node_types: ClassVar[tuple[type, ...]] = ()
    #: Semantic version of the rule implementation; part of the lint
    #: cache key, so bumping it re-analyzes every cached module.
    version: ClassVar[int] = 1

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether the rule runs on ``module`` at all."""
        return True

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Whole-module checks; default none."""
        return ()

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        """Per-node checks for nodes matching :attr:`node_types`."""
        return ()

    def finding(
        self, module: ModuleInfo, node: ast.AST | int, message: str,
    ) -> Finding:
        """Build a :class:`Finding` at an AST node (or bare lineno)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, node.col_offset
        return Finding(
            rule=self.id, path=module.relpath, line=line, col=col,
            message=message, source_line=module.line(line).strip(),
        )


#: Registry of rule classes by id, in registration order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise DataError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise DataError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    from . import rules  # noqa: F401  (importing registers the rule pack)

    return [cls() for cls in _REGISTRY.values()]


def get_rule(rule_id: str) -> Rule:
    """Instance of one registered rule by id."""
    from . import rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise DataError(
            f"unknown rule {rule_id!r}; have {sorted(_REGISTRY)}"
        ) from None


@dataclass
class WalkResult:
    """Findings from one driver pass, suppressions already applied."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_modules: int = 0


def check_modules(modules: list[ModuleInfo], rules: list[Rule]) -> WalkResult:
    """Run every rule over every module with one AST walk per module."""
    result = WalkResult(n_modules=len(modules))
    for module in modules:
        active = [rule for rule in rules if rule.applies_to(module)]
        if not active:
            continue
        raw: list[Finding] = []
        for rule in active:
            raw.extend(rule.check_module(module))
        node_rules = [rule for rule in active if rule.node_types]
        if node_rules:
            for node in ast.walk(module.tree):
                for rule in node_rules:
                    if isinstance(node, rule.node_types):
                        raw.extend(rule.check_node(node, module))
        for finding in raw:
            if module.is_suppressed(finding):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def read_source(path: pathlib.Path) -> str:
    """Read a Python file honouring its encoding declaration."""
    with tokenize.open(path) as handle:
        return handle.read()
