"""fingerprint-purity: cache-key compute must be deterministic.

The artifact pipeline is content-addressed: a
:class:`~repro.pipeline.core.Stage`'s ``run`` callable and everything
feeding its ``fingerprint_inputs`` must produce the same result for
the same key, or warm cache hits silently return stale/garbled
artifacts.  A ``time.time()`` three calls below a stage's run function
poisons the key just as surely as one inside it — and the per-module
``wallclock`` rule cannot see the call chain.

This rule collects every function bound as a Stage ``run=`` (keyword
or second positional) and every function called inside a
``fingerprint_inputs=`` expression, takes the call-graph closure, and
flags any reachable call to a nondeterministic source
(:data:`~repro.staticcheck.contract.NONDETERMINISTIC_CALLS`, unseeded
``default_rng()``, ``os.environ`` reads).  Injected clock/RNG ports
stay clean automatically: a port is stored on an object and called
through an attribute the resolver cannot pin to a def, so it produces
no edge and no sink.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from ..contract import NONDETERMINISTIC_CALLS
from ..framework import Finding
from ..wholeprogram.callgraph import CallGraph, Program, split_node
from ..wholeprogram.rulebase import WholeProgramRule, register_wholeprogram


@register_wholeprogram
class FingerprintPurityRule(WholeProgramRule):
    id: ClassVar[str] = "fingerprint-purity"
    title: ClassVar[str] = (
        "nondeterminism reachable from a content-addressed compute root"
    )
    rationale: ClassVar[str] = (
        "Stage run callables and fingerprint_inputs feeders key the "
        "artifact store; any reachable wall-clock read, unseeded RNG or "
        "environment lookup makes the cache key nondeterministic, so warm "
        "hits stop meaning 'same inputs, same artifact'."
    )
    version: ClassVar[int] = 1

    def check_program(self, program: Program,
                      graph: CallGraph) -> Iterable[Finding]:
        roots: dict[str, tuple[str, int]] = {}
        for module_name in sorted(program.modules):
            summary = program.modules[module_name]
            for ref, line in summary.stage_runs:
                node = graph.resolve_target(module_name, ref)
                if node is not None and node not in roots:
                    roots[node] = (module_name, line)
        if not roots:
            return
        parents = graph.reachable(roots)
        seen: set[tuple[str, int, str]] = set()
        for node in sorted(parents):
            fn = program.function(node)
            summary = program.module_of(node)
            if fn is None or summary is None:
                continue
            sinks: list[tuple[int, str]] = []
            for site in fn.calls:
                if site.raw in NONDETERMINISTIC_CALLS:
                    sinks.append((site.line, f"calls {site.raw}()"))
                elif site.unseeded_rng:
                    sinks.append(
                        (site.line, f"pulls OS entropy via {site.raw}()"))
            for what, line in fn.impure_reads:
                sinks.append((line, f"reads {what}"))
            for line, what in sinks:
                key = (node, line, what)
                if key in seen:
                    continue
                seen.add(key)
                chain = " -> ".join(
                    _fmt(hop) for hop in graph.chain(parents, node))
                root_module, root_line = roots[graph.chain(parents, node)[0]]
                yield self.finding(
                    summary, line,
                    f"{fn.qualname} {what}, but it is reachable from the "
                    f"content-addressed compute root bound at "
                    f"{root_module}:{root_line} (chain: {chain}); "
                    "inject a clock/RNG port instead",
                )


def _fmt(node: str) -> str:
    module, qualname = split_node(node)
    return f"{module}:{qualname}"
