"""GT-taint: laundered ground truth cannot reach the analysis side.

The per-module ``GT-leak`` rule catches an analysis module that reads a
planted attribute *directly*.  It cannot see the realistic failure
mode: a helper in a neutral package reads ``spec.stress_multiplier``,
returns it (possibly through another helper), and an ``analysis`` /
``predict`` function consumes the return value — the leak happened two
calls away from the package boundary.

This rule runs the interprocedural taint fixpoint
(:mod:`repro.staticcheck.wholeprogram.taint`) and flags every call
site *inside an analysis-side package* that consumes a
ground-truth-tainted return value, printing the full propagation chain
back to the planted read.  Taint stops at the declared
:data:`~repro.staticcheck.contract.TAINT_BOUNDARY` (the simulation is
the operator-visibility projection — its output is legitimate data).
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from ..contract import (
    FORBIDDEN_GROUND_TRUTH_MODULES,
    TAINT_BOUNDARY,
    is_analysis_module,
)
from ..framework import Finding
from ..wholeprogram.callgraph import CallGraph, Program
from ..wholeprogram.rulebase import WholeProgramRule, register_wholeprogram
from ..wholeprogram.taint import analyze_taint


@register_wholeprogram
class GtTaintRule(WholeProgramRule):
    id: ClassVar[str] = "GT-taint"
    title: ClassVar[str] = (
        "analysis side consumes a ground-truth-tainted value through calls"
    )
    rationale: ClassVar[str] = (
        "A helper that returns planted hazard data launders the GT-leak "
        "boundary: the analysis layer ends up computing on ground truth it "
        "never syntactically touched, making the recovered structure "
        "circular.  Taint is tracked through returns, arguments and "
        "attribute stores across all modules."
    )
    version: ClassVar[int] = 1

    def check_program(self, program: Program,
                      graph: CallGraph) -> Iterable[Finding]:
        taint = analyze_taint(
            program,
            source_modules=FORBIDDEN_GROUND_TRUTH_MODULES,
            boundary=TAINT_BOUNDARY,
        )
        seen: set[tuple[str, str]] = set()
        for node, summary, fn in program.iter_functions():
            if not is_analysis_module(summary.module):
                continue
            for index, site in enumerate(fn.calls):
                why = taint.call_taint(node, fn, index)
                if why is None:
                    continue
                callee = taint.callees.get((node, index), site.raw)
                if (node, callee) in seen:
                    continue
                seen.add((node, callee))
                chain = " <- ".join(taint.chain(why))
                yield self.finding(
                    summary, site.line,
                    f"{fn.qualname} consumes a ground-truth-tainted "
                    f"return value; taint chain: {chain}",
                )
