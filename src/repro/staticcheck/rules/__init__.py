"""The shipped rule pack.

Importing this package registers every rule with the framework
registry; ``framework.all_rules()`` does so lazily.  Rule catalogue and
suppression workflow: ``docs/static_analysis.md``.
"""

from .float_eq import FloatEqRule
from .gt_leak import GtLeakRule
from .layering import LayeringRule
from .rng_discipline import RngDisciplineRule
from .schema_fields import SchemaFieldsRule
from .wallclock import WallclockRule

__all__ = [
    "FloatEqRule",
    "GtLeakRule",
    "LayeringRule",
    "RngDisciplineRule",
    "SchemaFieldsRule",
    "WallclockRule",
]
