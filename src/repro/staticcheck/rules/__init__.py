"""The shipped rule pack.

Importing this package registers every rule with the framework
registry; ``framework.all_rules()`` does so lazily.  Rule catalogue and
suppression workflow: ``docs/static_analysis.md``.
"""

from .async_safety import AsyncSafetyRule, SharedMutableStateRule
from .fingerprint_purity import FingerprintPurityRule
from .float_eq import FloatEqRule
from .gt_leak import GtLeakRule
from .gt_taint import GtTaintRule
from .layering import LayeringRule
from .rng_discipline import RngDisciplineRule
from .schema_fields import SchemaFieldsRule
from .wallclock import WallclockRule

__all__ = [
    "AsyncSafetyRule",
    "FingerprintPurityRule",
    "FloatEqRule",
    "GtLeakRule",
    "GtTaintRule",
    "LayeringRule",
    "RngDisciplineRule",
    "SchemaFieldsRule",
    "SharedMutableStateRule",
    "WallclockRule",
]
