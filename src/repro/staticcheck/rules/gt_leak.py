"""GT-leak: the analysis layer must not touch planted ground truth.

The paper's "MF beats SF" result is only meaningful if the analysis
side (CART, partial dependence, the Q1–Q3 decisions, reporting,
streaming, telemetry) works from operator-visible data alone.  This
rule forbids, inside those packages:

* importing the hazard model modules (``failures.hazards``,
  ``failures.faultmodel``) — checked over the resolved import graph, so
  relative imports and ``from repro.failures import hazards`` spellings
  are all caught;
* reading any planted-hazard attribute (``arrays.sku_intrinsic``,
  ``spec.stress_multiplier``, ...) — the forbidden-name set is
  generated from the hazard schema marks in :mod:`repro.groundtruth`,
  including ``getattr(x, "name")`` spellings.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..contract import (
    FORBIDDEN_GROUND_TRUTH_MODULES,
    is_analysis_module,
    ground_truth_attributes,
)
from ..framework import Finding, ModuleInfo, Rule, register


@register
class GtLeakRule(Rule):
    id: ClassVar[str] = "GT-leak"
    title: ClassVar[str] = "analysis side reads planted hazard ground truth"
    rationale: ClassVar[str] = (
        "The analysis layer must recover the planted hazard structure from "
        "operator-visible telemetry; reading it directly makes the paper's "
        "headline comparison circular."
    )
    node_types: ClassVar[tuple[type, ...]] = (ast.Attribute, ast.Call)

    def applies_to(self, module: ModuleInfo) -> bool:
        return is_analysis_module(module.name)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for target, lineno in module.import_edges:
            for forbidden in FORBIDDEN_GROUND_TRUTH_MODULES:
                if target == forbidden or target.startswith(forbidden + "."):
                    yield self.finding(
                        module, lineno,
                        f"imports the hazard ground truth module {forbidden!r}",
                    )

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        forbidden = ground_truth_attributes()
        if isinstance(node, ast.Attribute) and node.attr in forbidden:
            yield self.finding(
                module, node,
                f"reads planted ground-truth attribute {node.attr!r}",
            )
        elif isinstance(node, ast.Call):
            # getattr(x, "sku_intrinsic") is the same read, spelled late.
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and node.args[1].value in forbidden
            ):
                yield self.finding(
                    module, node,
                    "reads planted ground-truth attribute "
                    f"{node.args[1].value!r} via getattr",
                )
