"""schema-fields: telemetry dict keys come from schema constants.

Ticket and inventory artifacts round-trip through several layers
(export, ingestion, corruption, streaming, checkpointing); a typo'd
string key fails silently as a miss, not loudly as an error.  Inside
the consumer packages, any string-literal dict subscript or dict-literal
key that *names a declared ticket/inventory field* must be spelled via
the :mod:`repro.telemetry.schema` constants (``TICKET_LOG``,
``TICKET_CSV``, ``INVENTORY_CSV``) instead.  The key set is generated
from those declarations at lint time.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..contract import SCHEMA_KEYED_PACKAGES, telemetry_field_names
from ..framework import Finding, ModuleInfo, Rule, register

#: The module that declares the constants (and so may spell them out).
_DECLARING_MODULE = "repro.telemetry.schema"


@register
class SchemaFieldsRule(Rule):
    id: ClassVar[str] = "schema-fields"
    title: ClassVar[str] = "string-literal telemetry field key"
    rationale: ClassVar[str] = (
        "Ticket/inventory keys must come from telemetry.schema constants "
        "(TICKET_LOG / TICKET_CSV / INVENTORY_CSV) so typos fail at "
        "import time, not as silent data mismatches."
    )
    node_types: ClassVar[tuple[type, ...]] = (ast.Subscript, ast.Dict)

    def applies_to(self, module: ModuleInfo) -> bool:
        parts = module.name.split(".")
        return (
            module.name != _DECLARING_MODULE
            and len(parts) > 2
            and parts[1] in SCHEMA_KEYED_PACKAGES
        )

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        fields = telemetry_field_names()
        if isinstance(node, ast.Subscript):
            key = node.slice
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and key.value in fields):
                yield self.finding(
                    module, key,
                    f"string-literal field key {key.value!r}; use the "
                    "telemetry.schema constant",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                        and key.value in fields):
                    yield self.finding(
                        module, key,
                        f"string-literal field key {key.value!r}; use the "
                        "telemetry.schema constant",
                    )
