"""wallclock: simulation and analysis never read the machine's clock.

A replayed run must produce byte-identical artifacts years later, and
cached/checkpointed state must not embed "now".  Clocks therefore enter
as injected callables (see :class:`repro.cache.RunCache`'s ``clock``
parameter) — referencing ``time.time`` as a default argument is fine,
*calling* it inline is not.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..framework import Finding, ModuleInfo, Rule, register

#: Resolved dotted callables that read the wall clock.
_FORBIDDEN_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register
class WallclockRule(Rule):
    id: ClassVar[str] = "wallclock"
    title: ClassVar[str] = "wall-clock read in a replayable path"
    rationale: ClassVar[str] = (
        "Runs, caches and checkpoints must replay bit-identically; "
        "inject a clock callable (defaulting to time.time) instead of "
        "calling the clock inline."
    )
    node_types: ClassVar[tuple[type, ...]] = (ast.Call,)

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        full = module.resolve(node.func)
        if full in _FORBIDDEN_CALLS:
            yield self.finding(
                module, node,
                f"wall-clock call {full}(); inject a clock callable so the "
                "path stays replayable",
            )
