"""float-eq: no ``==``/``!=`` between float expressions in analysis code.

Rate estimates, thresholds and availability levels are all floats that
pass through arithmetic; exact equality against them is almost always a
latent bug (the 78 °F split works because the tree compares with ``<=``).
The rule is deliberately heuristic — it flags comparisons where either
side is *syntactically* float-valued (a float literal, a ``float(...)``
call, or arithmetic over one); deliberate sentinel comparisons carry a
``# repro: noqa[float-eq]`` with their rationale.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..contract import is_analysis_module
from ..framework import Finding, ModuleInfo, Rule, register


def _is_floatish(node: ast.AST, depth: int = 3) -> bool:
    """Syntactically float-valued: literal, float() call, or arithmetic
    over one (bounded recursion)."""
    if depth <= 0:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, depth - 1)
    if isinstance(node, ast.BinOp):
        return (_is_floatish(node.left, depth - 1)
                or _is_floatish(node.right, depth - 1))
    return False


@register
class FloatEqRule(Rule):
    id: ClassVar[str] = "float-eq"
    title: ClassVar[str] = "exact float equality in analysis code"
    rationale: ClassVar[str] = (
        "Float expressions that went through arithmetic rarely compare "
        "exactly equal; use an ordered comparison, math.isclose, or "
        "suppress with a rationale when the value is an exact sentinel."
    )
    node_types: ClassVar[tuple[type, ...]] = (ast.Compare,)

    def applies_to(self, module: ModuleInfo) -> bool:
        return is_analysis_module(module.name)

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_floatish(operand) for operand in operands):
            yield self.finding(
                module, node,
                "float equality comparison; use an ordered comparison or "
                "an explicit tolerance",
            )
