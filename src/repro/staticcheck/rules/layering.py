"""layering: package imports must respect the declared layer order.

The repo's packages form a strict stack (see
:data:`repro.staticcheck.contract.PACKAGE_LAYER_ORDER`): simulation
substrate at the bottom, analysis above it, drivers (reporting,
fielddata, stream, pipeline) on top.  An import that reaches *upward*
couples a lower layer to its consumers — the kind of cycle-in-waiting
that previously hid behind ad-hoc "imported lazily" comments.  This
rule checks every resolved import edge (including function-level
imports) against the order; the deliberate inversions live in one
explicit, reviewable exception list
(:data:`repro.staticcheck.contract.LAYERING_EXCEPTIONS`) instead of
scattered comments.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from ..contract import LAYERING_EXCEPTIONS, layer_rank, resolve_layer
from ..framework import Finding, ModuleInfo, Rule, register


def _module_layer(name: str) -> str | None:
    """Layer entry covering a checked module's dotted name, or None.

    Resolution is most-specific-prefix (see
    :func:`repro.staticcheck.contract.resolve_layer`), so a dotted
    entry like ``stream.blocks`` ranks that module independently of the
    rest of its package.
    """
    parts = name.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return resolve_layer(".".join(parts[1:]))


def _imported_layer(target: str) -> str | None:
    """Layer entry covering an imported module, or None.

    Imports of a bare package (``repro.stream``) stay exempt — only
    module-level targets (``repro.stream.blocks``) are ranked — as do
    top-level modules (``repro.cache``).
    """
    parts = target.split(".")
    if parts[0] != "repro" or len(parts) < 3:
        return None
    return resolve_layer(".".join(parts[1:]))


@register
class LayeringRule(Rule):
    id: ClassVar[str] = "layering"
    title: ClassVar[str] = "import reaches upward through the package layers"
    rationale: ClassVar[str] = (
        "Packages form a declared stack (substrate → analysis → drivers); "
        "upward imports create hidden cycles and make lower layers "
        "untestable in isolation.  Deliberate inversions belong in "
        "staticcheck.contract.LAYERING_EXCEPTIONS, not in lazy-import "
        "comments."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        # Top-level modules (cache, cli, parallel, …) orchestrate across
        # layers by design and sit outside the order.
        return _module_layer(module.name) is not None

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        own_layer = _module_layer(module.name)
        own_rank = layer_rank(own_layer)
        for target, lineno in module.import_edges:
            layer = _imported_layer(target)
            if layer is None or layer == own_layer:
                continue
            target_rank = layer_rank(layer)
            if target_rank is None or target_rank <= own_rank:
                continue
            if (module.name, layer) in LAYERING_EXCEPTIONS:
                continue
            yield self.finding(
                module, lineno,
                f"imports {target!r} ({layer!r}, layer {target_rank}) from "
                f"the lower {own_layer!r} layer ({own_rank}); add the "
                "pair to LAYERING_EXCEPTIONS if the inversion is deliberate",
            )
