"""layering: package imports must respect the declared layer order.

The repo's packages form a strict stack (see
:data:`repro.staticcheck.contract.PACKAGE_LAYER_ORDER`): simulation
substrate at the bottom, analysis above it, drivers (reporting,
fielddata, stream, pipeline) on top.  An import that reaches *upward*
couples a lower layer to its consumers — the kind of cycle-in-waiting
that previously hid behind ad-hoc "imported lazily" comments.  This
rule checks every resolved import edge (including function-level
imports) against the order; the deliberate inversions live in one
explicit, reviewable exception list
(:data:`repro.staticcheck.contract.LAYERING_EXCEPTIONS`) instead of
scattered comments.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from ..contract import LAYERING_EXCEPTIONS, layer_rank
from ..framework import Finding, ModuleInfo, Rule, register


def _imported_package(target: str) -> str | None:
    """First package segment of an imported ``repro`` module, or None."""
    parts = target.split(".")
    if parts[0] != "repro" or len(parts) < 3:
        return None
    return parts[1]


@register
class LayeringRule(Rule):
    id: ClassVar[str] = "layering"
    title: ClassVar[str] = "import reaches upward through the package layers"
    rationale: ClassVar[str] = (
        "Packages form a declared stack (substrate → analysis → drivers); "
        "upward imports create hidden cycles and make lower layers "
        "untestable in isolation.  Deliberate inversions belong in "
        "staticcheck.contract.LAYERING_EXCEPTIONS, not in lazy-import "
        "comments."
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        # Top-level modules (cache, cli, parallel, …) orchestrate across
        # layers by design and sit outside the order.
        return layer_rank(module.package) is not None

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        own_rank = layer_rank(module.package)
        for target, lineno in module.import_edges:
            package = _imported_package(target)
            if package is None or package == module.package:
                continue
            target_rank = layer_rank(package)
            if target_rank is None or target_rank <= own_rank:
                continue
            if (module.name, package) in LAYERING_EXCEPTIONS:
                continue
            yield self.finding(
                module, lineno,
                f"imports {target!r} ({package!r}, layer {target_rank}) from "
                f"the lower {module.package!r} layer ({own_rank}); add the "
                "pair to LAYERING_EXCEPTIONS if the inversion is deliberate",
            )
