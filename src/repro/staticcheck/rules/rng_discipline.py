"""RNG-discipline: all randomness flows through named streams.

Determinism is carried by :class:`repro.rng.RngRegistry`'s named
streams: equal configs give bit-identical runs, and adding a consumer
never perturbs existing draws.  A single ``np.random.shuffle`` or
module-global generator silently breaks both properties, so outside
the helper module this rule forbids:

* any call into the legacy global numpy RNG (``np.random.rand``,
  ``np.random.seed``, ...);
* ``default_rng()`` with no seed argument (nondeterministic entropy);
* stdlib ``random`` module functions;
* binding a generator at module scope (generators must be parameters).

``np.random.default_rng(seed)`` with an explicit seed inside a
function is allowed — it is how named streams and test fixtures are
built — and ``np.random.Generator`` remains usable in annotations.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..contract import RNG_HELPER_MODULES
from ..framework import Finding, ModuleInfo, Rule, register

#: Attributes of numpy.random that are fine to reference anywhere.
_ALLOWED_NUMPY_RANDOM = frozenset({"Generator", "BitGenerator", "SeedSequence", "PCG64"})


@register
class RngDisciplineRule(Rule):
    id: ClassVar[str] = "RNG-discipline"
    title: ClassVar[str] = "randomness outside the named-stream helpers"
    rationale: ClassVar[str] = (
        "Runs must be bit-reproducible from (config, seed); global or "
        "unseeded RNGs make draws depend on import order and entropy. "
        "Take a Generator parameter or ask RngRegistry for a named stream."
    )
    node_types: ClassVar[tuple[type, ...]] = (ast.Call, ast.Assign)

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.name not in RNG_HELPER_MODULES

    def check_node(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(node, module)
        elif isinstance(node, ast.Assign):
            yield from self._check_module_global(node, module)

    def _check_call(self, node: ast.Call, module: ModuleInfo) -> Iterable[Finding]:
        full = module.resolve(node.func)
        if full is None:
            return
        if full.startswith("numpy.random."):
            leaf = full.removeprefix("numpy.random.")
            if leaf == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "unseeded default_rng(): draws depend on OS entropy; "
                        "pass an explicit seed or use a named stream",
                    )
            elif leaf not in _ALLOWED_NUMPY_RANDOM:
                yield self.finding(
                    module, node,
                    f"call into the global numpy RNG ({full}); use a "
                    "Generator parameter or RngRegistry stream",
                )
        elif full.startswith("random."):
            root_origin = module.bindings.get(full.split(".")[0])
            if root_origin == "random" or full.split(".")[0] == "random":
                yield self.finding(
                    module, node,
                    f"stdlib random call ({full}); use a numpy Generator "
                    "from a named stream",
                )
        else:
            # "from random import shuffle" binds the bare name.
            origin = module.bindings.get(full.split(".")[0], "")
            if origin.startswith("random."):
                yield self.finding(
                    module, node,
                    f"stdlib random call ({origin}); use a numpy Generator "
                    "from a named stream",
                )
            elif origin == "numpy.random.default_rng" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    module, node,
                    "unseeded default_rng(): draws depend on OS entropy; "
                    "pass an explicit seed or use a named stream",
                )

    def _check_module_global(
        self, node: ast.Assign, module: ModuleInfo,
    ) -> Iterable[Finding]:
        # Only flag assignments at module scope (direct children of the
        # Module body), where a shared generator would leak state across
        # every caller.
        if node not in module.tree.body:
            return
        value = node.value
        if not isinstance(value, ast.Call):
            return
        full = module.resolve(value.func) or ""
        if full.endswith("default_rng") or full == "numpy.random.Generator":
            yield self.finding(
                module, node,
                "module-global Generator: generators must be parameters "
                "(or RngRegistry streams), not shared module state",
            )
