"""async-safety: the serve event loop must never block or share state.

Two whole-program rules guard the async query service:

* :class:`AsyncSafetyRule` — takes the call-graph closure of every
  ``async def`` body and flags reachable *blocking* calls:
  ``time.sleep``, sync ``subprocess``/``socket``/``open``, and bare
  zero-argument ``.result()`` on a pool future (which parks the loop
  until a worker finishes).  Work handed to
  ``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)`` is clean
  by construction: the callable is passed as a *reference*, so the
  resolver records no call edge and the closure never enters it.

* :class:`SharedMutableStateRule` — computes the functions reachable
  from the asyncio side and the functions reachable from
  ``repro.parallel`` worker entry points (``map_seeds``/``map_items``
  callables, ``pool.submit``/``pool.map`` targets, executor
  ``initializer=``, ``run_in_executor`` callables), and flags any
  function in *both* closures that writes module-global mutable state
  — a ``global`` rebinding or an in-place mutation of a module-level
  container.  Such writes are racy across the loop/worker boundary and
  invisible to per-module linting.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from ..contract import BLOCKING_CALLS, EXECUTOR_HOPS
from ..framework import Finding
from ..wholeprogram.callgraph import CallGraph, Program, split_node
from ..wholeprogram.rulebase import WholeProgramRule, register_wholeprogram
from ..wholeprogram.summaries import WRITE_GLOBAL, WRITE_MUTATE

#: Attribute-call names treated as worker dispatch: their callable
#: arguments run on pool workers, not in the calling context.
_POOL_DISPATCH = frozenset({"submit", "map"})

#: repro.parallel entry points whose first callable argument fans out
#: to worker processes.
_PARALLEL_ENTRY_SUFFIXES = ("map_seeds", "map_items")


def _fmt(node: str) -> str:
    module, qualname = split_node(node)
    return f"{module}:{qualname}"


def _async_roots(program: Program) -> list[str]:
    return [node for node, _summary, fn in program.iter_functions()
            if fn.is_async]


def _worker_roots(program: Program, graph: CallGraph) -> dict[str, str]:
    """Worker entry nodes -> description of the dispatch site."""
    roots: dict[str, str] = {}

    def note(module: str, ref: str, line: int, how: str) -> None:
        node = graph.resolve_target(module, ref)
        if node is not None and node not in roots:
            roots[node] = f"{how} at {module}:{line}"

    for _node, summary, fn in program.iter_functions():
        for site in fn.calls:
            base = site.raw.split(".")[-1] if site.raw else ""
            is_parallel_entry = base in _PARALLEL_ENTRY_SUFFIXES or any(
                site.raw.endswith("." + s) for s in _PARALLEL_ENTRY_SUFFIXES)
            if is_parallel_entry:
                for _slot, ref in site.callable_args:
                    note(summary.module, ref, site.line,
                         "fanned out via repro.parallel")
            elif site.attr in _POOL_DISPATCH and site.raw.count(".") >= 1:
                for slot, ref in site.callable_args:
                    if slot == 0 or slot == "fn":
                        note(summary.module, ref, site.line,
                             f"dispatched via .{site.attr}()")
            elif site.attr in EXECUTOR_HOPS:
                for _slot, ref in site.callable_args:
                    note(summary.module, ref, site.line,
                         f"hopped via .{site.attr}()")
            for slot, ref in site.callable_args:
                if slot == "initializer":
                    note(summary.module, ref, site.line,
                         "installed as pool initializer")
    return roots


@register_wholeprogram
class AsyncSafetyRule(WholeProgramRule):
    id: ClassVar[str] = "async-safety"
    title: ClassVar[str] = "blocking call reachable from an async handler"
    rationale: ClassVar[str] = (
        "A blocking call under an async def stalls every in-flight "
        "request on the event loop; slow work must hop through "
        "run_in_executor/to_thread so the loop keeps serving."
    )
    version: ClassVar[int] = 1

    def check_program(self, program: Program,
                      graph: CallGraph) -> Iterable[Finding]:
        roots = _async_roots(program)
        if not roots:
            return
        parents = graph.reachable(roots)
        seen: set[tuple[str, int, str]] = set()
        for node in sorted(parents):
            fn = program.function(node)
            summary = program.module_of(node)
            if fn is None or summary is None:
                continue
            for index, site in enumerate(fn.calls):
                what: str | None = None
                if site.raw in BLOCKING_CALLS:
                    what = f"calls blocking {site.raw}()"
                elif (site.attr == "result" and site.nargs == 0
                      and graph.program.resolve_call(
                          summary.module, site.raw, fn) is None
                      and site.raw not in ("", "self")):
                    what = ("waits on a pool future with bare .result() "
                            "(no timeout, parks the loop)")
                if what is None:
                    continue
                key = (node, site.line, what)
                if key in seen:
                    continue
                seen.add(key)
                chain = " -> ".join(
                    _fmt(hop) for hop in graph.chain(parents, node))
                yield self.finding(
                    summary, site.line,
                    f"{fn.qualname} {what}, reachable from an async "
                    f"handler without an executor hop (chain: {chain})",
                )


@register_wholeprogram
class SharedMutableStateRule(WholeProgramRule):
    id: ClassVar[str] = "shared-mutable-state"
    title: ClassVar[str] = (
        "module state written by code shared between loop and workers"
    )
    rationale: ClassVar[str] = (
        "A module-global written by code reachable from both the asyncio "
        "loop and repro.parallel workers is either racy (threads) or "
        "silently divergent (processes); pass state explicitly or keep it "
        "on one side of the boundary."
    )
    version: ClassVar[int] = 1

    def check_program(self, program: Program,
                      graph: CallGraph) -> Iterable[Finding]:
        async_nodes = _async_roots(program)
        worker_roots = _worker_roots(program, graph)
        if not async_nodes or not worker_roots:
            return
        async_reach = graph.reachable(async_nodes)
        worker_reach = graph.reachable(worker_roots)
        shared = set(async_reach) & set(worker_reach)
        seen: set[tuple[str, str, int]] = set()
        for node in sorted(shared):
            fn = program.function(node)
            summary = program.module_of(node)
            if fn is None or summary is None:
                continue
            for name, line, kind in fn.global_writes:
                if kind == WRITE_MUTATE and name not in summary.mutable_globals:
                    continue  # a late-assigned local, not module state
                if kind not in (WRITE_GLOBAL, WRITE_MUTATE):
                    continue
                key = (node, name, line)
                if key in seen:
                    continue
                seen.add(key)
                worker_root = graph.chain(worker_reach, node)[0]
                yield self.finding(
                    summary, line,
                    f"{fn.qualname} writes module global {name!r} but is "
                    "reachable from both the asyncio loop (chain: "
                    + " -> ".join(_fmt(h)
                                  for h in graph.chain(async_reach, node))
                    + f") and pool workers ({worker_roots[worker_root]})",
                )
