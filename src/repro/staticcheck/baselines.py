"""Committed baseline of grandfathered findings.

A baseline entry pins one *known and accepted* finding so ``repro
lint`` stays green while the debt is visible and reviewed.  Entries
match by fingerprint — a hash of (file, rule, normalized source line,
occurrence index) — so findings keep matching when unrelated edits move
line numbers, and stop matching (forcing a re-review) the moment the
offending line itself changes.

The shipped baseline lives at ``src/repro/staticcheck/baseline.json``
(package data, so the default is found no matter the working
directory); regenerate it with ``repro lint --write-baseline`` after
consciously accepting new findings, and keep each entry's ``rationale``
honest — it is the review record.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from ..errors import DataError
from .framework import Finding

BASELINE_SCHEMA = 1

#: The committed, package-shipped baseline used by default.
DEFAULT_BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baseline.json"


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable id of a finding, robust to pure line-number drift."""
    normalized = " ".join(finding.source_line.split())
    payload = f"{finding.path}|{finding.rule}|{normalized}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: list[Finding]) -> dict[str, Finding]:
    """Fingerprint → finding, disambiguating identical lines by order."""
    out: dict[str, Finding] = {}
    seen: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (finding.path, finding.rule, " ".join(finding.source_line.split()))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out[fingerprint(finding, occurrence)] = finding
    return out


@dataclass(frozen=True)
class Baseline:
    """Accepted findings: fingerprint → rationale."""

    entries: dict[str, dict] = field(default_factory=dict)
    path: pathlib.Path | None = None

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def rationale(self, fp: str) -> str:
        """The recorded acceptance rationale for one entry."""
        return self.entries.get(fp, {}).get("rationale", "")


def load_baseline(path: str | pathlib.Path | None = None) -> Baseline:
    """Load a baseline file (the shipped default when ``path`` is None).

    A missing default baseline is an empty baseline; a missing explicit
    path is an error.
    """
    explicit = path is not None
    path = pathlib.Path(path) if explicit else DEFAULT_BASELINE_PATH
    if not path.exists():
        if explicit:
            raise DataError(f"no such baseline file: {path}")
        return Baseline(path=path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise DataError(f"baseline {path} is corrupt: {error}") from error
    if payload.get("schema") != BASELINE_SCHEMA:
        raise DataError(
            f"baseline {path}: schema {payload.get('schema')!r} != {BASELINE_SCHEMA}"
        )
    entries: dict[str, dict] = {}
    for entry in payload.get("entries", []):
        fp = entry.get("fingerprint")
        if not fp:
            raise DataError(f"baseline {path}: entry without fingerprint: {entry}")
        entries[fp] = entry
    return Baseline(entries=entries, path=path)


def write_baseline(
    path: str | pathlib.Path,
    findings: list[Finding],
    previous: Baseline | None = None,
    rationale: str | None = None,
) -> pathlib.Path:
    """Write ``findings`` as the new baseline, keeping old rationales.

    Entries carried over from ``previous`` keep their recorded
    rationale.  Entries NEW to this baseline require ``rationale`` — a
    real justification the author supplies (``repro lint
    --write-baseline --rationale "..."``); refusing to invent one keeps
    placeholder text from being committed as documentation.

    Raises:
        DataError: a finding absent from ``previous`` was passed
            without ``rationale``.
    """
    path = pathlib.Path(path)
    fingerprinted = fingerprint_findings(findings)
    entries = []
    for fp, finding in sorted(
        fingerprinted.items(), key=lambda kv: (kv[1].path, kv[1].line, kv[0]),
    ):
        kept = previous.rationale(fp) if previous else ""
        if not kept and not rationale:
            raise DataError(
                f"baseline entry {finding.path}:{finding.line} "
                f"({finding.rule}) is new and no rationale was given; "
                "pass --rationale explaining why it is grandfathered"
            )
        entries.append({
            "fingerprint": fp,
            "rule": finding.rule,
            "file": finding.path,
            "line": finding.line,
            "message": finding.message,
            "source_line": finding.source_line,
            "rationale": kept or rationale,
        })
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def partition(
    findings: list[Finding], baseline: Baseline,
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined)."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for fp, finding in fingerprint_findings(findings).items():
        (grandfathered if fp in baseline else new).append(finding)
    key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
    return sorted(new, key=key), sorted(grandfathered, key=key)
