"""Committed baseline of grandfathered findings.

A baseline entry pins one *known and accepted* finding so ``repro
lint`` stays green while the debt is visible and reviewed.  Entries
match by fingerprint — schema 2 hashes ``(dotted module, rule id,
comment-stripped normalized snippet, occurrence index)`` — so findings
keep matching when unrelated edits move line numbers or reshuffle
comments, and stop matching (forcing a re-review) the moment the
offending code itself changes.

The shipped baseline lives at ``src/repro/staticcheck/baseline.json``
(package data, so the default is found no matter the working
directory); regenerate it with ``repro lint --write-baseline`` after
consciously accepting new findings, and keep each entry's ``rationale``
honest — it is the review record.  Schema-1 files (which hashed the
package-relative path and the raw line text) are migrated in place by
``repro lint --migrate-baseline``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from ..errors import DataError
from .framework import Finding

BASELINE_SCHEMA = 2

#: The committed, package-shipped baseline used by default.
DEFAULT_BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baseline.json"


def _module_of(relpath: str) -> str:
    """Dotted module name for a package-relative finding path."""
    return relpath.removesuffix(".py").replace("/", ".")


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, respecting string literals.

    A single-line scanner is enough for fingerprints: track quote state
    (including backslash escapes) and cut at the first unquoted ``#``.
    """
    quote: str | None = None
    escaped = False
    for index, char in enumerate(line):
        if escaped:
            escaped = False
            continue
        if char == "\\":
            escaped = True
        elif quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#":
            return line[:index]
    return line


def normalized_snippet(source_line: str) -> str:
    """Whitespace-collapsed, comment-stripped code text of a line."""
    return " ".join(_strip_comment(source_line).split())


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable id of a finding (schema 2).

    Hashes the dotted module, the rule id, the comment-stripped
    normalized snippet, and an occurrence index for identical snippets
    — never the line number, so edits elsewhere in the file (or in the
    line's own comments) cannot invalidate an accepted entry.
    """
    snippet = normalized_snippet(finding.source_line)
    payload = f"v2|{_module_of(finding.path)}|{finding.rule}|{snippet}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: list[Finding]) -> dict[str, Finding]:
    """Fingerprint → finding, disambiguating identical snippets by order."""
    out: dict[str, Finding] = {}
    seen: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (finding.path, finding.rule, normalized_snippet(finding.source_line))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out[fingerprint(finding, occurrence)] = finding
    return out


@dataclass(frozen=True)
class Baseline:
    """Accepted findings: fingerprint → rationale."""

    entries: dict[str, dict] = field(default_factory=dict)
    path: pathlib.Path | None = None

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def rationale(self, fp: str) -> str:
        """The recorded acceptance rationale for one entry."""
        return self.entries.get(fp, {}).get("rationale", "")


def _read_payload(path: pathlib.Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise DataError(f"baseline {path} is corrupt: {error}") from error
    if not isinstance(payload, dict):
        raise DataError(f"baseline {path} is not a JSON object")
    return payload


def load_baseline(path: str | pathlib.Path | None = None) -> Baseline:
    """Load a baseline file (the shipped default when ``path`` is None).

    A missing default baseline is an empty baseline; a missing explicit
    path is an error; a schema-1 file is an error that points at the
    one-shot ``repro lint --migrate-baseline`` rewrite.
    """
    explicit = path is not None
    path = pathlib.Path(path) if explicit else DEFAULT_BASELINE_PATH
    if not path.exists():
        if explicit:
            raise DataError(f"no such baseline file: {path}")
        return Baseline(path=path)
    payload = _read_payload(path)
    if payload.get("schema") == 1:
        raise DataError(
            f"baseline {path} uses fingerprint schema 1; run "
            "'repro lint --migrate-baseline' once to rewrite it in place"
        )
    if payload.get("schema") != BASELINE_SCHEMA:
        raise DataError(
            f"baseline {path}: schema {payload.get('schema')!r} != {BASELINE_SCHEMA}"
        )
    entries: dict[str, dict] = {}
    for entry in payload.get("entries", []):
        fp = entry.get("fingerprint")
        if not fp:
            raise DataError(f"baseline {path}: entry without fingerprint: {entry}")
        entries[fp] = entry
    return Baseline(entries=entries, path=path)


def migrate_baseline(path: str | pathlib.Path | None = None) -> pathlib.Path:
    """One-shot schema-1 → schema-2 rewrite, preserving rationales.

    Recomputes every entry's fingerprint from its recorded ``(file,
    rule, source_line)`` under the v2 scheme; occurrence indices are
    rebuilt in the stored entry order, which matches the sorted order
    :func:`write_baseline` produced them in.  Running it on a file that
    is already schema 2 is a no-op.
    """
    path = pathlib.Path(path) if path is not None else DEFAULT_BASELINE_PATH
    if not path.exists():
        raise DataError(f"no such baseline file: {path}")
    payload = _read_payload(path)
    if payload.get("schema") == BASELINE_SCHEMA:
        return path
    if payload.get("schema") != 1:
        raise DataError(
            f"baseline {path}: cannot migrate schema {payload.get('schema')!r}"
        )
    seen: dict[tuple[str, str, str], int] = {}
    entries = []
    for entry in payload.get("entries", []):
        finding = Finding(
            rule=entry.get("rule", ""),
            path=entry.get("file", ""),
            line=int(entry.get("line", 0)),
            col=0,
            message=entry.get("message", ""),
            source_line=entry.get("source_line", ""),
        )
        key = (finding.path, finding.rule, normalized_snippet(finding.source_line))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        entries.append({**entry, "fingerprint": fingerprint(finding, occurrence)})
    path.write_text(
        json.dumps({"schema": BASELINE_SCHEMA, "entries": entries}, indent=2)
        + "\n"
    )
    return path


def write_baseline(
    path: str | pathlib.Path,
    findings: list[Finding],
    previous: Baseline | None = None,
    rationale: str | None = None,
) -> pathlib.Path:
    """Write ``findings`` as the new baseline, keeping old rationales.

    Entries carried over from ``previous`` keep their recorded
    rationale.  Entries NEW to this baseline require ``rationale`` — a
    real justification the author supplies (``repro lint
    --write-baseline --rationale "..."``); refusing to invent one keeps
    placeholder text from being committed as documentation.

    Raises:
        DataError: a finding absent from ``previous`` was passed
            without ``rationale``.
    """
    path = pathlib.Path(path)
    fingerprinted = fingerprint_findings(findings)
    entries = []
    for fp, finding in sorted(
        fingerprinted.items(), key=lambda kv: (kv[1].path, kv[1].line, kv[0]),
    ):
        kept = previous.rationale(fp) if previous else ""
        if not kept and not rationale:
            raise DataError(
                f"baseline entry {finding.path}:{finding.line} "
                f"({finding.rule}) is new and no rationale was given; "
                "pass --rationale explaining why it is grandfathered"
            )
        entries.append({
            "fingerprint": fp,
            "rule": finding.rule,
            "file": finding.path,
            "line": finding.line,
            "message": finding.message,
            "source_line": finding.source_line,
            "rationale": kept or rationale,
        })
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def partition(
    findings: list[Finding], baseline: Baseline,
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined)."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for fp, finding in fingerprint_findings(findings).items():
        (grandfathered if fp in baseline else new).append(finding)
    key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
    return sorted(new, key=key), sorted(grandfathered, key=key)
