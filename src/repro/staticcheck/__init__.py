"""Domain-aware static analysis for the simulator/analysis contract.

The repo's correctness argument rests on invariants no general-purpose
linter knows about: the analysis layer must never read planted hazard
ground truth, randomness must flow through named streams, simulation
paths must not read wall clocks, analysis code must not compare floats
with ``==``, and telemetry dict keys must come from schema constants.
This package makes those invariants first-class lint rules:

* :mod:`~repro.staticcheck.framework` — single-walk AST driver, rule
  registry, ``# repro: noqa[RULE-ID]`` suppressions;
* :mod:`~repro.staticcheck.graph` — module-level import graph of the
  package (relative imports resolved);
* :mod:`~repro.staticcheck.rules` — the shipped rule pack (per-module
  and whole-program);
* :mod:`~repro.staticcheck.wholeprogram` — the whole-program engine:
  call graph, interprocedural taint, content-addressed incremental
  fragments;
* :mod:`~repro.staticcheck.baselines` — committed-baseline store for
  grandfathered findings;
* :mod:`~repro.staticcheck.reporters` — text / JSON / SARIF output;
* :mod:`~repro.staticcheck.runner` — high-level entry points used by
  the ``repro lint`` CLI and the tier-1 tests.

Run it with ``python -m repro lint`` (see ``docs/static_analysis.md``).
"""

from .baselines import Baseline, load_baseline, migrate_baseline, write_baseline
from .framework import Finding, ModuleInfo, Rule, all_rules, get_rule
from .graph import ImportGraph
from .reporters import render_json, render_sarif, render_text
from .runner import (
    LintReport,
    default_target,
    lint_paths,
    lint_source,
    lint_sources,
)
from .wholeprogram import (
    WholeProgramRule,
    all_wholeprogram_rules,
    get_wholeprogram_rule,
)

__all__ = [
    "Baseline",
    "Finding",
    "ImportGraph",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "WholeProgramRule",
    "all_rules",
    "all_wholeprogram_rules",
    "default_target",
    "get_rule",
    "get_wholeprogram_rule",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "migrate_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
