"""Finding reporters: human text, machine JSON and SARIF 2.1.0.

The JSON layout is part of the CI contract (the ``staticcheck`` job
parses it and asserts rule ids are present); bump ``REPORT_SCHEMA`` on
incompatible changes.  The SARIF form feeds code-scanning upload in CI
so findings annotate pull requests in place.
"""

from __future__ import annotations

import json

from .baselines import fingerprint_findings
from .runner import LintReport

REPORT_SCHEMA = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: LintReport, verbose_rules: bool = False) -> str:
    """Human-readable report, one ``path:line:col: rule: message`` per
    finding, followed by a summary line."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    if verbose_rules and report.findings:
        lines.append("")
        for rule in sorted({f.rule for f in report.findings}):
            doc = report.rule_docs.get(rule, "")
            lines.append(f"[{rule}] {doc}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.n_modules} module(s)"
        f" ({len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed)"
    )
    lines.append(summary if not lines else "")
    lines[-1] = summary
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    fingerprints = {
        id(finding): fp
        for fp, finding in fingerprint_findings(
            report.findings + report.baselined
        ).items()
    }

    def encode(finding, baselined: bool) -> dict:
        return {
            "rule": finding.rule,
            "file": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "source_line": finding.source_line,
            "fingerprint": fingerprints.get(id(finding), ""),
            "baselined": baselined,
        }

    payload = {
        "schema": REPORT_SCHEMA,
        "rules": {
            rule_id: {"title": title, "rationale": rationale}
            for rule_id, (title, rationale) in sorted(report.rule_catalog.items())
        },
        "findings": (
            [encode(f, False) for f in report.findings]
            + [encode(f, True) for f in report.baselined]
        ),
        "counts": {
            "new": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "modules": report.n_modules,
            "cached_modules": report.cached_modules,
            "analyzed_modules": report.analyzed_modules,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 report for code-scanning upload.

    New findings are ``error``-level results; baselined findings are
    included with an accepted ``suppression`` carrying the recorded
    rationale text, so scanners show them as reviewed rather than
    silently dropping them.  ``partialFingerprints`` carries the
    baseline fingerprint, which is line-number independent by design —
    exactly what SARIF asks of a stable result id.
    """
    rule_ids = sorted(report.rule_catalog)
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    fingerprints = {
        id(finding): fp
        for fp, finding in fingerprint_findings(
            report.findings + report.baselined
        ).items()
    }

    def result(finding, baselined: bool) -> dict:
        entry = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v2": fingerprints.get(id(finding), ""),
            },
        }
        if baselined:
            entry["suppressions"] = [{
                "kind": "external",
                "status": "accepted",
                "justification": "baselined in staticcheck/baseline.json",
            }]
        return entry

    driver = {
        "name": "repro-lint",
        "informationUri": "https://example.invalid/repro/docs/static_analysis",
        "version": str(REPORT_SCHEMA),
        "rules": [
            {
                "id": rule_id,
                "shortDescription": {"text": report.rule_catalog[rule_id][0]},
                "fullDescription": {"text": report.rule_catalog[rule_id][1]},
                "defaultConfiguration": {"level": "error"},
            }
            for rule_id in rule_ids
        ],
    }
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "originalUriBaseIds": {"SRCROOT": {"uri": "src/"}},
            "results": (
                [result(f, False) for f in report.findings]
                + [result(f, True) for f in report.baselined]
            ),
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
