"""Finding reporters: human text and machine JSON.

The JSON layout is part of the CI contract (the ``staticcheck`` job
parses it and asserts rule ids are present); bump ``REPORT_SCHEMA`` on
incompatible changes.
"""

from __future__ import annotations

import json

from .baselines import fingerprint_findings
from .runner import LintReport

REPORT_SCHEMA = 1


def render_text(report: LintReport, verbose_rules: bool = False) -> str:
    """Human-readable report, one ``path:line:col: rule: message`` per
    finding, followed by a summary line."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    if verbose_rules and report.findings:
        lines.append("")
        for rule in sorted({f.rule for f in report.findings}):
            doc = report.rule_docs.get(rule, "")
            lines.append(f"[{rule}] {doc}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.n_modules} module(s)"
        f" ({len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed)"
    )
    lines.append(summary if not lines else "")
    lines[-1] = summary
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    fingerprints = {
        id(finding): fp
        for fp, finding in fingerprint_findings(
            report.findings + report.baselined
        ).items()
    }

    def encode(finding, baselined: bool) -> dict:
        return {
            "rule": finding.rule,
            "file": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "source_line": finding.source_line,
            "fingerprint": fingerprints.get(id(finding), ""),
            "baselined": baselined,
        }

    payload = {
        "schema": REPORT_SCHEMA,
        "rules": {
            rule_id: {"title": title, "rationale": rationale}
            for rule_id, (title, rationale) in sorted(report.rule_catalog.items())
        },
        "findings": (
            [encode(f, False) for f in report.findings]
            + [encode(f, True) for f in report.baselined]
        ),
        "counts": {
            "new": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "modules": report.n_modules,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
