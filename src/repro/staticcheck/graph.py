"""Module-level import graph of a Python package tree.

Built once per lint run from the same :class:`~repro.staticcheck.framework.ModuleInfo`
objects the rules walk, so the GT-leak boundary check reasons over
*resolved* module names (relative imports included) instead of matching
substrings in import statements.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from .framework import ModuleInfo, read_source


def module_name_for(path: pathlib.Path, root: pathlib.Path) -> str:
    """Dotted module name of ``path`` inside package root ``root``.

    ``root`` is the directory of the top-level package (e.g.
    ``.../src/repro``); ``__init__.py`` maps to its package name.
    """
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def collect_modules(root: pathlib.Path) -> list[ModuleInfo]:
    """Parse every ``*.py`` under package root ``root``, sorted by name."""
    paths = sorted(root.rglob("*.py"))
    known = frozenset(module_name_for(path, root) for path in paths)
    return [
        ModuleInfo(
            source=read_source(path),
            name=module_name_for(path, root),
            path=path,
            known_modules=known,
        )
        for path in paths
    ]


class ImportGraph:
    """Directed module → imported-modules graph."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.edges: dict[str, set[str]] = {}
        for module in modules:
            self.edges.setdefault(module.name, set()).update(
                target for target, _ in module.import_edges
            )

    def imports_of(self, name: str) -> frozenset[str]:
        """Direct imports of module ``name``."""
        return frozenset(self.edges.get(name, ()))

    def importers_of(self, name: str) -> frozenset[str]:
        """Modules that directly import ``name`` (or a submodule of it)."""
        prefix = name + "."
        return frozenset(
            source for source, targets in self.edges.items()
            if any(t == name or t.startswith(prefix) for t in targets)
        )

    def reaches(self, start: str, target: str) -> bool:
        """True when ``target`` is transitively imported from ``start``
        (within the modules this graph was built from)."""
        prefix = target + "."
        seen: set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for nxt in self.edges.get(current, ()):
                if nxt == target or nxt.startswith(prefix):
                    return True
                stack.append(nxt)
        return False
