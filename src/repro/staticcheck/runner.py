"""High-level lint entry points for the CLI, CI job and tests.

:func:`lint_paths` walks package trees on disk through the
whole-program engine (content-addressed fragment cache, optional
process fan-out); :func:`lint_source` lints a snippet string as if it
lived at a chosen module path, which is how the fixture tests feed
known-bad code through individual rules, and :func:`lint_sources`
lints a dict of snippets as one multi-module program so
interprocedural fixtures can spread a taint chain across modules.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from ..errors import DataError
from .baselines import Baseline, partition
from .framework import (
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    check_modules,
    read_source,
)
from .graph import ImportGraph, collect_modules, module_name_for
from .wholeprogram import analyze_modules
from .wholeprogram.cache import FragmentCache
from .wholeprogram.engine import _wholeprogram_findings
from .wholeprogram.rulebase import (
    WholeProgramRule,
    all_wholeprogram_rules,
    get_wholeprogram_rule,
)
from .wholeprogram.summaries import summarize_module


def default_target() -> pathlib.Path:
    """The installed ``repro`` package tree (self-lint target)."""
    return pathlib.Path(__file__).resolve().parent.parent


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are actionable (not suppressed, not baselined);
    ``ok`` is the CI gate.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_modules: int = 0
    rule_catalog: dict[str, tuple[str, str]] = field(default_factory=dict)
    graph: ImportGraph | None = None
    #: Incremental-cache counters (0/0 on uncached in-memory runs).
    cached_modules: int = 0
    analyzed_modules: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing actionable was found."""
        return not self.findings

    @property
    def rule_docs(self) -> dict[str, str]:
        """Rule id → rationale (for verbose text output)."""
        return {rid: doc for rid, (_, doc) in self.rule_catalog.items()}

    @property
    def all_findings(self) -> list[Finding]:
        """New + baselined findings (excludes suppressed)."""
        return sorted(
            self.findings + self.baselined,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )


def _catalog(
    rules: list[Rule], wp_rules: list[WholeProgramRule],
) -> dict[str, tuple[str, str]]:
    catalog = {rule.id: (rule.title, rule.rationale) for rule in rules}
    catalog.update(
        {rule.id: (rule.title, rule.rationale) for rule in wp_rules})
    return catalog


def select_rules(
    rule_ids: list[str],
) -> tuple[list[Rule], list[WholeProgramRule]]:
    """Split requested rule ids across the two registries.

    Unknown ids raise :class:`~repro.errors.DataError` naming both
    catalogues, so ``repro lint --rules GT-taint`` and ``--rules
    wallclock`` work identically from the CLI.
    """
    from .framework import _REGISTRY, get_rule
    from .wholeprogram.rulebase import _WP_REGISTRY
    from . import rules as _rule_pack  # noqa: F401  (registers both packs)

    per_module: list[Rule] = []
    whole_program: list[WholeProgramRule] = []
    for rule_id in rule_ids:
        if rule_id in _REGISTRY:
            per_module.append(get_rule(rule_id))
        elif rule_id in _WP_REGISTRY:
            whole_program.append(get_wholeprogram_rule(rule_id))
        else:
            raise DataError(
                f"unknown rule {rule_id!r}; have "
                f"{sorted(set(_REGISTRY) | set(_WP_REGISTRY))}"
            )
    return per_module, whole_program


def _resolve_rule_sets(
    rules: list[Rule] | None,
    wp_rules: list[WholeProgramRule] | None,
) -> tuple[list[Rule], list[WholeProgramRule]]:
    """Default rule sets: everything when unfiltered; an explicit
    per-module filter implies no whole-program rules (and vice versa),
    so ``rules=[get_rule("wallclock")]`` keeps meaning 'only
    wallclock'."""
    if rules is None and wp_rules is None:
        return all_rules(), all_wholeprogram_rules()
    return list(rules or []), list(wp_rules or [])


def lint_modules(
    modules: list[ModuleInfo],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    wp_rules: list[WholeProgramRule] | None = None,
) -> LintReport:
    """Run rules over pre-parsed modules; apply baseline if given.

    The in-memory path: no fragment cache, no process fan-out — used
    by fixture tests and snippet linting.  The whole-program phase
    still runs, over summaries extracted directly from the parsed
    modules.
    """
    rules, wp_rules = _resolve_rule_sets(rules, wp_rules)
    walk = check_modules(modules, rules)
    findings = list(walk.findings)
    suppressed = list(walk.suppressed)
    if wp_rules:
        summaries = {m.name: summarize_module(m) for m in modules}
        wp_found, wp_suppressed = _wholeprogram_findings(summaries, wp_rules)
        findings.extend(wp_found)
        suppressed.extend(wp_suppressed)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is not None and len(baseline):
        new, grandfathered = partition(findings, baseline)
    else:
        new, grandfathered = findings, []
    return LintReport(
        findings=new,
        baselined=grandfathered,
        suppressed=suppressed,
        n_modules=walk.n_modules,
        rule_catalog=_catalog(rules, wp_rules),
        graph=ImportGraph(modules),
        analyzed_modules=len(modules),
    )


def _collect_sources(
    targets: list[pathlib.Path],
) -> tuple[list[tuple[str, pathlib.Path, str]], frozenset[str]]:
    """``(name, path, source)`` triples for lint targets, plus the
    known-module set of the *whole* package for import resolution."""
    triples: list[tuple[str, pathlib.Path, str]] = []
    known: set[str] = set()
    seen: set[str] = set()
    for target in targets:
        if not target.exists():
            raise DataError(f"no such lint target: {target}")
        root = _package_root(target)
        all_paths = sorted(root.rglob("*.py"))
        known.update(module_name_for(p, root) for p in all_paths)
        if target.is_file():
            wanted = [target]
        elif target.resolve() != root.resolve():
            subtree = target.resolve()
            wanted = [p for p in all_paths
                      if p.resolve().is_relative_to(subtree)]
        else:
            wanted = all_paths
        for path in wanted:
            name = module_name_for(path, root)
            if name in seen:
                continue
            seen.add(name)
            triples.append((name, path, read_source(path)))
    triples.sort(key=lambda triple: triple[0])
    return triples, frozenset(known)


def lint_paths(
    paths: list[pathlib.Path] | None = None,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    wp_rules: list[WholeProgramRule] | None = None,
    cache_dir: str | pathlib.Path | None = None,
    jobs: int | None = 1,
) -> LintReport:
    """Lint one or more package trees (default: the repro package).

    Args:
        paths: package roots, subpackages or single files.
        rules: per-module rule subset (default: all registered).
        baseline: grandfathered findings to partition against.
        wp_rules: whole-program rule subset (default: all registered,
            unless ``rules`` is filtered — an explicit filter selects
            exactly what it names).
        cache_dir: fragment-cache directory; warm runs re-analyze only
            modules whose source changed.
        jobs: process fan-out for fresh per-module analysis
            (``repro lint --jobs N``); serial and parallel output are
            byte-identical.
    """
    rules, wp_rules = _resolve_rule_sets(rules, wp_rules)
    targets = [pathlib.Path(p) for p in (paths or [default_target()])]
    triples, known = _collect_sources(targets)
    cache = FragmentCache(cache_dir)
    result = analyze_modules(
        triples,
        rules=rules,
        wp_rules=wp_rules,
        known_modules=known,
        cache=cache,
        jobs=jobs,
    )
    if baseline is not None and len(baseline):
        new, grandfathered = partition(result.findings, baseline)
    else:
        new, grandfathered = result.findings, []
    return LintReport(
        findings=new,
        baselined=grandfathered,
        suppressed=result.suppressed,
        n_modules=result.n_modules,
        rule_catalog=_catalog(rules, wp_rules),
        graph=None,
        cached_modules=result.cached_modules,
        analyzed_modules=result.analyzed_modules,
    )


def _package_root(path: pathlib.Path) -> pathlib.Path:
    """Top-most directory containing ``__init__.py`` above ``path``."""
    current = path if path.is_dir() else path.parent
    root = current
    while (current / "__init__.py").exists():
        root = current
        current = current.parent
    if not (root / "__init__.py").exists():
        raise DataError(f"{path} is not inside a Python package")
    return root


def _default_known_modules(extra: frozenset[str]) -> frozenset[str]:
    root = default_target()
    return extra | frozenset(
        module_name_for(p, root) for p in sorted(root.rglob("*.py"))
    )


def lint_source(
    source: str,
    module: str = "repro.analysis.fixture",
    rules: list[Rule] | None = None,
    known_modules: frozenset[str] | None = None,
    wp_rules: list[WholeProgramRule] | None = None,
) -> list[Finding]:
    """Lint a snippet as if it were the module named ``module``.

    The fixture-test entry point: choose the virtual module path to
    place the snippet inside (or outside) the packages a rule guards.
    ``known_modules`` defaults to the real package's module set so
    ``from repro.failures import hazards`` resolves as it would in the
    tree.
    """
    return lint_sources({module: source}, rules=rules,
                        known_modules=known_modules, wp_rules=wp_rules)


def lint_sources(
    sources: dict[str, str],
    rules: list[Rule] | None = None,
    known_modules: frozenset[str] | None = None,
    wp_rules: list[WholeProgramRule] | None = None,
) -> list[Finding]:
    """Lint several snippets as one multi-module program.

    Interprocedural fixtures use this to spread a call chain across
    virtual modules — a ground-truth read in one, a laundering helper
    in another, a consumer in a third — without touching disk.
    """
    if known_modules is None:
        known_modules = _default_known_modules(frozenset(sources))
    else:
        known_modules = frozenset(known_modules) | frozenset(sources)
    modules = [
        ModuleInfo(
            source=text,
            name=name,
            path=pathlib.Path("<fixture>") / (name.replace(".", "/") + ".py"),
            known_modules=known_modules,
        )
        for name, text in sorted(sources.items())
    ]
    report = lint_modules(modules, rules=rules, wp_rules=wp_rules)
    return report.all_findings
