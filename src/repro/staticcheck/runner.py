"""High-level lint entry points for the CLI, CI job and tests.

:func:`lint_paths` walks package trees on disk; :func:`lint_source`
lints a snippet string as if it lived at a chosen module path, which is
how the fixture tests feed known-bad code through individual rules.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from ..errors import DataError
from .baselines import Baseline, partition
from .framework import Finding, ModuleInfo, Rule, all_rules, check_modules
from .graph import ImportGraph, collect_modules, module_name_for


def default_target() -> pathlib.Path:
    """The installed ``repro`` package tree (self-lint target)."""
    return pathlib.Path(__file__).resolve().parent.parent


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are actionable (not suppressed, not baselined);
    ``ok`` is the CI gate.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_modules: int = 0
    rule_catalog: dict[str, tuple[str, str]] = field(default_factory=dict)
    graph: ImportGraph | None = None

    @property
    def ok(self) -> bool:
        """True when nothing actionable was found."""
        return not self.findings

    @property
    def rule_docs(self) -> dict[str, str]:
        """Rule id → rationale (for verbose text output)."""
        return {rid: doc for rid, (_, doc) in self.rule_catalog.items()}

    @property
    def all_findings(self) -> list[Finding]:
        """New + baselined findings (excludes suppressed)."""
        return sorted(
            self.findings + self.baselined,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )


def _catalog(rules: list[Rule]) -> dict[str, tuple[str, str]]:
    return {rule.id: (rule.title, rule.rationale) for rule in rules}


def lint_modules(
    modules: list[ModuleInfo],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run rules over pre-parsed modules; apply baseline if given."""
    rules = rules if rules is not None else all_rules()
    walk = check_modules(modules, rules)
    if baseline is not None and len(baseline):
        new, grandfathered = partition(walk.findings, baseline)
    else:
        new, grandfathered = walk.findings, []
    return LintReport(
        findings=new,
        baselined=grandfathered,
        suppressed=walk.suppressed,
        n_modules=walk.n_modules,
        rule_catalog=_catalog(rules),
        graph=ImportGraph(modules),
    )


def lint_paths(
    paths: list[pathlib.Path] | None = None,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint one or more package trees (default: the repro package)."""
    targets = [pathlib.Path(p) for p in (paths or [default_target()])]
    modules: list[ModuleInfo] = []
    for target in targets:
        if not target.exists():
            raise DataError(f"no such lint target: {target}")
        if target.is_file():
            root = _package_root(target)
            known = frozenset(
                module_name_for(p, root) for p in sorted(root.rglob("*.py"))
            )
            from .framework import read_source

            modules.append(ModuleInfo(
                source=read_source(target),
                name=module_name_for(target, root),
                path=target,
                known_modules=known,
            ))
        else:
            root = _package_root(target)
            collected = collect_modules(root)
            if target.resolve() != root.resolve():
                # A subpackage target lints only its own modules; the
                # whole package still provides import resolution.
                subtree = target.resolve()
                collected = [
                    m for m in collected
                    if m.path.resolve().is_relative_to(subtree)
                ]
            modules.extend(collected)
    return lint_modules(modules, rules=rules, baseline=baseline)


def _package_root(path: pathlib.Path) -> pathlib.Path:
    """Top-most directory containing ``__init__.py`` above ``path``."""
    current = path if path.is_dir() else path.parent
    root = current
    while (current / "__init__.py").exists():
        root = current
        current = current.parent
    if not (root / "__init__.py").exists():
        raise DataError(f"{path} is not inside a Python package")
    return root


def lint_source(
    source: str,
    module: str = "repro.analysis.fixture",
    rules: list[Rule] | None = None,
    known_modules: frozenset[str] | None = None,
) -> list[Finding]:
    """Lint a snippet as if it were the module named ``module``.

    The fixture-test entry point: choose the virtual module path to
    place the snippet inside (or outside) the packages a rule guards.
    ``known_modules`` defaults to the real package's module set so
    ``from repro.failures import hazards`` resolves as it would in the
    tree.
    """
    if known_modules is None:
        root = default_target()
        known_modules = frozenset(
            module_name_for(p, root) for p in sorted(root.rglob("*.py"))
        )
        known_modules |= {module}
    info = ModuleInfo(
        source=source,
        name=module,
        path=pathlib.Path("<fixture>") / (module.replace(".", "/") + ".py"),
        known_modules=known_modules,
    )
    report = lint_modules([info], rules=rules)
    return report.all_findings
