"""Interprocedural ground-truth taint fixpoint.

Taint starts where planted ground truth enters user code — a read of a
``@ground_truth``-marked attribute, or any function defined inside the
generator-side modules (``repro.failures.hazards`` /
``repro.failures.faultmodel``) — and propagates along three channels
until nothing changes:

* **returns** — a function whose return value derives from a tainted
  atom has a tainted return; callers that consume that return become
  tainted in turn;
* **arguments** — passing a tainted value into a function taints its
  parameters (context-insensitively), so a helper that returns or
  stores what it was handed keeps the chain alive;
* **attribute stores** — writing a tainted value to ``obj.name`` taints
  attribute ``name`` *module-scoped*: reads of ``.name`` count as
  tainted only inside the module that performed a tainted write, which
  keeps result-object field names from smearing taint across the whole
  analysis layer.

Functions in the declared *taint boundary* (the operator-visibility
projection, e.g. ``repro.failures.engine:simulate``) never acquire a
tainted return: the simulation is precisely where planted hazard
parameters are laundered into observable telemetry *by design*, and
the paper's discipline is that everything downstream of the boundary
is legitimate operator data.

Every taint judgment carries a *why* record, so a finding can print
the full propagation chain back to the planted read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .callgraph import Program, split_node
from .summaries import FunctionSummary, ModuleSummary


def _fmt(node: str) -> str:
    module, qualname = split_node(node)
    return f"{module}:{qualname}"


@dataclass
class TaintAnalysis:
    """Result of the fixpoint: what is tainted and why."""

    program: Program
    boundary: frozenset[str]
    #: Ground-truth source module prefixes; calls into them taint even
    #: when the callee module is outside the analyzed program.
    sources: frozenset[str] = frozenset()
    #: node -> why its return value is tainted.
    tainted_returns: dict[str, tuple] = field(default_factory=dict)
    #: (module, attr name) -> why writes of that attr are tainted.
    tainted_attrs: dict[tuple[str, str], tuple] = field(default_factory=dict)
    #: node -> why its parameters receive tainted values.
    tainted_param_fns: dict[str, tuple] = field(default_factory=dict)
    #: (caller node, call index) -> callee node, for chain rendering.
    callees: dict[tuple[str, int], str] = field(default_factory=dict)

    def atom_why(self, node: str, module: str, atom: str) -> tuple | None:
        """Why ``atom`` (in function ``node``) is tainted, or None."""
        if atom.startswith("gt:"):
            _, attr, line = atom.split(":", 2)
            return ("gt", node, attr, int(line))
        if atom.startswith("call:"):
            index = int(atom[5:])
            callee = self.callees.get((node, index))
            if (callee is not None and callee not in self.boundary
                    and callee in self.tainted_returns):
                fn = self.program.function(node)
                line = fn.calls[index].line if fn else 0
                return ("call", node, callee, line)
            return self._external_source_call(node, index)
        if atom.startswith("attr:"):
            key = (module, atom[5:])
            if key in self.tainted_attrs:
                return ("attr", module, atom[5:])
            return None
        if atom.startswith("param:"):
            if node in self.tainted_param_fns:
                return ("param", node)
            return None
        return None

    def call_taint(self, node: str, fn: FunctionSummary,
                   index: int) -> tuple | None:
        """Why call site ``index`` of ``node`` returns a tainted value."""
        callee = self.callees.get((node, index))
        if (callee is not None and callee not in self.boundary
                and callee in self.tainted_returns):
            return ("call", node, callee, fn.calls[index].line)
        return self._external_source_call(node, index)

    def _external_source_call(self, node: str, index: int) -> tuple | None:
        """Taint for a call whose dotted target lives in a ground-truth
        module, even when that module is outside the analyzed program
        (e.g. a fixture program calling the real ``faultmodel``)."""
        fn = self.program.function(node)
        if fn is None or index >= len(fn.calls):
            return None
        raw = fn.calls[index].raw
        if raw and any(raw == src or raw.startswith(src + ".")
                       for src in self.sources):
            return ("extcall", node, raw, fn.calls[index].line)
        return None

    def chain(self, why: tuple, limit: int = 12) -> list[str]:
        """Human-readable propagation chain from a why record back to
        the planted source."""
        steps: list[str] = []
        current: tuple | None = why
        while current is not None and len(steps) < limit:
            kind = current[0]
            if kind == "gt":
                _, node, attr, line = current
                summary = self.program.module_of(node)
                path = summary.path if summary else "?"
                steps.append(
                    f"{_fmt(node)} reads planted .{attr} ({path}:{line})")
                current = None
            elif kind == "source":
                _, node = current
                steps.append(
                    f"{_fmt(node)} is defined in a ground-truth module")
                current = None
            elif kind == "call":
                _, node, callee, line = current
                steps.append(
                    f"{_fmt(node)} consumes {_fmt(callee)}() (line {line})")
                current = self.tainted_returns.get(callee)
            elif kind == "extcall":
                _, node, raw, line = current
                steps.append(
                    f"{_fmt(node)} calls {raw}() from a ground-truth "
                    f"module (line {line})")
                current = None
            elif kind == "attr":
                _, module, attr = current
                steps.append(
                    f"reads .{attr}, tainted by a store in {module}")
                current = self.tainted_attrs.get((module, attr))
                if current is not None and current[0] == "attr":
                    current = None  # avoid attr -> attr loops
            elif kind == "param":
                _, node = current
                steps.append(f"{_fmt(node)} receives a tainted argument")
                current = self.tainted_param_fns.get(node)
                if current is not None and current[0] == "param":
                    current = None
            else:
                current = None
        return steps


def analyze_taint(
    program: Program,
    source_modules: Iterable[str],
    boundary: Iterable[str],
) -> TaintAnalysis:
    """Run the ground-truth taint fixpoint over a linked program."""
    sources = frozenset(source_modules)
    analysis = TaintAnalysis(program=program,
                             boundary=frozenset(boundary),
                             sources=sources)
    # Resolve every call site once (node, index) -> callee node.
    for node, summary, fn in program.iter_functions():
        for index, site in enumerate(fn.calls):
            callee = program.resolve_call(summary.module, site.raw, fn)
            if callee is not None:
                analysis.callees[(node, index)] = callee

    # Seeds: ground-truth-module functions, and direct planted reads
    # that flow into a return value.
    for node, summary, fn in program.iter_functions():
        if node in analysis.boundary:
            continue
        if summary.module in sources:
            analysis.tainted_returns[node] = ("source", node)
            continue
        for atom in fn.return_atoms:
            if atom.startswith("gt:"):
                _, attr, line = atom.split(":", 2)
                analysis.tainted_returns[node] = ("gt", node, attr,
                                                  int(line))
                break

    triples = list(program.iter_functions())
    changed = True
    while changed:
        changed = False
        for node, summary, fn in triples:
            module = summary.module
            # Returns.
            if node not in analysis.tainted_returns and (
                    node not in analysis.boundary):
                for atom in fn.return_atoms:
                    why = analysis.atom_why(node, module, atom)
                    if why is not None:
                        analysis.tainted_returns[node] = why
                        changed = True
                        break
            # Attribute stores (module-scoped).
            for attr, atoms, _line in fn.attr_writes:
                key = (module, attr)
                if key in analysis.tainted_attrs:
                    continue
                for atom in atoms:
                    why = analysis.atom_why(node, module, atom)
                    if why is not None:
                        analysis.tainted_attrs[key] = why
                        changed = True
                        break
            # Arguments into program-internal callees.
            for index, site in enumerate(fn.calls):
                callee = analysis.callees.get((node, index))
                if callee is None or callee in analysis.tainted_param_fns:
                    continue
                for atom in site.arg_atoms:
                    why = analysis.atom_why(node, module, atom)
                    if why is not None:
                        analysis.tainted_param_fns[callee] = why
                        changed = True
                        break
    return analysis
