"""Content-addressed lint fragments through the artifact store.

One *fragment* is everything the engine needs from a module on a warm
run: its whole-program summary, its per-module rule findings (already
split into kept/suppressed), and the noqa map the global phase applies
to whole-program findings.  Fragments live in the same two-tier
:class:`~repro.pipeline.core.ArtifactStore` the report pipeline uses —
atomic disk publication, corrupt-entry self-healing and pruning come
for free.

The fragment key hashes everything that can change the fragment:

* the module's dotted name and exact source bytes;
* every per-module rule's ``(id, version)`` and every whole-program
  rule's ``(id, version)`` (whole-program rules read the cached
  *summary*, so a semantics bump must invalidate summaries too);
* the summary schema version;
* the contract salt — the generated ground-truth attribute and
  telemetry field sets plus the contract module's own source, since a
  new planted mark changes what extraction records about *other*
  modules without their sources changing;
* the sorted known-module list, because import-edge resolution (and
  with it the layering rule) depends on which sibling modules exist.

A warm ``repro lint`` therefore re-parses exactly the modules whose
source changed; everything else is one ``sha256`` plus one store read.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any

from ...pipeline.core import ArtifactStore, Stage, source_fingerprint
from ..framework import Finding, Rule
from .summaries import SUMMARY_SCHEMA

#: Store stage name all fragments are filed under.
FRAGMENT_STAGE = "lint-fragment"

#: Layout version of the fragment payload itself.
FRAGMENT_SCHEMA = 1


def _never_runs(inputs: dict, ctx: Any) -> Any:  # pragma: no cover
    raise AssertionError("lint fragment stage must never execute")


def _fragment_stage() -> Stage:
    """A stage shell carrying (name, codec) for store addressing."""
    return Stage(name=FRAGMENT_STAGE, run=_never_runs, codec="json")


def contract_salt(known_modules: frozenset[str]) -> str:
    """Hash of lint inputs that live outside the module's own source."""
    from ..contract import ground_truth_attributes, telemetry_field_names

    digest = hashlib.sha256()
    digest.update(b"fragment-schema:%d\n" % FRAGMENT_SCHEMA)
    digest.update(b"summary-schema:%d\n" % SUMMARY_SCHEMA)
    for attr in sorted(ground_truth_attributes()):
        digest.update(b"gt:" + attr.encode() + b"\n")
    for name in sorted(telemetry_field_names()):
        digest.update(b"field:" + name.encode() + b"\n")
    digest.update(b"contract:"
                  + source_fingerprint("repro.staticcheck.contract").encode()
                  + b"\n")
    for module in sorted(known_modules):
        digest.update(b"module:" + module.encode() + b"\n")
    return digest.hexdigest()


def rule_signature(rules: list[Rule], wp_versions: dict[str, int]) -> str:
    """Stable hash of the active rule set and its semantic versions."""
    parts = sorted(f"{rule.id}={rule.version}" for rule in rules)
    parts += sorted(f"wp:{rid}={version}"
                    for rid, version in wp_versions.items())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def fragment_key(module_name: str, source: str, rule_sig: str,
                 salt: str) -> str:
    """Content address of one module's lint fragment."""
    digest = hashlib.sha256()
    digest.update(module_name.encode() + b"\n")
    digest.update(hashlib.sha256(source.encode()).hexdigest().encode())
    digest.update(b"\n" + rule_sig.encode())
    digest.update(b"\n" + salt.encode())
    return digest.hexdigest()


def finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule, "path": finding.path, "line": finding.line,
        "col": finding.col, "message": finding.message,
        "source_line": finding.source_line,
    }


def finding_from_json(payload: dict) -> Finding:
    return Finding(
        rule=payload["rule"], path=payload["path"], line=payload["line"],
        col=payload["col"], message=payload["message"],
        source_line=payload["source_line"],
    )


class FragmentCache:
    """Fragment get/put over one artifact store root."""

    #: One fragment per module per (source, rule set) revision — far
    #: more entries than the pipeline's default per-stage bound of 32,
    #: so the cap is raised to hold a few whole-tree generations.
    MAX_ENTRIES = 4096

    def __init__(self, cache_dir: str | pathlib.Path | None):
        self.store = (
            ArtifactStore(cache_dir, max_entries=self.MAX_ENTRIES)
            if cache_dir else None
        )
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.store is not None

    def fetch(self, key: str) -> dict | None:
        if self.store is None:
            return None
        hit = self.store.fetch(_fragment_stage(), key)
        if hit is None:
            self.misses += 1
            return None
        _tier, payload = hit
        if (not isinstance(payload, dict)
                or payload.get("schema") != FRAGMENT_SCHEMA):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, fragment: dict) -> None:
        if self.store is None:
            return
        # Round-trip through JSON so cached and fresh fragments are
        # bit-identical in structure (tuples become lists, ints stay
        # ints) — warm findings must render byte-identically.
        self.store.put(_fragment_stage(), key,
                       json.loads(json.dumps(fragment)))
