"""The whole-program lint engine: cached per-module analysis plus the
global propagation phase.

Per-module work — parsing, the single-walk rule pack, and summary
extraction — is packaged as a *fragment* (see
:mod:`~repro.staticcheck.wholeprogram.cache`): pure data computed from
``(module name, source, known modules, rule set)``, which makes it
safe to cache content-addressed and to fan out across processes with
:func:`repro.parallel.map_items`.

The global phase — linking summaries, running the whole-program rules
— is always recomputed: it is cheap next to parsing, and a one-module
edit can change *reverse* reachability (a new call edge makes a
previously clean function reachable from a Stage root), so caching it
per-module would be unsound.

Determinism: fragments are merged in sorted module order and findings
are fully sorted before returning, so serial, parallel and warm-cache
runs produce byte-identical reports.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from ...parallel import map_items
from ..framework import Finding, ModuleInfo, Rule, check_modules, get_rule
from .cache import (
    FRAGMENT_SCHEMA,
    FragmentCache,
    contract_salt,
    finding_from_json,
    finding_to_json,
    fragment_key,
    rule_signature,
)
from .callgraph import CallGraph, Program
from .rulebase import WholeProgramRule, all_wholeprogram_rules
from .summaries import ModuleSummary, summarize_module


@dataclass
class EngineResult:
    """Merged outcome of per-module fragments and the global phase."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    summaries: dict[str, ModuleSummary] = field(default_factory=dict)
    n_modules: int = 0
    cached_modules: int = 0
    analyzed_modules: int = 0


def module_fragment(spec: tuple) -> dict:
    """Compute one module's lint fragment (worker entry point).

    ``spec`` is picklable: ``(name, path, source, known modules,
    per-module rule ids)``.  Rules are reconstructed from their ids so
    a process pool ships only strings.
    """
    name, path, source, known, rule_ids = spec
    info = ModuleInfo(
        source=source,
        name=name,
        path=pathlib.Path(path),
        known_modules=frozenset(known),
    )
    rules = [get_rule(rule_id) for rule_id in rule_ids]
    walk = check_modules([info], rules)
    summary = summarize_module(info)
    return {
        "schema": FRAGMENT_SCHEMA,
        "module": name,
        "summary": summary.to_json(),
        "findings": [finding_to_json(f) for f in walk.findings],
        "suppressed": [finding_to_json(f) for f in walk.suppressed],
    }


def _wholeprogram_findings(
    summaries: dict[str, ModuleSummary],
    wp_rules: list[WholeProgramRule],
) -> tuple[list[Finding], list[Finding]]:
    """Run the global phase; split findings by noqa suppressions."""
    if not wp_rules:
        return [], []
    program = Program(summaries.values())
    graph = CallGraph.build(program)
    by_path = {summary.path: summary for summary in summaries.values()}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in wp_rules:
        for finding in rule.check_program(program, graph):
            summary = by_path.get(finding.path)
            if summary is not None and _suppresses(summary, finding):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return kept, suppressed


def _suppresses(summary: ModuleSummary, finding: Finding) -> bool:
    if (finding.rule in summary.file_suppressions
            or "*" in summary.file_suppressions):
        return True
    rules = summary.suppressions.get(finding.line, [])
    return finding.rule in rules or "*" in rules


def analyze_modules(
    sources: list[tuple[str, pathlib.Path, str]],
    rules: list[Rule],
    wp_rules: list[WholeProgramRule] | None = None,
    known_modules: frozenset[str] | None = None,
    cache: FragmentCache | None = None,
    jobs: int | None = 1,
) -> EngineResult:
    """Lint ``(name, path, source)`` triples end to end.

    Per-module fragments come from the cache when warm, from
    (optionally parallel) fresh analysis when not; the whole-program
    phase then runs over the merged summaries.
    """
    wp_rules = (wp_rules if wp_rules is not None
                else all_wholeprogram_rules())
    if known_modules is None:
        known_modules = frozenset(name for name, _path, _source in sources)
    cache = cache if cache is not None else FragmentCache(None)
    salt = contract_salt(known_modules)
    signature = rule_signature(
        rules, {rule.id: rule.version for rule in wp_rules})
    rule_ids = tuple(rule.id for rule in rules)
    ordered = sorted(sources, key=lambda triple: triple[0])

    fragments: dict[str, dict] = {}
    keys: dict[str, str] = {}
    missing: list[tuple] = []
    for name, path, source in ordered:
        key = fragment_key(name, source, signature, salt)
        keys[name] = key
        cached = cache.fetch(key)
        if cached is not None:
            fragments[name] = cached
        else:
            missing.append((name, str(path), source,
                            tuple(sorted(known_modules)), rule_ids))
    computed = map_items(module_fragment, missing, jobs=jobs)
    for spec, fragment in zip(missing, computed):
        fragments[spec[0]] = fragment
        cache.put(keys[spec[0]], fragment)

    result = EngineResult(
        n_modules=len(ordered),
        cached_modules=len(ordered) - len(missing),
        analyzed_modules=len(missing),
    )
    for name, _path, _source in ordered:
        fragment = fragments[name]
        result.summaries[name] = ModuleSummary.from_json(fragment["summary"])
        result.findings.extend(
            finding_from_json(f) for f in fragment["findings"])
        result.suppressed.extend(
            finding_from_json(f) for f in fragment["suppressed"])
    wp_found, wp_suppressed = _wholeprogram_findings(
        result.summaries, wp_rules)
    result.findings.extend(wp_found)
    result.suppressed.extend(wp_suppressed)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
