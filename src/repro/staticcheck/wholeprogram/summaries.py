"""Per-module function summaries: the unit of whole-program analysis.

A :class:`ModuleSummary` compresses one module's AST into the facts the
interprocedural rules need — functions and their call sites, a
closure-expanded set of *dataflow atoms* describing what flows into
each function's return value, planted-ground-truth reads, impure reads,
attribute stores and module-global writes — plus the class table and
name bindings the call-graph linker resolves methods and re-exports
through.

Summaries are plain JSON (``to_json``/``from_json`` round-trip
exactly), which is what makes them cacheable through the artifact
store and cheap to ship between ``--jobs`` worker processes; the
global phase never re-parses a module whose summary is warm.

Dataflow atoms
--------------
Return values and stored values are described by small string atoms:

``param:NAME``
    the value derives from parameter ``NAME``;
``call:I``
    the value derives from the result of call site ``I`` (index into
    the function's ``calls`` list);
``gt:ATTR:LINE``
    the value derives from a read of planted ground-truth attribute
    ``ATTR`` at ``LINE``;
``attr:NAME``
    the value derives from reading attribute ``NAME`` off some object.

Intra-function assignment chains (including tuple unpacking, container
literals and comprehensions) are expanded at extraction time, so the
fixpoint in :mod:`~repro.staticcheck.wholeprogram.taint` only ever
reasons over atoms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..framework import ModuleInfo

#: Bump when the summary layout or extraction semantics change; the
#: lint cache keys embed it, so stale fragments are never read back.
SUMMARY_SCHEMA = 1

#: Pseudo-function holding module-level statements (imports executed,
#: decorators applied, registries populated, stages constructed).
MODULE_BODY = "<module>"

#: Methods that mutate their receiver in place; a call on a bare
#: module-global name counts as a write to it.
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "setdefault", "extend", "insert",
    "pop", "popitem", "remove", "discard", "clear",
})

#: Calls recognized as constructing mutable containers at module scope.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "collections.defaultdict",
    "collections.OrderedDict", "collections.deque", "collections.Counter",
})

#: ``global_writes`` kinds: an explicit ``global``-declared rebinding
#: versus an in-place item/mutator write on a non-local name.
WRITE_GLOBAL = "global"
WRITE_MUTATE = "mutate"


@dataclass
class CallSite:
    """One call expression inside a function."""

    raw: str  # resolved callee ref ("local:f", "numpy.random.rand", "self.m", "open")
    attr: str  # trailing attribute name for method-ish calls ("" otherwise)
    line: int
    nargs: int
    arg_atoms: list[str] = field(default_factory=list)
    callable_args: list[list] = field(default_factory=list)  # [pos|kw, ref]
    unseeded_rng: bool = False  # default_rng()-style zero-arg entropy pull

    def to_json(self) -> dict:
        return {
            "raw": self.raw, "attr": self.attr, "line": self.line,
            "nargs": self.nargs, "arg_atoms": self.arg_atoms,
            "callable_args": self.callable_args,
            "unseeded_rng": self.unseeded_rng,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CallSite":
        return cls(
            raw=payload["raw"], attr=payload["attr"], line=payload["line"],
            nargs=payload["nargs"], arg_atoms=list(payload["arg_atoms"]),
            callable_args=[list(pair) for pair in payload["callable_args"]],
            unseeded_rng=bool(payload.get("unseeded_rng", False)),
        )


@dataclass
class FunctionSummary:
    """Everything the global phase knows about one function."""

    qualname: str  # dotted path inside the module ("Cls.method", "<module>")
    line: int
    is_async: bool = False
    params: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    return_atoms: list[str] = field(default_factory=list)
    gt_reads: list[list] = field(default_factory=list)  # [attr, line]
    impure_reads: list[list] = field(default_factory=list)  # [what, line]
    attr_writes: list[list] = field(default_factory=list)  # [attr, atoms, line]
    global_writes: list[list] = field(default_factory=list)  # [name, line, kind]

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname, "line": self.line,
            "is_async": self.is_async, "params": self.params,
            "calls": [c.to_json() for c in self.calls],
            "return_atoms": self.return_atoms,
            "gt_reads": self.gt_reads,
            "impure_reads": self.impure_reads,
            "attr_writes": self.attr_writes,
            "global_writes": self.global_writes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FunctionSummary":
        return cls(
            qualname=payload["qualname"], line=payload["line"],
            is_async=payload["is_async"], params=list(payload["params"]),
            calls=[CallSite.from_json(c) for c in payload["calls"]],
            return_atoms=list(payload["return_atoms"]),
            gt_reads=[list(r) for r in payload["gt_reads"]],
            impure_reads=[list(r) for r in payload["impure_reads"]],
            attr_writes=[list(w) for w in payload["attr_writes"]],
            global_writes=[list(w) for w in payload["global_writes"]],
        )


@dataclass
class ModuleSummary:
    """One module's contribution to the whole-program model."""

    module: str
    path: str  # package-relative path used in findings
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: class qualname -> {"bases": [ref], "methods": {name: qualname},
    #: "attrs": {name: ref}} for class-attribute-bound callables.
    classes: dict[str, dict] = field(default_factory=dict)
    #: name bindings (local name -> dotted origin), absolute *and*
    #: resolved-relative imports, for cross-module re-export chasing.
    bindings: dict[str, str] = field(default_factory=dict)
    #: top-level defs and aliases (local name -> ref).
    module_refs: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> line.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: Stage(run=...) bindings and fingerprint_inputs= call targets.
    stage_runs: list[list] = field(default_factory=list)  # [ref, line]
    suppressions: dict[int, list[str]] = field(default_factory=dict)
    file_suppressions: list[str] = field(default_factory=list)
    #: source text of every line referenced above (finding anchors).
    lines: dict[int, str] = field(default_factory=dict)

    def function_at(self, qualname: str) -> FunctionSummary | None:
        return self.functions.get(qualname)

    def line_text(self, lineno: int) -> str:
        return self.lines.get(lineno, "")

    def to_json(self) -> dict:
        return {
            "schema": SUMMARY_SCHEMA,
            "module": self.module,
            "path": self.path,
            "functions": {q: f.to_json() for q, f in self.functions.items()},
            "classes": self.classes,
            "bindings": self.bindings,
            "module_refs": self.module_refs,
            "mutable_globals": self.mutable_globals,
            "stage_runs": self.stage_runs,
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
            "file_suppressions": self.file_suppressions,
            "lines": {str(k): v for k, v in self.lines.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            functions={
                q: FunctionSummary.from_json(f)
                for q, f in payload["functions"].items()
            },
            classes={q: dict(c) for q, c in payload["classes"].items()},
            bindings=dict(payload["bindings"]),
            module_refs=dict(payload["module_refs"]),
            mutable_globals={k: int(v)
                             for k, v in payload["mutable_globals"].items()},
            stage_runs=[list(s) for s in payload["stage_runs"]],
            suppressions={int(k): list(v)
                          for k, v in payload["suppressions"].items()},
            file_suppressions=list(payload["file_suppressions"]),
            lines={int(k): v for k, v in payload["lines"].items()},
        )


def _dotted(node: ast.AST) -> tuple[list[str], ast.AST]:
    """Attribute chain parts (outermost last) and the root expression."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    return list(reversed(parts)), node


def _all_bindings(info: ModuleInfo) -> dict[str, str]:
    """Import bindings with relative imports resolved to dotted origins.

    :attr:`ModuleInfo.bindings` covers absolute imports only; the tree
    under lint uses ``from ..pkg import name`` pervasively, so the
    whole-program layer resolves those against the module's own dotted
    name the same way the framework's import-edge builder does.
    """
    bindings = dict(info.bindings)
    package_parts = info.name.split(".")[:-1]
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ImportFrom) or not node.level:
            continue
        if node.level - 1 > len(package_parts):
            continue  # beyond the package root; leave unresolved
        base_parts = package_parts[:len(package_parts) - (node.level - 1)]
        base = ".".join(base_parts + ([node.module] if node.module else []))
        if not base:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            bindings[local] = f"{base}.{alias.name}"
    return bindings


class _Extractor(ast.NodeVisitor):
    """One pass over a module building its :class:`ModuleSummary`."""

    def __init__(self, module: ModuleInfo, gt_attrs: frozenset[str]):
        self.info = module
        self.gt_attrs = gt_attrs
        self.bindings = _all_bindings(module)
        self.summary = ModuleSummary(
            module=module.name,
            path=module.relpath,
            bindings=dict(self.bindings),
            suppressions={line: sorted(rules)
                          for line, rules in module.suppressions.items()},
            file_suppressions=sorted(module.file_suppressions),
        )
        # Scope state for the function currently being extracted.
        self._fn: FunctionSummary | None = None
        self._assigns: dict[str, set[str]] = {}
        self._var_types: dict[str, str] = {}
        self._globals: set[str] = set()
        # Lexical name -> ref for defs visible in enclosing scopes.
        self._env: list[dict[str, str]] = [{}]
        self._qual: list[str] = []
        self._class: list[str] = []
        # id(Call node) -> index into the owning function's calls list.
        self._call_index: dict[int, int] = {}

    # -- entry --------------------------------------------------------

    def run(self) -> ModuleSummary:
        body_fn = FunctionSummary(qualname=MODULE_BODY, line=1)
        self._with_function(body_fn, params=[], body=self.info.tree.body)
        return self.summary

    def note_lines(self) -> None:
        """Record the source text of every referenced line."""
        wanted: set[int] = set()
        for fn in self.summary.functions.values():
            wanted.add(fn.line)
            wanted.update(c.line for c in fn.calls)
            wanted.update(r[1] for r in fn.gt_reads)
            wanted.update(r[1] for r in fn.impure_reads)
            wanted.update(w[2] for w in fn.attr_writes)
            wanted.update(w[1] for w in fn.global_writes)
        wanted.update(line for _, line in self.summary.stage_runs)
        wanted.update(self.summary.mutable_globals.values())
        for line in sorted(wanted):
            text = self.info.line(line).strip()
            if text:
                self.summary.lines[line] = text

    # -- scope plumbing -----------------------------------------------

    def _with_function(self, fn: FunctionSummary, params: list[str],
                       body: list[ast.stmt]) -> None:
        """Extract ``body`` into ``fn``, saving/restoring scope state."""
        saved = (self._fn, self._assigns, self._var_types, self._globals)
        self._fn = fn
        self._fn.params = list(params)
        self._assigns = {}
        self._var_types = {}
        self._globals = set()
        self._env.append({})
        # Pre-bind defs in this body so forward references resolve.
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._env[-1][node.name] = self._def_ref(node.name)
        self.summary.functions[fn.qualname] = fn
        for node in body:
            self.visit(node)
        fn.return_atoms = sorted(self._expand(set(fn.return_atoms)))
        fn.attr_writes = [
            [attr, sorted(self._expand(set(atoms))), line]
            for attr, atoms, line in fn.attr_writes
        ]
        if fn.qualname == MODULE_BODY:
            # Top-level defs and aliases are the module's public refs.
            self.summary.module_refs.update(self._env[-1])
            self.summary.module_refs.update(self._var_types)
        self._env.pop()
        (self._fn, self._assigns, self._var_types, self._globals) = saved

    def _def_ref(self, name: str) -> str:
        qual = ".".join(self._qual + [name]) if self._qual else name
        return f"local:{qual}"

    def _lookup(self, name: str) -> str | None:
        """Resolve a bare name: local type, lexical defs, imports."""
        if name in self._var_types:
            return self._var_types[name]
        for scope in reversed(self._env):
            if name in scope:
                return scope[name]
        return self.bindings.get(name)

    def _ref_of(self, node: ast.AST) -> str | None:
        """Best-effort ref string of a callable/class expression."""
        parts, root = _dotted(node)
        if isinstance(root, ast.Name):
            if root.id == "self" and self._class:
                return ".".join(["self"] + parts) if parts else "self"
            base = self._lookup(root.id)
            if base is None:
                base = root.id  # builtin or unknown global
            return ".".join([base] + parts) if parts else base
        if isinstance(root, ast.Call):
            # ``Foo(...).method`` — resolve through the constructed type.
            inner = self._ref_of(root.func)
            if inner is not None and parts:
                return ".".join([inner] + parts)
        return None

    # -- dataflow atoms -----------------------------------------------

    def _atoms(self, node: ast.AST | None) -> set[str]:
        """Dataflow atoms of an expression (names unexpanded)."""
        if node is None:
            return set()
        out: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out.add(f"name:{sub.id}")
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx,
                                                               ast.Load):
                if sub.attr in self.gt_attrs:
                    out.add(f"gt:{sub.attr}:{sub.lineno}")
                else:
                    out.add(f"attr:{sub.attr}")
            elif isinstance(sub, ast.Call):
                index = self._call_index.get(id(sub))
                if index is not None:
                    out.add(f"call:{index}")
        return out

    def _expand(self, atoms: set[str]) -> set[str]:
        """Expand ``name:`` atoms through the assignment map to atoms."""
        out: set[str] = set()
        seen: set[str] = set()
        stack = list(atoms)
        params = set(self._fn.params) if self._fn else set()
        while stack:
            atom = stack.pop()
            if atom in seen:
                continue
            seen.add(atom)
            if not atom.startswith("name:"):
                out.add(atom)
                continue
            name = atom[5:]
            if name in params:
                out.add(f"param:{name}")
            if name in self._assigns:
                stack.extend(self._assigns[name])
        return out

    # -- statements ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node, is_async=True)

    def _function(self, node, is_async: bool) -> None:
        # Decorators and default values execute in the enclosing scope.
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            self.visit(default)
        qual = ".".join(self._qual + [node.name])
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        fn = FunctionSummary(qualname=qual, line=node.lineno,
                             is_async=is_async)
        self._qual.append(node.name)
        self._with_function(fn, params=params, body=node.body)
        self._qual.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        qual = ".".join(self._qual + [node.name])
        bases = [ref for base in node.bases
                 if (ref := self._ref_of(base)) is not None]
        entry: dict = {"bases": bases, "methods": {}, "attrs": {}}
        self.summary.classes[qual] = entry
        self._qual.append(node.name)
        self._class.append(qual)
        self._env.append({})
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                entry["methods"][item.name] = f"{qual}.{item.name}"
                self._function(item, is_async=isinstance(
                    item, ast.AsyncFunctionDef))
            elif isinstance(item, ast.ClassDef):
                self.visit(item)
            elif isinstance(item, ast.Assign):
                # Class-attribute callable binding: ``run = helper``.
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        ref = self._ref_of(item.value)
                        if ref is not None:
                            entry["attrs"][target.id] = ref
                self.visit(item.value)
            else:
                self.visit(item)
        self._env.pop()
        self._class.pop()
        self._qual.pop()

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Return(self, node: ast.Return) -> None:
        self.generic_visit(node)
        if self._fn is not None and node.value is not None:
            self._fn.return_atoms.extend(self._atoms(node.value))

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        atoms = self._atoms(node.value)
        if isinstance(node.value, ast.Call):
            ref = self._constructed_type(node.value)
        else:
            ref = self._ref_of(node.value)
        for target in node.targets:
            self._bind_target(target, atoms, ref, node)
        self._maybe_module_mutable(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            atoms = self._atoms(node.value)
            if isinstance(node.value, ast.Call):
                ref = self._constructed_type(node.value)
            else:
                ref = self._ref_of(node.value)
            self._bind_target(node.target, atoms, ref, node)
            self._maybe_module_mutable(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        atoms = self._atoms(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            self._assigns.setdefault(target.id, set()).update(atoms)
            self._note_global_write(target.id, node.lineno)
        elif isinstance(target, ast.Attribute):
            self._record_attr_write(target.attr, atoms, node.lineno)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.generic_visit(node)
        self._assigns.setdefault(node.target.id, set()).update(
            self._atoms(node.value))

    def visit_For(self, node: ast.For) -> None:
        self._bind_target(node.target, self._atoms(node.iter), None, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._bind_target(node.target, self._atoms(node.iter), None, node)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def _with_items(self, items: list[ast.withitem]) -> None:
        for item in items:
            if item.optional_vars is None:
                continue
            atoms = self._atoms(item.context_expr)
            ref = None
            if isinstance(item.context_expr, ast.Call):
                ref = self._constructed_type(item.context_expr)
            self._bind_target(item.optional_vars, atoms, ref,
                              item.context_expr)

    def _bind_target(self, target: ast.AST, atoms: set[str],
                     ref: str | None, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._assigns.setdefault(target.id, set()).update(atoms)
            if ref is not None:
                self._var_types[target.id] = ref
            elif target.id in self._var_types:
                del self._var_types[target.id]
            self._note_global_write(target.id, getattr(node, "lineno", 0),
                                    explicit_only=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, atoms, None, node)
        elif isinstance(target, ast.Attribute):
            self._record_attr_write(target.attr, atoms,
                                    getattr(node, "lineno", 0))
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self._note_global_write(base.id, getattr(node, "lineno", 0))
            elif isinstance(base, ast.Attribute):
                self._record_attr_write(base.attr, atoms,
                                        getattr(node, "lineno", 0))
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, atoms, None, node)

    def _record_attr_write(self, attr: str, atoms: set[str],
                           line: int) -> None:
        if self._fn is not None:
            self._fn.attr_writes.append([attr, sorted(atoms), line])

    def _note_global_write(self, name: str, line: int,
                           explicit_only: bool = False) -> None:
        """Record a write to a module-global name from function scope.

        Bare rebinding counts only under an explicit ``global``
        declaration (:data:`WRITE_GLOBAL`); item/mutator writes count
        whenever the name is not local to the function
        (:data:`WRITE_MUTATE`, best-effort: not a param and not
        assigned before the write).  The shared-state rule filters
        :data:`WRITE_MUTATE` records against the module's actual
        mutable globals, so a late-assigned local cannot false-fire.
        """
        if self._fn is None or self._fn.qualname == MODULE_BODY:
            return
        if name in self._globals:
            self._fn.global_writes.append([name, line, WRITE_GLOBAL])
            return
        if explicit_only:
            return
        if name in self._fn.params or name in self._assigns:
            return
        self._fn.global_writes.append([name, line, WRITE_MUTATE])

    def _maybe_module_mutable(self, node: ast.stmt) -> None:
        """Track module-level names bound to mutable containers."""
        if self._fn is None or self._fn.qualname != MODULE_BODY:
            return
        if self._qual:  # inside a class body, not module scope
            return
        value = getattr(node, "value", None)
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target] if isinstance(node, ast.AnnAssign)
                   else [])
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                     ast.ListComp, ast.DictComp, ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            ref = self._ref_of(value.func)
            mutable = ref in _MUTABLE_FACTORIES
        if not mutable:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.summary.mutable_globals[target.id] = node.lineno

    # -- calls --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._maybe_call(node)
        self.generic_visit(node)

    def _maybe_call(self, node: ast.Call) -> None:
        if self._fn is None or id(node) in self._call_index:
            return
        # Register nested calls inside the arguments first so the
        # ``call:I`` atoms of ``f(g(x))``'s inner call exist when the
        # outer call's argument atoms are computed.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    self._maybe_call(sub)
        ref = self._ref_of(node.func) or ""
        parts, _ = _dotted(node.func)
        attr = parts[-1] if parts else ""
        # getattr(x, "planted_attr") is a ground-truth read spelled late.
        if ref == "getattr" and len(node.args) >= 2:
            key = node.args[1]
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and key.value in self.gt_attrs):
                self._fn.gt_reads.append([key.value, node.lineno])
        index = len(self._fn.calls)
        self._call_index[id(node)] = index
        arg_atoms: set[str] = set()
        callable_args: list[list] = []
        for position, arg in enumerate(node.args):
            arg_atoms |= self._atoms(arg)
            if not isinstance(arg, ast.Call):
                arg_ref = self._ref_of(arg)
                if arg_ref is not None and self._is_callable_ref(arg_ref):
                    callable_args.append([position, arg_ref])
        for keyword in node.keywords:
            arg_atoms |= self._atoms(keyword.value)
            if keyword.arg and not isinstance(keyword.value, ast.Call):
                arg_ref = self._ref_of(keyword.value)
                if arg_ref is not None and self._is_callable_ref(arg_ref):
                    callable_args.append([keyword.arg, arg_ref])
        unseeded = (ref.endswith("default_rng")
                    and not node.args and not node.keywords)
        nargs = len(node.args) + len(node.keywords)
        self._fn.calls.append(CallSite(
            raw=ref, attr=attr, line=node.lineno, nargs=nargs,
            arg_atoms=sorted(self._expand_shallow(arg_atoms)),
            callable_args=callable_args, unseeded_rng=unseeded,
        ))
        # ``functools.partial(f, ...)`` freezes ``f`` for a later call;
        # record the edge at creation (best-effort unwrapping).
        if ref in ("functools.partial", "partial") and node.args:
            target_ref = self._ref_of(node.args[0])
            if target_ref is not None:
                self._fn.calls.append(CallSite(
                    raw=target_ref, attr="", line=node.lineno,
                    nargs=max(0, nargs - 1),
                    arg_atoms=sorted(self._expand_shallow(arg_atoms)),
                ))
        # Environment reads are impure-by-construction for cache keys.
        if ref in ("os.getenv", "os.environ.get"):
            self._fn.impure_reads.append(["os.environ", node.lineno])

    def _expand_shallow(self, atoms: set[str]) -> set[str]:
        """Like :meth:`_expand` but safe mid-extraction (unresolved
        names are dropped rather than chased through later bindings)."""
        out: set[str] = set()
        params = set(self._fn.params) if self._fn else set()
        for atom in atoms:
            if not atom.startswith("name:"):
                out.add(atom)
                continue
            name = atom[5:]
            if name in params:
                out.add(f"param:{name}")
            elif name in self._assigns:
                out |= {a for a in self._assigns[name]
                        if not a.startswith("name:")}
        return out

    def _is_callable_ref(self, ref: str) -> bool:
        """Whether a ref plausibly names a function/class (not a value)."""
        if ref.startswith(("local:", "self.")):
            return True
        head = ref.split(".")[0]
        return head in self.bindings or "." in ref

    def _constructed_type(self, call: ast.Call) -> str | None:
        """Type ref for ``x = Foo(...)`` / partial-target for partial."""
        ref = self._ref_of(call.func)
        if ref is None:
            return None
        if ref in ("functools.partial", "partial") and call.args:
            return self._ref_of(call.args[0])
        return ref

    # -- reads --------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._fn is not None and isinstance(node.ctx, ast.Load):
            if node.attr in self.gt_attrs:
                self._fn.gt_reads.append([node.attr, node.lineno])
            elif node.attr == "environ":
                if self._ref_of(node) == "os.environ":
                    self._fn.impure_reads.append(["os.environ", node.lineno])
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # Bare mutator calls on module globals: ``CACHE.update(...)``.
        value = node.value
        if (self._fn is not None and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _MUTATOR_METHODS
                and isinstance(value.func.value, ast.Name)):
            self._note_global_write(value.func.value.id, node.lineno)
        self.generic_visit(node)


def summarize_module(
    module: ModuleInfo, gt_attrs: Iterable[str] | None = None,
) -> ModuleSummary:
    """Extract the whole-program summary of one parsed module."""
    if gt_attrs is None:
        from ..contract import ground_truth_attributes

        gt_attrs = ground_truth_attributes()
    extractor = _Extractor(module, frozenset(gt_attrs))
    summary = extractor.run()
    _collect_stage_runs(extractor, summary)
    extractor.note_lines()
    return summary


def _is_stage_ref(ref: str) -> bool:
    return ref == "Stage" or ref == "local:Stage" or ref.endswith(".Stage")


def _collect_stage_runs(extractor: _Extractor,
                        summary: ModuleSummary) -> None:
    """Find pipeline Stage constructions and fingerprint_inputs calls.

    A function referenced as a Stage's ``run`` (second positional or
    ``run=`` keyword) is a cache-key-relevant compute root; so is any
    function *called inside* a ``fingerprint_inputs=`` expression —
    both feed the content-addressed key and must stay deterministic.
    """
    for fn in summary.functions.values():
        for call in fn.calls:
            if not _is_stage_ref(call.raw):
                continue
            for slot, ref in call.callable_args:
                if slot == 1 or slot == "run":
                    summary.stage_runs.append([ref, call.line])
    # fingerprint_inputs= call targets live inside the keyword
    # expression; one cheap re-walk of the tree picks them up.  Name
    # resolution here sees only module scope (imports + top-level
    # defs), which covers how stage catalogues are actually written.
    tree = extractor.info.tree
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        ref = extractor._ref_of(node.func) or ""
        if not _is_stage_ref(ref):
            continue
        for keyword in node.keywords:
            if keyword.arg != "fingerprint_inputs":
                continue
            for sub in ast.walk(keyword.value):
                if isinstance(sub, ast.Call):
                    sub_ref = extractor._ref_of(sub.func)
                    if sub_ref is not None:
                        summary.stage_runs.append([sub_ref, sub.lineno])
