"""Whole-program analysis layer over the per-module rule framework.

The single-walk rules in :mod:`repro.staticcheck.rules` see one module
at a time, so a planted-attribute read laundered through a helper in
another package, a wall-clock call three frames below a pipeline
stage, or a ``time.sleep`` buried under an async handler are all
invisible to them.  This package closes that gap:

* :mod:`~repro.staticcheck.wholeprogram.summaries` — compresses each
  module's AST into a JSON-serializable :class:`ModuleSummary` of
  functions, call sites, dataflow atoms and taint-relevant facts;
* :mod:`~repro.staticcheck.wholeprogram.callgraph` — links summaries
  into a program-wide call graph (aliases, re-exports, class-attribute
  method binding, ``functools.partial`` best-effort);
* :mod:`~repro.staticcheck.wholeprogram.taint` — interprocedural
  ground-truth taint fixpoint over the graph;
* :mod:`~repro.staticcheck.wholeprogram.rulebase` — the
  :class:`WholeProgramRule` registry the three interprocedural rule
  families plug into;
* :mod:`~repro.staticcheck.wholeprogram.cache` — content-addressed
  per-module fragments through the pipeline's
  :class:`~repro.pipeline.core.ArtifactStore`, so warm ``repro lint``
  runs re-analyze only modules whose source changed;
* :mod:`~repro.staticcheck.wholeprogram.engine` — the orchestrator the
  runner calls: cached/parallel per-module analysis plus the global
  propagation phase.

Summaries — not ASTs — are the unit of caching and of inter-process
transfer, which is what makes incremental and ``--jobs`` linting cheap.
"""

from .callgraph import CallGraph, Program
from .engine import analyze_modules, module_fragment
from .rulebase import (
    WholeProgramRule,
    all_wholeprogram_rules,
    get_wholeprogram_rule,
    register_wholeprogram,
)
from .summaries import (
    SUMMARY_SCHEMA,
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "ModuleSummary",
    "Program",
    "SUMMARY_SCHEMA",
    "WholeProgramRule",
    "all_wholeprogram_rules",
    "analyze_modules",
    "get_wholeprogram_rule",
    "module_fragment",
    "register_wholeprogram",
    "summarize_module",
]
