"""Registry and base class for interprocedural (whole-program) rules.

Mirrors the per-module :class:`~repro.staticcheck.framework.Rule`
registry, but a :class:`WholeProgramRule` sees the *entire* linked
program — every module summary plus the resolved call graph — and so
can follow taint through helpers, purity through call chains, and
blocking calls under async roots.

Each rule carries a ``version``: bumping it invalidates the
content-addressed lint-fragment cache for every module, because a new
rule semantics can change findings without any source changing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterable

from ...errors import DataError
from ..framework import Finding

if TYPE_CHECKING:
    from .callgraph import CallGraph, Program
    from .summaries import ModuleSummary


class WholeProgramRule:
    """One program-wide invariant checked over the linked call graph."""

    #: Stable rule identifier used in noqa comments and baselines.
    id: ClassVar[str] = ""
    #: One-line summary shown in reports.
    title: ClassVar[str] = ""
    #: Why the invariant matters (``repro lint --list-rules``).
    rationale: ClassVar[str] = ""
    #: Cache-busting semantic version of the rule implementation.
    version: ClassVar[int] = 1

    def check_program(self, program: "Program",
                      graph: "CallGraph") -> Iterable[Finding]:
        """Yield findings over the whole program."""
        return ()

    def finding(self, summary: "ModuleSummary", line: int,
                message: str) -> Finding:
        """Build a finding anchored at ``line`` of ``summary``'s module.

        The source text comes from the summary's recorded lines, so a
        warm cache hit reproduces findings byte-identically without
        re-reading the file.
        """
        return Finding(
            rule=self.id, path=summary.path, line=line, col=0,
            message=message, source_line=summary.line_text(line),
        )


#: Registry of whole-program rule classes by id, in registration order.
_WP_REGISTRY: dict[str, type[WholeProgramRule]] = {}


def register_wholeprogram(
    rule_cls: type[WholeProgramRule],
) -> type[WholeProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_cls.id:
        raise DataError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _WP_REGISTRY:
        raise DataError(f"duplicate whole-program rule id {rule_cls.id!r}")
    _WP_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_wholeprogram_rules() -> list[WholeProgramRule]:
    """Fresh instances of every registered whole-program rule."""
    from .. import rules  # noqa: F401  (importing registers the rule pack)

    return [cls() for cls in _WP_REGISTRY.values()]


def get_wholeprogram_rule(rule_id: str) -> WholeProgramRule:
    """Instance of one registered whole-program rule by id."""
    from .. import rules  # noqa: F401

    try:
        return _WP_REGISTRY[rule_id]()
    except KeyError:
        raise DataError(
            f"unknown whole-program rule {rule_id!r}; "
            f"have {sorted(_WP_REGISTRY)}"
        ) from None


def rule_versions() -> dict[str, int]:
    """Rule id -> semantic version (part of every cache key)."""
    from .. import rules  # noqa: F401

    return {rule_id: cls.version for rule_id, cls in _WP_REGISTRY.items()}
