"""Link per-module summaries into a program-wide call graph.

A *node* is ``"dotted.module:qualname"`` — one
:class:`~repro.staticcheck.wholeprogram.summaries.FunctionSummary`
(including each module's ``<module>`` body).  Edges come from resolving
every call site's ``raw`` ref against the program:

* ``local:qual`` — a def in the calling module (closures included);
* ``self.name`` — method lookup on the caller's own class, walking
  class-attribute bindings and base classes;
* dotted refs — split on the longest known-module prefix, then the
  symbol path is chased through that module's top-level defs, aliases
  and re-export bindings (cycle-guarded), so
  ``from .core import Stage`` / ``pkg.__init__`` re-exports and
  ``alias = impl`` both resolve to the defining def;
* a ref that resolves to a *class* becomes an edge to its
  ``__init__`` (inherited ``__init__`` found through bases) —
  constructing an object runs code;
* anything else (stdlib, numpy, injected ports) stays unresolved:
  rules match those by raw string against their sink sets.

Resolution is deliberately best-effort and *under*-approximating on
dynamic dispatch: a ref that cannot be pinned to one def produces no
edge rather than an explosion of maybes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .summaries import MODULE_BODY, CallSite, FunctionSummary, ModuleSummary

#: Separator between module and function qualname in node ids.
NODE_SEP = ":"


def node_id(module: str, qualname: str) -> str:
    return f"{module}{NODE_SEP}{qualname}"


def split_node(node: str) -> tuple[str, str]:
    module, _, qualname = node.partition(NODE_SEP)
    return module, qualname


@dataclass
class Edge:
    """One resolved call: caller node -> callee node at a call site."""

    caller: str
    callee: str
    site: CallSite

    @property
    def line(self) -> int:
        return self.site.line


class Program:
    """All module summaries plus the symbol-resolution machinery."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        # Module names sorted longest-first for dotted-prefix splits.
        self._by_length = sorted(self.modules, key=len, reverse=True)

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def iter_functions(self) -> Iterator[tuple[str, ModuleSummary,
                                               FunctionSummary]]:
        """Every (node id, module summary, function summary) triple."""
        for name in sorted(self.modules):
            summary = self.modules[name]
            for qualname in sorted(summary.functions):
                yield (node_id(name, qualname), summary,
                       summary.functions[qualname])

    def function(self, node: str) -> FunctionSummary | None:
        module, qualname = split_node(node)
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.functions.get(qualname)

    def module_of(self, node: str) -> ModuleSummary | None:
        return self.modules.get(split_node(node)[0])

    # -- symbol resolution --------------------------------------------

    def split_module_prefix(self, dotted: str) -> tuple[str, list[str]] | None:
        """Longest known-module prefix of a dotted ref, plus the rest."""
        for candidate in self._by_length:
            if dotted == candidate:
                return candidate, []
            if dotted.startswith(candidate + "."):
                rest = dotted[len(candidate) + 1:].split(".")
                return candidate, rest
        return None

    def resolve_call(self, module: str, raw: str,
                     caller: FunctionSummary | None = None) -> str | None:
        """Node id a call with ref ``raw`` lands on, or None if external."""
        kind = self._resolve_ref(module, raw, caller, seen=set())
        if kind is None:
            return None
        tag, payload = kind
        if tag == "fn":
            return payload
        # Constructing a class runs its (possibly inherited) __init__.
        cls_module, cls_qual = payload
        init = self._resolve_method(cls_module, cls_qual, ["__init__"],
                                    seen=set())
        if init is not None and init[0] == "fn":
            return init[1]
        return None

    def _resolve_ref(self, module: str, raw: str,
                     caller: FunctionSummary | None,
                     seen: set[tuple[str, str]]):
        """Resolve a ref to ("fn", node) or ("class", (module, qual))."""
        if not raw or (module, raw) in seen:
            return None
        seen.add((module, raw))
        if raw.startswith("local:"):
            return self._resolve_qual(module, raw[6:].split("."), seen)
        if raw == "self" or raw.startswith("self."):
            if caller is None:
                return None
            owner = self._owning_class(module, caller.qualname)
            if owner is None:
                return None
            parts = raw.split(".")[1:]
            if not parts:
                return ("class", (module, owner))
            return self._resolve_method(module, owner, parts, seen)
        if "." in raw:
            split = self.split_module_prefix(raw)
            if split is None:
                return None  # external (stdlib / third-party)
            target_module, parts = split
            if not parts:
                return ("fn", node_id(target_module, MODULE_BODY))
            return self._resolve_in_module(target_module, parts, seen)
        # Bare name: a def/alias/binding in the calling module, else
        # a builtin — which is external by definition.
        return self._resolve_in_module(module, [raw], seen)

    def _resolve_in_module(self, module: str, parts: list[str],
                           seen: set[tuple[str, str]]):
        summary = self.modules.get(module)
        if summary is None:
            return None
        direct = self._resolve_qual(module, parts, seen)
        if direct is not None:
            return direct
        head, rest = parts[0], parts[1:]
        ref = summary.module_refs.get(head)
        if ref is not None:
            if ref.startswith("local:"):
                return self._resolve_qual(
                    module, ref[6:].split(".") + rest, seen)
            return self._resolve_ref(
                module, ".".join([ref] + rest), None, seen)
        origin = summary.bindings.get(head)
        if origin is not None:
            return self._resolve_ref(
                module, ".".join([origin] + rest), None, seen)
        return None

    def _resolve_qual(self, module: str, parts: list[str],
                      seen: set[tuple[str, str]]):
        """Resolve a qualname path against one module's defs/classes."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        qual = ".".join(parts)
        if qual in summary.functions:
            return ("fn", node_id(module, qual))
        # Longest class prefix, then method/attr lookup on it.
        for split_at in range(len(parts), 0, -1):
            cls_qual = ".".join(parts[:split_at])
            if cls_qual in summary.classes:
                rest = parts[split_at:]
                if not rest:
                    return ("class", (module, cls_qual))
                return self._resolve_method(module, cls_qual, rest, seen)
        return None

    def _resolve_method(self, module: str, cls_qual: str, parts: list[str],
                        seen: set[tuple[str, str]]):
        """Look up a method/attr chain on a class, walking bases."""
        key = (module, f"{cls_qual}::{'.'.join(parts)}")
        if key in seen:
            return None
        seen.add(key)
        summary = self.modules.get(module)
        if summary is None or cls_qual not in summary.classes:
            return None
        entry = summary.classes[cls_qual]
        head, rest = parts[0], parts[1:]
        method_qual = entry["methods"].get(head)
        if method_qual is not None and not rest:
            return ("fn", node_id(module, method_qual))
        attr_ref = entry["attrs"].get(head)
        if attr_ref is not None:
            resolved = self._resolve_ref(module, attr_ref, None, seen)
            if resolved is not None and not rest:
                return resolved
            if (resolved is not None and resolved[0] == "class" and rest):
                cls_module, inner_qual = resolved[1]
                return self._resolve_method(cls_module, inner_qual, rest,
                                            seen)
            return None
        for base_ref in entry["bases"]:
            base = self._resolve_ref(module, base_ref, None, seen)
            if base is not None and base[0] == "class":
                base_module, base_qual = base[1]
                found = self._resolve_method(base_module, base_qual, parts,
                                             seen)
                if found is not None:
                    return found
        return None

    def _owning_class(self, module: str, qualname: str) -> str | None:
        """Innermost class a method qualname belongs to."""
        summary = self.modules[module]
        parts = qualname.split(".")
        for split_at in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:split_at])
            if candidate in summary.classes:
                return candidate
        return None


@dataclass
class CallGraph:
    """Resolved edges over a :class:`Program`, plus reachability."""

    program: Program
    edges: dict[str, list[Edge]] = field(default_factory=dict)

    @classmethod
    def build(cls, program: Program) -> "CallGraph":
        graph = cls(program=program)
        for node, summary, fn in program.iter_functions():
            out: list[Edge] = []
            for site in fn.calls:
                callee = program.resolve_call(summary.module, site.raw, fn)
                if callee is not None:
                    out.append(Edge(caller=node, callee=callee, site=site))
            if out:
                graph.edges[node] = out
        return graph

    def out_edges(self, node: str) -> list[Edge]:
        return self.edges.get(node, [])

    def resolve_target(self, module: str, ref: str) -> str | None:
        """Node a bare callable *reference* (not a call) points at."""
        return self.program.resolve_call(module, ref, None)

    def reachable(
        self,
        roots: Iterable[str],
        stop: Callable[[str], bool] | None = None,
    ) -> dict[str, tuple[str, Edge] | None]:
        """BFS closure from ``roots`` over resolved edges.

        Returns ``node -> (parent node, edge)`` (roots map to None), so
        callers can rebuild the full propagation/call chain of any
        reached node with :meth:`chain`.  ``stop`` prunes traversal
        *through* a node (the node itself is still recorded).
        """
        parents: dict[str, tuple[str, Edge] | None] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root not in parents and self.program.function(root) is not None:
                parents[root] = None
                queue.append(root)
        while queue:
            node = queue.popleft()
            if stop is not None and stop(node):
                continue
            for edge in self.out_edges(node):
                if edge.callee not in parents:
                    parents[edge.callee] = (node, edge)
                    queue.append(edge.callee)
        return parents

    def chain(
        self,
        parents: dict[str, tuple[str, Edge] | None],
        node: str,
    ) -> list[str]:
        """Root-to-node call chain as human-readable hops."""
        hops: list[str] = []
        current: str | None = node
        while current is not None:
            entry = parents.get(current)
            hops.append(current)
            if entry is None:
                break
            current = entry[0]
        return list(reversed(hops))
