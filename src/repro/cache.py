"""Content-addressed on-disk cache of simulation runs.

A simulation run is fully determined by its :class:`SimulationConfig`
(see ``tests/test_engine_determinism.py``), so a run can be keyed by a
stable hash of the config plus the package version.  The cache exploits
the split inside :mod:`repro.failures.engine`:

* the *fleet and calendar* are cheap and rebuilt deterministically from
  the config on load;
* the *ticket log* and the environment/BMS condition matrices — the
  expensive stochastic parts — are stored as a compressed ``.npz``
  column bundle next to a ``meta.json`` describing the key, config
  fingerprint and package version.

A warm :func:`simulate_cached` therefore performs **no ticket
generation** (``_generate_tickets`` is never called) and returns a
:class:`~repro.failures.engine.SimulationResult` bit-identical to a
fresh :func:`~repro.failures.engine.simulate` of the same config.

Entries are invalidated implicitly: a version bump or any config-schema
change alters the key, and :meth:`RunCache.prune` keeps the store
bounded (oldest entries evicted first).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import shutil
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from .datacenter.builder import build_fleet
from .environment.bms import BuildingManagementSystem
from .environment.conditions import EnvironmentSeries
from .errors import DataError
from .failures.engine import SimulationResult, simulate
from .failures.tickets import TicketLog
from .rng import RngRegistry
from .telemetry.schema import TICKET_LOG_COLUMNS
from .units import SimCalendar

if TYPE_CHECKING:
    from .config import SimulationConfig

# Bump when the stored column layout changes; keys include it, so old
# bundles are simply never looked up again.
CACHE_SCHEMA = 1

# Default bound on the number of cached runs kept by automatic pruning.
DEFAULT_MAX_ENTRIES = 32

# The columnar ticket layout persisted in each bundle — the declared
# TicketLog schema, not a private copy of it.
_TICKET_COLUMNS = TICKET_LOG_COLUMNS


def config_fingerprint(config: "SimulationConfig") -> dict:
    """JSON-serializable, order-stable description of a config.

    Everything that influences the run must appear here: the dataclass
    tree covers seed, window, fleet knobs (including SKU mixes) and
    fault base rates.
    """
    from . import __version__

    return {
        "config": dataclasses.asdict(config),
        "version": __version__,
        "schema": CACHE_SCHEMA,
    }


def config_key(config: "SimulationConfig") -> str:
    """Stable content hash addressing one simulation run."""
    payload = json.dumps(config_fingerprint(config), sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def save_run_bundle(
    entry: pathlib.Path,
    result: SimulationResult,
    meta: dict,
    clock: Callable[[], float] = time.time,
) -> pathlib.Path:
    """Persist one run's stochastic columns under ``entry``.

    Writes ``tickets.npz`` (ticket columns plus environment/BMS
    matrices) and ``meta.json`` (the caller's ``meta`` extended with
    ticket/fleet counts and a ``created`` stamp from ``clock``).  Shared
    by :class:`RunCache` and the pipeline :class:`~repro.pipeline.core.ArtifactStore`
    so both stores speak one bundle format.
    """
    entry.mkdir(parents=True, exist_ok=True)
    log = result.tickets
    np.savez_compressed(
        entry / "tickets.npz",
        env_temp_f=result.environment.temp_f,
        env_rh=result.environment.rh,
        bms_temp_f=result.bms.temp_f,
        bms_rh=result.bms.rh,
        **{name: getattr(log, name) for name in _TICKET_COLUMNS},
    )
    full_meta = dict(meta)
    full_meta.update({
        "n_tickets": len(log),
        "n_racks": result.fleet.n_racks,
        "n_days": result.n_days,
        "created": clock(),
    })
    (entry / "meta.json").write_text(json.dumps(full_meta, indent=2, default=str))
    return entry


def load_run_bundle(
    entry: pathlib.Path,
    config: "SimulationConfig",
    meta: dict,
) -> SimulationResult:
    """Reconstitute a run from a bundle written by :func:`save_run_bundle`.

    Fleet and calendar are rebuilt deterministically from ``config``;
    tickets and environment/BMS matrices come from disk, so the loaded
    path performs no simulation work (in particular it never calls
    ``_generate_tickets``).  Raises :class:`DataError` when the bundle
    is truncated, garbled or inconsistent with its metadata.
    """
    npz_path = entry / "tickets.npz"
    try:
        with np.load(npz_path) as bundle:
            columns = {name: bundle[name] for name in _TICKET_COLUMNS}
            env_temp_f = bundle["env_temp_f"]
            env_rh = bundle["env_rh"]
            bms_temp_f = bundle["bms_temp_f"]
            bms_rh = bundle["bms_rh"]
    except (OSError, ValueError, KeyError) as error:
        # Truncated/garbled npz (numpy raises ValueError) or a bundle
        # missing columns: name the entry instead of leaking numpy's
        # pickle warning.
        raise DataError(f"cache entry {entry} is corrupt: {error}") from error
    log = TicketLog()
    log.append_chunk(**columns)
    log.finalize()
    if len(log) != int(meta.get("n_tickets", -1)):
        raise DataError(
            f"cache entry {entry} is corrupt: expected "
            f"{meta.get('n_tickets')} tickets, loaded {len(log)}"
        )
    fleet = build_fleet(config.fleet, RngRegistry(config.seed))
    calendar = SimCalendar(
        start_day_of_week=config.start_day_of_week,
        start_day_of_year=config.start_day_of_year,
    )
    environment = EnvironmentSeries.from_arrays(fleet, env_temp_f, env_rh)
    bms = BuildingManagementSystem(fleet).rebuild_log(bms_temp_f, bms_rh)
    return SimulationResult(
        config=config, fleet=fleet, calendar=calendar,
        environment=environment, bms=bms, tickets=log,
    )


class RunCache:
    """On-disk store of completed simulation runs, keyed by config hash.

    Args:
        root: cache directory; created on first use.  One subdirectory
            per entry: ``<root>/<key>/{tickets.npz, meta.json}``.
        clock: source of the ``created`` timestamps written to entry
            metadata.  Defaults to wall-clock time; tests inject a fake
            so eviction order is replayable.
    """

    def __init__(self, root: str | pathlib.Path,
                 clock: Callable[[], float] = time.time):
        self.root = pathlib.Path(root)
        self._clock = clock

    def entry_dir(self, key: str) -> pathlib.Path:
        """Directory holding the bundle for ``key``."""
        return self.root / key

    def has(self, config: "SimulationConfig") -> bool:
        """True when a complete bundle exists for ``config``."""
        entry = self.entry_dir(config_key(config))
        return (entry / "meta.json").exists() and (entry / "tickets.npz").exists()

    def _read_meta(self, entry: pathlib.Path) -> dict | None:
        """Metadata of a complete entry, or None (evicting wreckage).

        A missing or truncated ``meta.json`` — the signature of a
        writer that crashed mid-``put`` — is not an error worth
        aborting an analysis over: the entry is evicted so the caller
        re-simulates and the next ``put`` rewrites it cleanly.
        """
        meta_path = entry / "meta.json"
        if not (meta_path.exists() and (entry / "tickets.npz").exists()):
            if entry.exists():
                shutil.rmtree(entry, ignore_errors=True)
            return None
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            shutil.rmtree(entry, ignore_errors=True)
            return None
        if not isinstance(meta, dict):
            shutil.rmtree(entry, ignore_errors=True)
            return None
        return meta

    def get(self, config: "SimulationConfig") -> SimulationResult | None:
        """Load the cached run for ``config``, or None on a miss.

        A missing or truncated ``meta.json`` (crashed writer) counts as
        a miss and evicts the entry; a *complete but wrong* entry (key
        mismatch, garbled bundle) still raises :class:`DataError`, since
        that points at a real bug rather than an interrupted write.
        """
        key = config_key(config)
        entry = self.entry_dir(key)
        meta = self._read_meta(entry)
        if meta is None:
            return None
        if meta.get("key") != key:
            raise DataError(
                f"cache entry {entry} is corrupt: key mismatch "
                f"({meta.get('key')!r} != {key!r})"
            )
        return load_run_bundle(entry, config, meta)

    def put(self, result: SimulationResult,
            max_entries: int = DEFAULT_MAX_ENTRIES) -> pathlib.Path:
        """Store a completed run; prunes the store to ``max_entries``.

        Returns the entry directory.  Writing is atomic per file enough
        for the single-writer CLI usage; concurrent writers of the
        *same* key produce identical bytes (determinism), so a race is
        harmless.
        """
        key = config_key(result.config)
        entry = self.entry_dir(key)
        meta = dict(config_fingerprint(result.config))
        meta["key"] = key
        save_run_bundle(entry, result, meta, clock=self._clock)
        if max_entries:
            self.prune(max_entries)
        return entry

    def entries(self) -> list[pathlib.Path]:
        """All complete entry directories, oldest first."""
        if not self.root.exists():
            return []
        found = [
            path for path in self.root.iterdir()
            if (path / "meta.json").exists() and (path / "tickets.npz").exists()
        ]
        return sorted(found, key=lambda p: (p / "meta.json").stat().st_mtime)

    def _incomplete_entries(self) -> list[pathlib.Path]:
        """Key-shaped directories missing one of the two bundle files.

        Only directories whose name looks like a content key (32 hex
        chars) qualify — anything else under the root (for instance a
        pipeline artifact store sharing the directory) is left alone.
        """
        if not self.root.exists():
            return []
        return [
            path for path in self.root.iterdir()
            if path.is_dir()
            and len(path.name) == 32
            and all(c in "0123456789abcdef" for c in path.name)
            and not ((path / "meta.json").exists()
                     and (path / "tickets.npz").exists())
        ]

    def prune(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> int:
        """Evict oldest entries beyond ``max_entries``; returns #removed.

        Also sweeps out half-written entries left by a crashed writer
        (key-shaped directories missing ``meta.json`` or the bundle),
        which would otherwise leak disk forever since :meth:`entries`
        never lists them.
        """
        if max_entries < 0:
            raise DataError(f"max_entries must be >= 0, got {max_entries}")
        entries = self.entries()
        excess = entries[:max(0, len(entries) - max_entries)]
        excess.extend(self._incomplete_entries())
        for entry in excess:
            shutil.rmtree(entry, ignore_errors=True)
        return len(excess)

    def clear(self) -> None:
        """Remove every cache entry."""
        if self.root.exists():
            shutil.rmtree(self.root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Generic single-file array bundles (used by the streaming block segments
# and the pipeline "blocks" codec).


def save_array_bundle(
    path: str | pathlib.Path,
    arrays: dict[str, np.ndarray],
    meta: dict | None = None,
) -> pathlib.Path:
    """Write named arrays plus a JSON ``meta`` dict to one ``.npz`` file.

    Uses the *uncompressed* npz container on purpose: ``np.savez`` stores
    members with ``ZIP_STORED``, so :func:`load_array_bundle` can hand
    back zero-copy memory maps of the raw array bytes.  The metadata
    rides along as a ``meta_json`` uint8 member (same convention as the
    stream checkpoints).
    """
    path = pathlib.Path(path)
    if "meta_json" in arrays:
        raise DataError("'meta_json' is reserved for bundle metadata")
    payload = dict(arrays)
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta or {}, sort_keys=True).encode("utf-8"), dtype=np.uint8,
    )
    with path.open("wb") as handle:
        np.savez(handle, **payload)
    return path


def _npz_member_windows(path: pathlib.Path) -> dict[str, tuple[int, int]]:
    """``name -> (absolute data offset, compress_type)`` per npz member.

    The zip central directory records where each member's *local header*
    starts; the variable-length local header (30 fixed bytes + name +
    extra field) is parsed to find where the member's bytes begin.
    """
    import struct
    import zipfile

    windows: dict[str, tuple[int, int]] = {}
    with zipfile.ZipFile(path) as bundle, path.open("rb") as raw:
        for info in bundle.infolist():
            raw.seek(info.header_offset)
            header = raw.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise DataError(f"{path}: corrupt zip member {info.filename!r}")
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            offset = info.header_offset + 30 + name_len + extra_len
            windows[info.filename] = (offset, info.compress_type)
    return windows


def load_array_bundle(
    path: str | pathlib.Path,
    mmap: bool = True,
) -> tuple[dict[str, np.ndarray], dict]:
    """Read back a :func:`save_array_bundle` file: ``(arrays, meta)``.

    With ``mmap=True`` each stored member is returned as a read-only
    :class:`numpy.memmap` onto the npz file itself (no copy, lazily
    paged), falling back to a plain load for members that cannot be
    mapped (compressed or pickled).  ``np.load(mmap_mode=...)`` does not
    map npz members, hence the manual offset walk.
    """
    import zipfile

    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such bundle: {path}")
    try:
        arrays: dict[str, np.ndarray] = {}
        windows = _npz_member_windows(path) if mmap else {}
        with np.load(path, allow_pickle=False) as bundle:
            for name in bundle.files:
                member = f"{name}.npy"
                mapped = None
                if mmap and windows.get(member, (0, -1))[1] == zipfile.ZIP_STORED:
                    mapped = _mmap_npy_member(path, windows[member][0])
                arrays[name] = bundle[name] if mapped is None else mapped
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise DataError(f"bundle {path} is corrupt: {error}") from error
    raw = arrays.pop("meta_json", None)
    meta: dict = {}
    if raw is not None:
        try:
            meta = json.loads(np.asarray(raw, dtype=np.uint8).tobytes().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise DataError(f"bundle {path} metadata is corrupt: {error}") from None
    return arrays, meta


def _mmap_npy_member(path: pathlib.Path, offset: int) -> np.ndarray | None:
    """Memory-map one stored ``.npy`` member at ``offset``, or None."""
    with path.open("rb") as handle:
        handle.seek(offset)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                header = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                header = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            shape, fortran, dtype = header
        except (ValueError, OSError):
            return None
        if dtype.hasobject:
            return None
        data_offset = handle.tell()
    return np.memmap(
        path, dtype=dtype, mode="r", offset=data_offset, shape=shape,
        order="F" if fortran else "C",
    )


def simulate_cached(
    config: "SimulationConfig",
    cache: RunCache | None = None,
) -> tuple[SimulationResult, bool]:
    """Simulate through the cache: ``(result, was_cache_hit)``.

    With no cache (``cache=None``) this is plain
    :func:`~repro.failures.engine.simulate`.  On a miss the fresh run is
    stored before returning, so the next identical call is warm.  A
    corrupt entry (truncated bundle, key mismatch) counts as a miss and
    is overwritten by the fresh run — the cache self-heals.
    """
    if cache is not None:
        try:
            cached = cache.get(config)
        except DataError:
            cached = None
        if cached is not None:
            return cached, True
    result = simulate(config)
    if cache is not None:
        cache.put(result)
    return result, False
