"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler
while still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A scenario or model configuration is invalid or inconsistent."""


class SchemaError(ReproError):
    """A telemetry table or feature schema is malformed or mismatched."""


class DataError(ReproError):
    """Input data violates an invariant (empty table, NaNs, bad dtype)."""


class FitError(ReproError):
    """A statistical model could not be fitted to the given data."""


class FormulaError(ReproError):
    """A ``Metric ~ X1, N(X2), ...`` formula string could not be parsed."""


class SimulationError(ReproError):
    """The failure engine reached an invalid internal state."""
