"""Workload catalog and rack-level assignment policy.

Table III lists seven workload types: W1 & W2 are compute, W3 is HPC,
W4 & W7 are storage-compute, and W5 & W6 are storage-data.  In the
paper's facilities "infrastructure provisioning for a workload is done at
the rack level" (§IV) — every rack is wholly owned by one workload — and
our builder follows the same policy.

Ground truth planted here (verified by the Fig 3/6 benches):

* W2 carries the highest stress multiplier and W3 (HPC) the lowest, with
  storage-data workloads (W5, W6) below storage-compute ones (W4, W7).
* Utilization follows a weekday/weekend swing; the failure engine couples
  hazard to utilization, producing the day-of-week effect of Fig 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import ConfigError
from ..groundtruth import GROUND_TRUTH
from .sku import SkuCategory


class WorkloadCategory(Enum):
    """Broad workload families from Table III."""

    COMPUTE = "compute"
    HPC = "hpc"
    STORAGE_COMPUTE = "storage-compute"
    STORAGE_DATA = "storage-data"


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one workload type.

    Attributes:
        name: workload identifier ``W1`` .. ``W7``.
        category: broad family per Table III.
        stress_multiplier: ground-truth multiplier on hardware hazard
            attributable to how hard the workload drives the machines.
        disk_stress: extra multiplier applied to *disk* hazards only
            (I/O-heavy workloads wear disks faster).
        weekday_utilization: mean utilization (0..1) on weekdays.
        weekend_utilization: mean utilization (0..1) on weekends.
        software_churn: relative rate of deployments/config pushes; drives
            software-failure ticket volume, which peaks on weekdays.
    """

    name: str
    category: WorkloadCategory
    # Planted hazard inputs (see repro.groundtruth): the analysis layer
    # must infer workload stress from tickets, never read it.
    stress_multiplier: float = field(metadata=GROUND_TRUTH)
    disk_stress: float = field(metadata=GROUND_TRUTH)
    weekday_utilization: float
    weekend_utilization: float
    software_churn: float

    def __post_init__(self) -> None:
        if self.stress_multiplier <= 0 or self.disk_stress <= 0:
            raise ConfigError(f"{self.name}: stress multipliers must be positive")
        for util in (self.weekday_utilization, self.weekend_utilization):
            if not 0.0 < util <= 1.0:
                raise ConfigError(f"{self.name}: utilization {util} outside (0, 1]")
        if self.software_churn < 0:
            raise ConfigError(f"{self.name}: software_churn must be >= 0")

    def utilization(self, is_weekend: bool) -> float:
        """Mean utilization for a weekday/weekend day."""
        return self.weekend_utilization if is_weekend else self.weekday_utilization


class WorkloadCatalog:
    """Ordered, name-addressable collection of :class:`WorkloadSpec`."""

    def __init__(self, workloads: list[WorkloadSpec]):
        if not workloads:
            raise ConfigError("workload catalog cannot be empty")
        names = [workload.name for workload in workloads]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate workload names: {names}")
        self._workloads = list(workloads)
        self._by_name = {workload.name: workload for workload in workloads}

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self):
        return iter(self._workloads)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> WorkloadSpec:
        """Return the workload named ``name``; ConfigError if unknown."""
        if name not in self._by_name:
            raise ConfigError(f"unknown workload {name!r}; have {sorted(self._by_name)}")
        return self._by_name[name]

    @property
    def names(self) -> list[str]:
        """Workload names in catalog order."""
        return [workload.name for workload in self._workloads]

    def index_of(self, name: str) -> int:
        """Positional index of workload ``name`` within the catalog."""
        self.get(name)
        return self.names.index(name)


def default_catalog() -> WorkloadCatalog:
    """The seven-workload catalog matching Table III and Fig 6."""
    return WorkloadCatalog([
        WorkloadSpec(
            name="W1", category=WorkloadCategory.COMPUTE,
            stress_multiplier=1.5, disk_stress=1.0,
            weekday_utilization=0.75, weekend_utilization=0.45,
            software_churn=1.2,
        ),
        WorkloadSpec(
            name="W2", category=WorkloadCategory.COMPUTE,
            stress_multiplier=2.2, disk_stress=1.1,
            weekday_utilization=0.85, weekend_utilization=0.50,
            software_churn=1.5,
        ),
        WorkloadSpec(
            name="W3", category=WorkloadCategory.HPC,
            stress_multiplier=0.5, disk_stress=0.7,
            weekday_utilization=0.90, weekend_utilization=0.88,
            software_churn=0.3,
        ),
        WorkloadSpec(
            name="W4", category=WorkloadCategory.STORAGE_COMPUTE,
            stress_multiplier=1.6, disk_stress=1.7,
            weekday_utilization=0.70, weekend_utilization=0.50,
            software_churn=1.0,
        ),
        WorkloadSpec(
            name="W5", category=WorkloadCategory.STORAGE_DATA,
            stress_multiplier=0.9, disk_stress=1.3,
            weekday_utilization=0.55, weekend_utilization=0.45,
            software_churn=0.6,
        ),
        WorkloadSpec(
            name="W6", category=WorkloadCategory.STORAGE_DATA,
            stress_multiplier=1.0, disk_stress=1.4,
            weekday_utilization=0.60, weekend_utilization=0.48,
            software_churn=0.7,
        ),
        WorkloadSpec(
            name="W7", category=WorkloadCategory.STORAGE_COMPUTE,
            stress_multiplier=1.4, disk_stress=1.6,
            weekday_utilization=0.72, weekend_utilization=0.52,
            software_churn=1.1,
        ),
    ])


# Which workloads a rack of a given SKU category may host.  The coupling
# is deliberate: it is one of the confounds that breaks single-factor SKU
# comparisons (a compute SKU's racks see compute workloads' stress).
_CATEGORY_AFFINITY: dict[SkuCategory, list[str]] = {
    SkuCategory.COMPUTE: ["W1", "W2"],
    SkuCategory.STORAGE: ["W5", "W6"],
    SkuCategory.MIXED: ["W4", "W7"],
    SkuCategory.HPC: ["W3"],
}


def eligible_workloads(category: SkuCategory) -> list[str]:
    """Workload names a rack of SKU ``category`` may be assigned."""
    return list(_CATEGORY_AFFINITY[category])


def assign_workload(
    category: SkuCategory,
    sku_name: str,
    rng: np.random.Generator,
    biased: bool = True,
) -> str:
    """Pick a workload for a new rack.

    The assignment is affinity-based with a planted confound pair: racks
    of SKU ``S2`` are biased towards the stressful compute workload
    ``W2`` (90/10) while ``S4`` racks are biased towards the milder
    ``W1`` (80/20).  Together with S2's hot-region placement and young
    age profile this inflates S2's *observed* failure rate to ≈10X S4's
    while its intrinsic hardware hazard is only 4X — the core of the
    paper's Q2 SF-vs-MF contrast (Figs 14-15).
    """
    options = eligible_workloads(category)
    if len(options) == 1:
        return options[0]
    weights = None
    if biased and options == ["W1", "W2"]:
        if sku_name == "S2":
            weights = np.array([0.05, 0.95])
        elif sku_name == "S4":
            weights = np.array([0.8, 0.2])
    return str(rng.choice(options, p=weights))
