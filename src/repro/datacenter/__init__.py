"""Datacenter topology substrate: SKUs, workloads, racks, power, fleets.

Public API re-exports the pieces most users need; submodules hold the
full detail.
"""

from .builder import (
    DC1_RACKS_FULL,
    DC2_RACKS_FULL,
    FleetConfig,
    SkuMix,
    build_fleet,
    dc1_spec,
    dc2_spec,
)
from .inventory import CommissionCohort, DeviceIdAllocator, default_cohorts
from .power import (
    DENSITY_KNEE_KW,
    RATING_LEVELS_KW,
    density_stress_multiplier,
    power_infrastructure_rate,
    provision_rating,
    quantize_rating,
)
from .sku import SkuCatalog, SkuCategory, SkuSpec
from .sku import default_catalog as default_sku_catalog
from .topology import (
    CoolingKind,
    DataCenter,
    DataCenterSpec,
    Fleet,
    FleetArrays,
    PackagingKind,
    Rack,
    RegionSpec,
)
from .workload import (
    WorkloadCatalog,
    WorkloadCategory,
    WorkloadSpec,
    assign_workload,
    eligible_workloads,
)
from .workload import default_catalog as default_workload_catalog

__all__ = [
    "DC1_RACKS_FULL",
    "DC2_RACKS_FULL",
    "DENSITY_KNEE_KW",
    "RATING_LEVELS_KW",
    "CommissionCohort",
    "CoolingKind",
    "DataCenter",
    "DataCenterSpec",
    "DeviceIdAllocator",
    "Fleet",
    "FleetArrays",
    "FleetConfig",
    "PackagingKind",
    "Rack",
    "RegionSpec",
    "SkuCatalog",
    "SkuCategory",
    "SkuMix",
    "SkuSpec",
    "WorkloadCatalog",
    "WorkloadCategory",
    "WorkloadSpec",
    "assign_workload",
    "build_fleet",
    "dc1_spec",
    "dc2_spec",
    "default_cohorts",
    "default_sku_catalog",
    "default_workload_catalog",
    "density_stress_multiplier",
    "eligible_workloads",
    "power_infrastructure_rate",
    "provision_rating",
    "quantize_rating",
]
