"""SKU (Stock Keeping Unit) catalog.

The paper uses "rack SKU as a proxy for a specific combination of server
models and vendors" (§VI-Q2).  Table III defines seven SKUs:

* S1 & S3 — storage intensive (≈20 servers per rack, many HDDs each),
* S2 & S4 — compute intensive (>40 servers per rack, ≈4 HDDs each),
* S5 & S6 — mixed, and
* S7 — HPC.

Each catalog entry also carries *planted ground truth*: an intrinsic
hazard multiplier (how failure-prone the vendor's hardware actually is,
once all environmental/workload confounds are removed) and a burstiness
profile (propensity for correlated batch failures, which drives the peak
failure-rate metric μmax).  The analysis layer never reads these fields;
they exist so the generator can reproduce the paper's findings — e.g.
S2's intrinsic average failure rate is ≈4X S4's, while confounds inflate
the *observed* ratio to ≈10X (Figs 14-15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError
from ..groundtruth import GROUND_TRUTH


class SkuCategory(Enum):
    """Broad SKU families from Table III."""

    STORAGE = "storage"
    COMPUTE = "compute"
    MIXED = "mixed"
    HPC = "hpc"


@dataclass(frozen=True)
class SkuSpec:
    """Static description of one rack SKU.

    Attributes:
        name: SKU identifier, ``S1`` .. ``S7``.
        category: broad family (storage / compute / mixed / HPC).
        vendor: synthetic vendor label (procurement decisions compare
            vendors through their SKUs).
        servers_per_rack: rack density; compute SKUs are denser (>40).
        hdds_per_server: hard-disk drives per server.
        dimms_per_server: memory DIMMs per server.
        rated_power_kw: nominal rack power rating (Table III: 4-15 kW).
        server_cost_units: relative CapEx per server; the paper's
            server : disk : DIMM cost ratio is 100 : 2 : 10.
        intrinsic_hazard: ground-truth multiplier on per-device hardware
            hazard rates attributable to the SKU itself.
        batch_failure_rate: per rack-day probability of a correlated
            multi-device failure event (bad disk batch, failing power
            strip, backplane issue).
        batch_failure_mean_size: mean number of devices taken down by one
            batch event (geometric distribution).
    """

    name: str
    category: SkuCategory
    vendor: str
    servers_per_rack: int
    hdds_per_server: int
    dimms_per_server: int
    rated_power_kw: float
    server_cost_units: float = 100.0
    # ``ground_truth`` metadata marks planted-hazard inputs the analysis
    # layer must never read; repro.staticcheck derives its GT-leak
    # forbidden-attribute list from these marks.
    intrinsic_hazard: float = field(default=1.0, metadata=GROUND_TRUTH)
    batch_failure_rate: float = field(default=0.001, metadata=GROUND_TRUTH)
    batch_failure_mean_size: float = field(default=2.0, metadata=GROUND_TRUTH)

    def __post_init__(self) -> None:
        if self.servers_per_rack <= 0:
            raise ConfigError(f"{self.name}: servers_per_rack must be positive")
        if self.hdds_per_server < 0 or self.dimms_per_server < 0:
            raise ConfigError(f"{self.name}: component counts must be >= 0")
        if not 0.0 < self.rated_power_kw <= 100.0:
            raise ConfigError(f"{self.name}: implausible rated power {self.rated_power_kw} kW")
        if self.intrinsic_hazard <= 0:
            raise ConfigError(f"{self.name}: intrinsic_hazard must be positive")
        if not 0.0 <= self.batch_failure_rate < 1.0:
            raise ConfigError(f"{self.name}: batch_failure_rate must be a probability")
        if self.batch_failure_mean_size < 1.0:
            raise ConfigError(f"{self.name}: batch_failure_mean_size must be >= 1")

    @property
    def hdds_per_rack(self) -> int:
        """Total hard-disk drives in a full rack of this SKU."""
        return self.servers_per_rack * self.hdds_per_server

    @property
    def dimms_per_rack(self) -> int:
        """Total memory DIMMs in a full rack of this SKU."""
        return self.servers_per_rack * self.dimms_per_server


class SkuCatalog:
    """Ordered, name-addressable collection of :class:`SkuSpec`."""

    def __init__(self, skus: list[SkuSpec]):
        if not skus:
            raise ConfigError("SKU catalog cannot be empty")
        names = [sku.name for sku in skus]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SKU names in catalog: {names}")
        self._skus = list(skus)
        self._by_name = {sku.name: sku for sku in skus}

    def __len__(self) -> int:
        return len(self._skus)

    def __iter__(self):
        return iter(self._skus)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> SkuSpec:
        """Return the SKU named ``name``; raise ConfigError if unknown."""
        if name not in self._by_name:
            raise ConfigError(f"unknown SKU {name!r}; have {sorted(self._by_name)}")
        return self._by_name[name]

    @property
    def names(self) -> list[str]:
        """SKU names in catalog order."""
        return [sku.name for sku in self._skus]

    def by_category(self, category: SkuCategory) -> list[SkuSpec]:
        """All SKUs belonging to ``category``, in catalog order."""
        return [sku for sku in self._skus if sku.category == category]

    def index_of(self, name: str) -> int:
        """Positional index of SKU ``name`` within the catalog."""
        self.get(name)
        return self.names.index(name)


def default_catalog() -> SkuCatalog:
    """The seven-SKU catalog matching Table III.

    Ground-truth calibration notes (verified by the Fig 14/15 benches):

    * S2 intrinsic hazard is 4X S4's — the MF-recoverable ratio.
    * S3 has the highest batch-failure propensity, giving it the highest
      *peak* rate despite a moderate average rate (the paper reports
      S3's peak at 1.4X S4's; our batch model produces a larger factor
      with the same ordering — see EXPERIMENTS.md deviation #4).
    * Compute SKUs (S2, S4) run at the highest rack power ratings, which
      couples SKU with the >12 kW power-rating effect of Fig 8.
    """
    return SkuCatalog([
        SkuSpec(
            name="S1", category=SkuCategory.STORAGE, vendor="VendorA",
            servers_per_rack=20, hdds_per_server=12, dimms_per_server=8,
            rated_power_kw=6.0, server_cost_units=100.0,
            intrinsic_hazard=1.6, batch_failure_rate=0.005,
            batch_failure_mean_size=3.0,
        ),
        SkuSpec(
            name="S2", category=SkuCategory.COMPUTE, vendor="VendorB",
            servers_per_rack=44, hdds_per_server=4, dimms_per_server=16,
            rated_power_kw=13.0, server_cost_units=100.0,
            intrinsic_hazard=2.8, batch_failure_rate=0.005,
            batch_failure_mean_size=4.0,
        ),
        SkuSpec(
            name="S3", category=SkuCategory.STORAGE, vendor="VendorC",
            servers_per_rack=20, hdds_per_server=14, dimms_per_server=8,
            rated_power_kw=7.0, server_cost_units=100.0,
            intrinsic_hazard=1.4, batch_failure_rate=0.009,
            batch_failure_mean_size=4.5,
        ),
        SkuSpec(
            name="S4", category=SkuCategory.COMPUTE, vendor="VendorD",
            servers_per_rack=48, hdds_per_server=4, dimms_per_server=16,
            rated_power_kw=12.0, server_cost_units=100.0,
            intrinsic_hazard=0.7, batch_failure_rate=0.0012,
            batch_failure_mean_size=2.0,
        ),
        SkuSpec(
            name="S5", category=SkuCategory.MIXED, vendor="VendorA",
            servers_per_rack=30, hdds_per_server=8, dimms_per_server=12,
            rated_power_kw=9.0, server_cost_units=100.0,
            intrinsic_hazard=1.1, batch_failure_rate=0.004,
            batch_failure_mean_size=3.0,
        ),
        SkuSpec(
            name="S6", category=SkuCategory.MIXED, vendor="VendorB",
            servers_per_rack=30, hdds_per_server=8, dimms_per_server=12,
            rated_power_kw=8.0, server_cost_units=100.0,
            intrinsic_hazard=1.0, batch_failure_rate=0.0035,
            batch_failure_mean_size=3.0,
        ),
        SkuSpec(
            name="S7", category=SkuCategory.HPC, vendor="VendorE",
            servers_per_rack=28, hdds_per_server=2, dimms_per_server=24,
            rated_power_kw=15.0, server_cost_units=120.0,
            intrinsic_hazard=0.55, batch_failure_rate=0.001,
            batch_failure_mean_size=2.0,
        ),
    ])
