"""Device identity and commissioning-cohort management.

Table III's ``Device ID`` feature is a nominal identifier ``C1-Cxxxxx``
and the ``Age`` feature spans 0-5 years — racks enter service in waves
(procurement cohorts), and some arrive *during* the observation window.
This module assigns device IDs and samples commission days so that the
age distribution reproduces the paper's: equipment from brand-new to
five years old, with enough young equipment to expose the
infant-mortality edge of the bathtub curve (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import DAYS_PER_YEAR


@dataclass(frozen=True)
class CommissionCohort:
    """A procurement wave.

    Attributes:
        offset_days: commission day relative to simulation start
            (negative = already in service when observation begins).
        weight: relative share of racks commissioned in this wave.
    """

    offset_days: int
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"cohort weight must be positive, got {self.weight}")


def default_cohorts(observation_days: int) -> list[CommissionCohort]:
    """Procurement waves giving a 0-5 year age mix over the observation.

    Roughly half the estate predates the window by 1-4.5 years; the rest
    arrives in waves within the first two thirds of the window, so young
    equipment is well represented throughout.
    """
    if observation_days < 30:
        raise ConfigError(f"observation window too short: {observation_days} days")
    year = DAYS_PER_YEAR
    return [
        CommissionCohort(offset_days=int(-4.5 * year), weight=0.10),
        CommissionCohort(offset_days=int(-3.5 * year), weight=0.12),
        CommissionCohort(offset_days=int(-2.5 * year), weight=0.14),
        CommissionCohort(offset_days=int(-1.5 * year), weight=0.16),
        CommissionCohort(offset_days=int(-0.5 * year), weight=0.18),
        CommissionCohort(offset_days=int(0.15 * observation_days), weight=0.15),
        CommissionCohort(offset_days=int(0.40 * observation_days), weight=0.10),
        CommissionCohort(offset_days=int(0.65 * observation_days), weight=0.05),
    ]


def sample_commission_days(
    n_racks: int,
    cohorts: list[CommissionCohort],
    rng: np.random.Generator,
    jitter_days: int = 30,
    recency_bias: float = 0.0,
) -> np.ndarray:
    """Sample a commission day for each of ``n_racks`` racks.

    Each rack joins one cohort (weighted choice) and receives a uniform
    jitter of up to ``jitter_days`` around the cohort's offset, modelling
    the staggered physical installation of a procurement wave.

    Args:
        recency_bias: tilts the cohort weights toward recent waves
            (positive) or old ones (negative); a value of b multiplies
            each cohort's weight by ``exp(b * rank)`` where rank runs
            0..1 from oldest to newest.  Used to plant age confounds —
            e.g. S2 is a recent procurement (young, infant-mortality
            heavy) while S4 is a mature product line.
    """
    if n_racks <= 0:
        raise ConfigError(f"n_racks must be positive, got {n_racks}")
    if not cohorts:
        raise ConfigError("need at least one commission cohort")
    weights = np.array([cohort.weight for cohort in cohorts], dtype=float)
    if recency_bias != 0.0 and len(cohorts) > 1:
        order = np.argsort([cohort.offset_days for cohort in cohorts])
        rank = np.empty(len(cohorts))
        rank[order] = np.linspace(0.0, 1.0, len(cohorts))
        weights = weights * np.exp(recency_bias * rank)
    weights /= weights.sum()
    offsets = np.array([cohort.offset_days for cohort in cohorts], dtype=np.int64)
    chosen = rng.choice(len(cohorts), size=n_racks, p=weights)
    jitter = rng.integers(-jitter_days, jitter_days + 1, size=n_racks)
    return offsets[chosen] + jitter


class DeviceIdAllocator:
    """Hands out globally-unique device IDs in Table III's ``Cnnnnn`` form."""

    def __init__(self, prefix: str = "C", start: int = 1):
        if start < 0:
            raise ConfigError(f"start must be >= 0, got {start}")
        self.prefix = prefix
        self._next = start

    def allocate(self, count: int = 1) -> list[str]:
        """Allocate ``count`` consecutive device IDs."""
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        ids = [f"{self.prefix}{self._next + i:05d}" for i in range(count)]
        self._next += count
        return ids

    @property
    def allocated(self) -> int:
        """Number of IDs handed out so far."""
        return self._next - 1
