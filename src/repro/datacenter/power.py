"""Rack power provisioning and power-delivery reliability model.

Table III lists rated rack power of 4-15 kW and Fig 8 shows racks rated
above 12 kW reporting higher failure rates.  Two mechanisms produce that
effect in our generator:

1. *Power density stress* — high-density racks run hotter at the device
   inlets and stress their power-delivery components harder; the hazard
   model applies a multiplier above a density knee.
2. *Availability design* — DC1's power infrastructure targets 3 nines
   while DC2 targets 5 nines (Table I); lower redundancy raises the rate
   of power-category RMA tickets.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

# Discrete rating levels observed on Fig 8's x-axis.
RATING_LEVELS_KW = (4.0, 6.0, 7.0, 8.0, 9.0, 12.0, 13.0, 15.0)

# Above this rated power the density-stress multiplier kicks in (Fig 8
# shows the step above 12 kW).
DENSITY_KNEE_KW = 12.0


def quantize_rating(nominal_kw: float) -> float:
    """Snap a nominal power draw onto the discrete rating ladder.

    Provisioning always rounds *up* to the next rating level so the rack
    never exceeds its breaker rating.
    """
    if nominal_kw <= 0:
        raise ConfigError(f"nominal power must be positive, got {nominal_kw}")
    for level in RATING_LEVELS_KW:
        if nominal_kw <= level:
            return level
    return RATING_LEVELS_KW[-1]


def provision_rating(
    nominal_kw: float,
    rng: np.random.Generator,
    headroom_probability: float = 0.25,
) -> float:
    """Pick the rated power for a new rack.

    Most racks are provisioned at the quantized nominal level; a fraction
    receives one extra level of headroom (operators over-provision power
    for future upgrades), which spreads racks of the same SKU across two
    adjacent rating levels — giving the power-rating feature variance
    that is not fully collinear with SKU.
    """
    if not 0.0 <= headroom_probability <= 1.0:
        raise ConfigError(f"headroom_probability must be in [0,1], got {headroom_probability}")
    rating = quantize_rating(nominal_kw)
    if rng.random() < headroom_probability:
        index = RATING_LEVELS_KW.index(rating)
        if index + 1 < len(RATING_LEVELS_KW):
            rating = RATING_LEVELS_KW[index + 1]
    return rating


def density_stress_multiplier(rated_power_kw: np.ndarray) -> np.ndarray:
    """Ground-truth hazard multiplier from rack power density.

    Racks at or below the knee get 1.0; above it the multiplier rises
    with rated power (≈1.35 at 13 kW, ≈1.6 at 15 kW), reproducing the
    step in Fig 8.
    """
    rated = np.asarray(rated_power_kw, dtype=float)
    excess = np.maximum(0.0, rated - DENSITY_KNEE_KW)
    return 1.0 + 0.30 * excess / 2.0


def power_infrastructure_rate(availability_nines: int) -> float:
    """Base daily per-rack rate of power-category failures.

    A 5-nines power design (2N feeds, redundant UPS) sees fewer
    power-related RMA tickets per unit of electrical plant than a 3-nines
    design; the *facility-wide* ticket volume also depends on how much
    mechanical plant sits on the power chain (see
    :class:`repro.failures.faultmodel.RackContext`, which multiplies this
    base by a cooling-plant factor).  The absolute values are calibrated
    so power failures land at a few percent of all tickets
    (Table II: 1.6-3.8%).
    """
    if availability_nines == 3:
        return 3.5e-3
    if availability_nines == 4:
        return 3.0e-3
    if availability_nines == 5:
        return 2.5e-3
    raise ConfigError(f"availability_nines must be 3, 4 or 5, got {availability_nines}")
