"""Spatial hierarchy of the simulated fleet.

The paper's facilities organize servers "in a spatial hierarchy, from a
DC at the top, each having rows of racks which in turn house server
chassis" (§IV).  We model:

    Fleet → DataCenter → Region → Row → Rack → Server → Component

Rack is the pivotal granularity: workloads are assigned per rack,
spares are provisioned per rack, and the failure metrics λ and μ are
computed per rack.  For simulation speed the :class:`Fleet` also exposes
a flat, vectorized view (:class:`FleetArrays`) with one numpy entry per
rack; the failure engine operates on those arrays and only materializes
individual servers when a ticket is actually generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import ConfigError
from ..groundtruth import GROUND_TRUTH
from .sku import SkuCatalog, SkuSpec
from .workload import WorkloadCatalog

#: ``FleetArrays`` attributes that carry planted hazard inputs.  The
#: GT-leak rule folds these into its forbidden-attribute set; keep the
#: tuple next to the class so adding an array updates the lint too.
GROUND_TRUTH_ARRAY_FIELDS: tuple[str, ...] = (
    "sku_intrinsic", "batch_rate", "batch_mean_size",
    "region_thermal_offset", "region_humidity_offset", "region_hazard",
)


class CoolingKind(Enum):
    """Cooling plant technology (Table I)."""

    ADIABATIC = "adiabatic"
    CHILLED_WATER = "chilled-water"


class PackagingKind(Enum):
    """Physical packaging of the IT infrastructure (Table I)."""

    CONTAINER = "container"
    COLOCATED = "colocated"


class ComponentKind(Enum):
    """Server sub-components tracked for Q1-B component-level spares."""

    HDD = "hdd"
    DIMM = "dimm"


@dataclass(frozen=True)
class RegionSpec:
    """A thermal/electrical zone within a datacenter.

    The paper's Fig 2 shows intra-DC failure-rate variation (DC1-1..4,
    DC2-1..3); regions carry the planted spatial offsets that create it.

    Attributes:
        name: region label, e.g. ``DC1-2``.
        thermal_offset_f: inlet-temperature offset (°F) relative to the
            DC-wide cooling output — hot spots are positive.
        humidity_offset: relative-humidity offset (percentage points).
        hazard_multiplier: residual spatial hazard factor not explained
            by temperature (airflow quality, vibration, dust).
    """

    name: str
    # Planted spatial ground truth (see repro.groundtruth): Fig 2's
    # intra-DC variation must be recovered, never read.
    thermal_offset_f: float = field(default=0.0, metadata=GROUND_TRUTH)
    humidity_offset: float = field(default=0.0, metadata=GROUND_TRUTH)
    hazard_multiplier: float = field(default=1.0, metadata=GROUND_TRUTH)

    def __post_init__(self) -> None:
        if self.hazard_multiplier <= 0:
            raise ConfigError(f"region {self.name}: hazard_multiplier must be positive")


@dataclass(frozen=True)
class Rack:
    """One rack: the unit of workload assignment and spare provisioning.

    Attributes:
        rack_id: globally unique label, e.g. ``DC1-R017``.
        dc_name: owning datacenter name.
        region_name: owning region label.
        row: row number within the DC (Table III: DC1 rows 1-18,
            DC2 rows 1-32).
        slot: position within the row.
        sku: hardware SKU populating the rack.
        workload: name of the workload owning the rack (``W1``..``W7``).
        rated_power_kw: provisioned power rating (Table III: 4-15 kW);
            may differ slightly from the SKU nominal due to per-site
            power-delivery choices.
        commission_day: simulation day the rack entered service; negative
            values mean it predates the observation window (devices can
            be up to 5 years old per Table III).
    """

    rack_id: str
    dc_name: str
    region_name: str
    row: int
    slot: int
    sku: SkuSpec
    workload: str
    rated_power_kw: float
    commission_day: int

    def __post_init__(self) -> None:
        if self.row < 1 or self.slot < 0:
            raise ConfigError(f"{self.rack_id}: invalid row/slot ({self.row}, {self.slot})")
        if self.rated_power_kw <= 0:
            raise ConfigError(f"{self.rack_id}: rated power must be positive")

    @property
    def n_servers(self) -> int:
        """Number of servers housed in this rack."""
        return self.sku.servers_per_rack

    @property
    def n_hdds(self) -> int:
        """Total HDDs in this rack."""
        return self.sku.hdds_per_rack

    @property
    def n_dimms(self) -> int:
        """Total DIMMs in this rack."""
        return self.sku.dimms_per_rack

    def age_months(self, day_index: int) -> float:
        """Device age in months on simulation day ``day_index``."""
        from ..units import months_between_days

        return months_between_days(self.commission_day, day_index)


@dataclass(frozen=True)
class DataCenterSpec:
    """Facility-level properties of one datacenter (Table I).

    Attributes:
        name: ``DC1`` or ``DC2`` (any label is accepted).
        packaging: container vs colocated.
        availability_nines: power-infrastructure design target (3 or 5).
        cooling: adiabatic vs chilled-water plant.
        n_rows: number of rack rows.
        regions: thermal/electrical zones within the facility.
    """

    name: str
    packaging: PackagingKind
    availability_nines: int
    cooling: CoolingKind
    n_rows: int
    regions: tuple[RegionSpec, ...]

    def __post_init__(self) -> None:
        if self.availability_nines not in (3, 4, 5):
            raise ConfigError(f"{self.name}: availability_nines must be 3, 4 or 5")
        if self.n_rows < 1:
            raise ConfigError(f"{self.name}: need at least one row")
        if not self.regions:
            raise ConfigError(f"{self.name}: need at least one region")


@dataclass
class DataCenter:
    """A datacenter: its spec plus the racks deployed inside it."""

    spec: DataCenterSpec
    racks: list[Rack] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Facility name (``DC1`` / ``DC2``)."""
        return self.spec.name

    @property
    def n_racks(self) -> int:
        """Number of racks deployed."""
        return len(self.racks)

    @property
    def n_servers(self) -> int:
        """Total servers across all racks."""
        return sum(rack.n_servers for rack in self.racks)

    def region(self, name: str) -> RegionSpec:
        """Look up a region spec by label."""
        for region in self.spec.regions:
            if region.name == name:
                return region
        raise ConfigError(f"{self.name}: unknown region {name!r}")


class FleetArrays:
    """Flat per-rack numpy view of a fleet, used by the failure engine.

    All arrays are aligned: index ``i`` refers to the same rack
    everywhere.  Categorical attributes are stored as integer codes into
    the corresponding catalog/name lists.
    """

    def __init__(self, fleet: "Fleet"):
        racks = fleet.racks
        n = len(racks)
        if n == 0:
            raise ConfigError("cannot build FleetArrays for an empty fleet")
        self.n_racks = n
        self.dc_names = [dc.name for dc in fleet.datacenters]
        self.region_names = fleet.region_names
        self.sku_names = fleet.skus.names
        self.workload_names = fleet.workloads.names

        dc_index = {name: i for i, name in enumerate(self.dc_names)}
        region_index = {name: i for i, name in enumerate(self.region_names)}
        sku_index = {name: i for i, name in enumerate(self.sku_names)}
        workload_index = {name: i for i, name in enumerate(self.workload_names)}

        self.rack_ids = np.array([rack.rack_id for rack in racks])
        self.dc_code = np.array([dc_index[rack.dc_name] for rack in racks], dtype=np.int32)
        self.region_code = np.array(
            [region_index[rack.region_name] for rack in racks], dtype=np.int32
        )
        self.row = np.array([rack.row for rack in racks], dtype=np.int32)
        self.sku_code = np.array([sku_index[rack.sku.name] for rack in racks], dtype=np.int32)
        self.workload_code = np.array(
            [workload_index[rack.workload] for rack in racks], dtype=np.int32
        )
        self.rated_power_kw = np.array([rack.rated_power_kw for rack in racks])
        self.commission_day = np.array([rack.commission_day for rack in racks], dtype=np.int64)
        self.n_servers = np.array([rack.n_servers for rack in racks], dtype=np.int32)
        self.hdds_per_server = np.array(
            [rack.sku.hdds_per_server for rack in racks], dtype=np.int32
        )
        self.dimms_per_server = np.array(
            [rack.sku.dimms_per_server for rack in racks], dtype=np.int32
        )

        # Ground-truth hazard inputs (never exposed to the analysis layer).
        self.sku_intrinsic = np.array([rack.sku.intrinsic_hazard for rack in racks])
        self.batch_rate = np.array([rack.sku.batch_failure_rate for rack in racks])
        self.batch_mean_size = np.array([rack.sku.batch_failure_mean_size for rack in racks])
        region_by_name = {
            region.name: region
            for dc in fleet.datacenters
            for region in dc.spec.regions
        }
        self.region_thermal_offset = np.array(
            [region_by_name[rack.region_name].thermal_offset_f for rack in racks]
        )
        self.region_humidity_offset = np.array(
            [region_by_name[rack.region_name].humidity_offset for rack in racks]
        )
        self.region_hazard = np.array(
            [region_by_name[rack.region_name].hazard_multiplier for rack in racks]
        )

        # First global server index of each rack: rack i owns server
        # indices [server_base[i], server_base[i] + n_servers[i]).
        self.server_base = np.concatenate(([0], np.cumsum(self.n_servers)[:-1]))
        self.n_servers_total = int(self.n_servers.sum())

    def age_months(self, day_index: int) -> np.ndarray:
        """Per-rack equipment age in months on ``day_index``."""
        from ..units import DAYS_PER_MONTH

        return (day_index - self.commission_day) / DAYS_PER_MONTH


class Fleet:
    """The complete simulated estate: every datacenter and rack.

    Args:
        datacenters: the facilities, each already populated with racks.
        skus: SKU catalog used to build the racks.
        workloads: workload catalog used for assignment.
    """

    def __init__(
        self,
        datacenters: list[DataCenter],
        skus: SkuCatalog,
        workloads: WorkloadCatalog,
    ):
        if not datacenters:
            raise ConfigError("fleet needs at least one datacenter")
        names = [dc.name for dc in datacenters]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate datacenter names: {names}")
        self.datacenters = list(datacenters)
        self.skus = skus
        self.workloads = workloads
        self._arrays: FleetArrays | None = None

    @property
    def racks(self) -> list[Rack]:
        """All racks across all datacenters, DC-major order."""
        return [rack for dc in self.datacenters for rack in dc.racks]

    @property
    def n_racks(self) -> int:
        """Total number of racks in the fleet."""
        return sum(dc.n_racks for dc in self.datacenters)

    @property
    def n_servers(self) -> int:
        """Total number of servers in the fleet."""
        return sum(dc.n_servers for dc in self.datacenters)

    @property
    def region_names(self) -> list[str]:
        """All region labels across DCs, in facility order."""
        return [region.name for dc in self.datacenters for region in dc.spec.regions]

    def datacenter(self, name: str) -> DataCenter:
        """Look up a datacenter by name."""
        for dc in self.datacenters:
            if dc.name == name:
                return dc
        raise ConfigError(f"unknown datacenter {name!r}; have {[d.name for d in self.datacenters]}")

    def arrays(self) -> FleetArrays:
        """Return (and cache) the vectorized per-rack view."""
        if self._arrays is None:
            self._arrays = FleetArrays(self)
        return self._arrays

    def racks_for_workload(self, workload: str) -> list[Rack]:
        """All racks assigned to ``workload``."""
        self.workloads.get(workload)
        return [rack for rack in self.racks if rack.workload == workload]

    def swap_sku(self, rack_ids, sku_name: str) -> int:
        """Re-SKU the named racks — the sanctioned inventory mutation
        point for autonomics hardware-refresh actions.

        Only drop-in refreshes are allowed: the replacement SKU must
        house the same number of servers per rack, so rack capacities,
        server indexing and any streaming inventory derived from the
        fleet stay valid mid-run.  The cached :class:`FleetArrays` view
        is invalidated; callers re-derive dependent models afterwards.

        Returns the number of racks swapped.
        """
        import dataclasses

        spec = self.skus.get(sku_name)
        wanted = set(rack_ids)
        if not wanted:
            return 0
        swapped = 0
        for dc in self.datacenters:
            for index, rack in enumerate(dc.racks):
                if rack.rack_id not in wanted:
                    continue
                if spec.servers_per_rack != rack.sku.servers_per_rack:
                    raise ConfigError(
                        f"{rack.rack_id}: refresh SKU {spec.name!r} houses "
                        f"{spec.servers_per_rack} servers/rack, rack has "
                        f"{rack.sku.servers_per_rack}; only drop-in "
                        "refreshes are supported"
                    )
                dc.racks[index] = dataclasses.replace(rack, sku=spec)
                wanted.discard(rack.rack_id)
                swapped += 1
        if wanted:
            raise ConfigError(f"unknown rack ids for SKU swap: {sorted(wanted)}")
        self._arrays = None
        return swapped
