"""Fleet builder: assembles DC1 and DC2 per the paper's Tables I & III.

DC1 is container-packaged, adiabatically cooled and designed for 3-nines
power availability, with 18 rows and up to 331 racks in 4 regions; DC2 is
colocated, chilled-water cooled, 5-nines, with 32 rows and up to 290
racks in 3 regions.

The builder also plants the *confounds* that make single-factor analysis
fail in the paper:

* SKU ↔ placement: S2 racks are biased into DC1's hottest regions.
* SKU ↔ workload: S2 racks are biased onto the stressful W2 workload
  (see :func:`repro.datacenter.workload.assign_workload`).
* DC ↔ climate: all adiabatic-cooling climate exposure lands on DC1.

A ``scale`` parameter shrinks the rack counts proportionally so tests
can build a miniature fleet in milliseconds while benchmarks use the
paper-scale one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..rng import RngRegistry
from . import sku as sku_mod
from . import workload as workload_mod
from .inventory import DeviceIdAllocator, default_cohorts, sample_commission_days
from .power import provision_rating
from .topology import (
    CoolingKind,
    DataCenter,
    DataCenterSpec,
    Fleet,
    PackagingKind,
    Rack,
    RegionSpec,
)

# Paper-scale rack counts (Table III: DC1 racks R1-331, DC2 racks R1-290).
DC1_RACKS_FULL = 331
DC2_RACKS_FULL = 290
DC1_ROWS = 18
DC2_ROWS = 32


@dataclass(frozen=True)
class SkuMix:
    """Per-DC SKU composition: name → fraction of racks."""

    fractions: dict[str, float]

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ConfigError(f"SKU mix fractions must sum to 1, got {total}")
        for name, fraction in self.fractions.items():
            if fraction < 0:
                raise ConfigError(f"SKU mix fraction for {name} is negative")

    def counts(self, n_racks: int) -> dict[str, int]:
        """Integer rack counts per SKU (largest-remainder apportionment)."""
        if n_racks <= 0:
            raise ConfigError(f"n_racks must be positive, got {n_racks}")
        raw = {name: fraction * n_racks for name, fraction in self.fractions.items()}
        floors = {name: int(value) for name, value in raw.items()}
        remainder = n_racks - sum(floors.values())
        by_frac = sorted(raw, key=lambda name: raw[name] - floors[name], reverse=True)
        for name in by_frac[:remainder]:
            floors[name] += 1
        return {name: count for name, count in floors.items() if count > 0}


# DC1 skews compute-heavy (it hosts the S2 estate); DC2 skews storage.
DC1_SKU_MIX = SkuMix({
    "S1": 0.10, "S2": 0.28, "S3": 0.12, "S4": 0.22,
    "S5": 0.10, "S6": 0.08, "S7": 0.10,
})
DC2_SKU_MIX = SkuMix({
    "S1": 0.14, "S2": 0.06, "S3": 0.12, "S4": 0.30,
    "S5": 0.14, "S6": 0.16, "S7": 0.08,
})


def dc1_spec() -> DataCenterSpec:
    """DC1: container packaging, adiabatic cooling, 3-nines power.

    Regions DC1-1/DC1-2 are the hot-aisle-adjacent container blocks
    (positive thermal offsets); DC1-4 is the coolest.  The extra
    region-level hazard on DC1-1 models its tighter airflow.
    """
    return DataCenterSpec(
        name="DC1",
        packaging=PackagingKind.CONTAINER,
        availability_nines=3,
        cooling=CoolingKind.ADIABATIC,
        n_rows=DC1_ROWS,
        regions=(
            RegionSpec("DC1-1", thermal_offset_f=5.0, humidity_offset=-4.0,
                       hazard_multiplier=1.50),
            RegionSpec("DC1-2", thermal_offset_f=3.0, humidity_offset=-2.0,
                       hazard_multiplier=1.30),
            RegionSpec("DC1-3", thermal_offset_f=0.0, humidity_offset=0.0,
                       hazard_multiplier=1.00),
            RegionSpec("DC1-4", thermal_offset_f=-2.0, humidity_offset=2.0,
                       hazard_multiplier=0.92),
        ),
    )


def dc2_spec() -> DataCenterSpec:
    """DC2: colocated packaging, chilled-water cooling, 5-nines power.

    Chilled-water plants hold inlet conditions tightly, so the regions
    differ little thermally; the mild hazard spread reflects airflow and
    maintenance-access differences.
    """
    return DataCenterSpec(
        name="DC2",
        packaging=PackagingKind.COLOCATED,
        availability_nines=5,
        cooling=CoolingKind.CHILLED_WATER,
        n_rows=DC2_ROWS,
        regions=(
            RegionSpec("DC2-1", thermal_offset_f=1.0, humidity_offset=0.0,
                       hazard_multiplier=1.05),
            RegionSpec("DC2-2", thermal_offset_f=0.0, humidity_offset=0.0,
                       hazard_multiplier=0.95),
            RegionSpec("DC2-3", thermal_offset_f=-1.0, humidity_offset=0.0,
                       hazard_multiplier=0.88),
        ),
    )


@dataclass(frozen=True)
class FleetConfig:
    """Knobs controlling fleet construction.

    Attributes:
        scale: multiplier on the paper-scale rack counts (1.0 builds
            331+290 racks; tests typically use 0.05-0.2).
        observation_days: length of the simulated window; used to place
            commissioning cohorts.
        dc1_mix / dc2_mix: per-DC SKU composition.
        s2_hot_bias: probability that an S2 rack is placed in one of
            DC1's two hottest regions (the planted placement confound);
            0.5 would be unbiased for a 4-region DC.
        plant_confounds: master switch for the Q2 confounds (S2→W2 /
            S4→W1 workload bias, S2-hot placement, S2-young/S4-mature
            commissioning).  Disabling it yields a fleet where the
            observed SKU failure gap equals the intrinsic hardware gap —
            the ablation that shows the confounds are what break the
            single-factor analysis.
    """

    scale: float = 1.0
    observation_days: int = 910
    dc1_mix: SkuMix = field(default_factory=lambda: DC1_SKU_MIX)
    dc2_mix: SkuMix = field(default_factory=lambda: DC2_SKU_MIX)
    s2_hot_bias: float = 0.95
    plant_confounds: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 4.0:
            raise ConfigError(f"scale out of range (0, 4]: {self.scale}")
        if self.observation_days < 30:
            raise ConfigError(f"observation_days too small: {self.observation_days}")
        if not 0.0 <= self.s2_hot_bias <= 1.0:
            raise ConfigError(f"s2_hot_bias must be in [0,1]: {self.s2_hot_bias}")

    def rack_counts(self) -> tuple[int, int]:
        """Scaled (DC1, DC2) rack counts, at least one rack each."""
        dc1 = max(1, round(DC1_RACKS_FULL * self.scale))
        dc2 = max(1, round(DC2_RACKS_FULL * self.scale))
        return dc1, dc2


def _pick_region(
    dc_spec: DataCenterSpec,
    sku_name: str,
    s2_hot_bias: float | None,
    rng: np.random.Generator,
) -> str:
    """Choose a region for a new rack, applying the S2 placement confound.

    ``s2_hot_bias=None`` disables the confound (uniform placement).
    """
    region_names = [region.name for region in dc_spec.regions]
    if (s2_hot_bias is not None and sku_name == "S2"
            and dc_spec.name == "DC1" and len(region_names) >= 2):
        hot = sorted(
            dc_spec.regions, key=lambda region: region.thermal_offset_f, reverse=True
        )[:2]
        if rng.random() < s2_hot_bias:
            return str(rng.choice([region.name for region in hot]))
        cool_names = [name for name in region_names if name not in {r.name for r in hot}]
        return str(rng.choice(cool_names))
    return str(rng.choice(region_names))


def _build_datacenter(
    dc_spec: DataCenterSpec,
    n_racks: int,
    mix: SkuMix,
    config: FleetConfig,
    skus: sku_mod.SkuCatalog,
    rng: np.random.Generator,
) -> DataCenter:
    """Populate one datacenter with racks per the SKU mix."""
    counts = mix.counts(n_racks)
    for name in counts:
        skus.get(name)  # validate every mix entry against the catalog

    sku_sequence: list[str] = []
    for name, count in sorted(counts.items()):
        sku_sequence.extend([name] * count)
    rng.shuffle(sku_sequence)

    cohorts = default_cohorts(config.observation_days)
    commission_days = sample_commission_days(len(sku_sequence), cohorts, rng)
    if config.plant_confounds:
        # Age confound: S2 is a recent procurement line (young racks,
        # deep in the infant-mortality regime), S4 a mature one.
        # Resample those two SKUs' commission days with tilted weights.
        sku_array = np.array(sku_sequence)
        for biased_sku, bias in (("S2", 5.0), ("S4", -5.0)):
            members = np.flatnonzero(sku_array == biased_sku)
            if len(members):
                commission_days[members] = sample_commission_days(
                    len(members), cohorts, rng, recency_bias=bias,
                )

    racks: list[Rack] = []
    racks_per_row = max(1, -(-len(sku_sequence) // dc_spec.n_rows))  # ceil division
    for index, sku_name in enumerate(sku_sequence):
        spec = skus.get(sku_name)
        effective_bias = config.s2_hot_bias if config.plant_confounds else None
        region = _pick_region(dc_spec, sku_name, effective_bias, rng)
        workload = workload_mod.assign_workload(
            spec.category, sku_name, rng,
            biased=config.plant_confounds,
        )
        racks.append(Rack(
            rack_id=f"{dc_spec.name}-R{index + 1:03d}",
            dc_name=dc_spec.name,
            region_name=region,
            row=index // racks_per_row + 1,
            slot=index % racks_per_row,
            sku=spec,
            workload=workload,
            rated_power_kw=provision_rating(spec.rated_power_kw, rng),
            commission_day=int(commission_days[index]),
        ))
    return DataCenter(spec=dc_spec, racks=racks)


def build_fleet(
    config: FleetConfig | None = None,
    rngs: RngRegistry | None = None,
    skus: sku_mod.SkuCatalog | None = None,
    workloads: workload_mod.WorkloadCatalog | None = None,
) -> Fleet:
    """Build the two-DC fleet the paper studies.

    Args:
        config: construction knobs; defaults to paper scale.
        rngs: RNG registry (the builder uses its ``"fleet"`` stream);
            a fresh seed-0 registry is created if omitted.
        skus: SKU catalog; defaults to :func:`repro.datacenter.sku.default_catalog`.
        workloads: workload catalog; defaults likewise.

    Returns:
        A fully populated :class:`~repro.datacenter.topology.Fleet`.
    """
    config = config or FleetConfig()
    rngs = rngs or RngRegistry(seed=0)
    skus = skus or sku_mod.default_catalog()
    workloads = workloads or workload_mod.default_catalog()
    rng = rngs.stream("fleet")

    n_dc1, n_dc2 = config.rack_counts()
    dc1 = _build_datacenter(dc1_spec(), n_dc1, config.dc1_mix, config, skus, rng)
    dc2 = _build_datacenter(dc2_spec(), n_dc2, config.dc2_mix, config, skus, rng)

    allocator = DeviceIdAllocator()
    for dc in (dc1, dc2):
        for rack in dc.racks:
            allocator.allocate(rack.n_servers)

    return Fleet(datacenters=[dc1, dc2], skus=skus, workloads=workloads)
