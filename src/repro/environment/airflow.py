"""Air-handler units: pressure and airflow telemetry.

§IV: "pressure is monitored at the level of individual Air Handler
Units (AHUs)" and sensors also track air-flow.  Neither quantity drives
any planted hazard — deliberately.  They serve as **null factors**: a
sound multi-factor analysis must find *no* significant influence of
pressure or airflow on failures, and the ``test_ext_null_factor`` bench
verifies exactly that (the framework's false-positive check, the
counterpart to recovering the real 78 °F threshold).

Each DC operates several AHUs; every rack row is served by one AHU, so
rack-day telemetry can carry the serving AHU's readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.topology import Fleet
from ..errors import ConfigError
from ..rng import RngRegistry

# Differential pressure across the supply plenum, in Pascals.
NOMINAL_PRESSURE_PA = 12.0
# Per-rack design airflow, in CFM.
NOMINAL_AIRFLOW_CFM = 1600.0


@dataclass(frozen=True)
class AhuSpec:
    """One air-handler unit.

    Attributes:
        ahu_id: label, e.g. ``DC1/AHU2``.
        dc_name: facility served.
        rows: rack-row numbers this AHU supplies.
        pressure_bias_pa: persistent offset from the nominal setpoint
            (duct geometry, filter loading).
        airflow_bias_cfm: persistent airflow offset.
    """

    ahu_id: str
    dc_name: str
    rows: tuple[int, ...]
    pressure_bias_pa: float
    airflow_bias_cfm: float

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigError(f"{self.ahu_id}: must serve at least one row")


class AhuSystem:
    """The fleet's air handlers and their daily telemetry.

    Args:
        fleet: the fleet (one AHU per ~6 rows per DC).
        n_days: observation-window length.
        rngs: RNG registry (uses the ``"ahu"`` stream).
        rows_per_ahu: how many rack rows one AHU supplies.

    Attributes:
        ahus: all AHU specs, DC-major.
        pressure_pa: (n_days, n_ahus) daily mean plenum pressures.
        airflow_cfm: (n_days, n_ahus) daily mean per-rack airflow.
    """

    def __init__(
        self,
        fleet: Fleet,
        n_days: int,
        rngs: RngRegistry,
        rows_per_ahu: int = 6,
    ):
        if n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {n_days}")
        if rows_per_ahu < 1:
            raise ConfigError(f"rows_per_ahu must be >= 1, got {rows_per_ahu}")
        rng = rngs.stream("ahu")

        self.ahus: list[AhuSpec] = []
        for dc in fleet.datacenters:
            n_rows = dc.spec.n_rows
            for index, start in enumerate(range(1, n_rows + 1, rows_per_ahu)):
                rows = tuple(range(start, min(start + rows_per_ahu, n_rows + 1)))
                self.ahus.append(AhuSpec(
                    ahu_id=f"{dc.name}/AHU{index}",
                    dc_name=dc.name,
                    rows=rows,
                    pressure_bias_pa=float(rng.normal(0.0, 1.5)),
                    airflow_bias_cfm=float(rng.normal(0.0, 120.0)),
                ))
        n_ahus = len(self.ahus)

        # AR(1) daily wander around the setpoint (filter loading builds
        # up, then maintenance resets it) — realistic structure, but by
        # construction uncoupled from every hazard.
        self.pressure_pa = np.empty((n_days, n_ahus))
        self.airflow_cfm = np.empty((n_days, n_ahus))
        pressure_state = rng.normal(0.0, 1.0, size=n_ahus)
        airflow_state = rng.normal(0.0, 60.0, size=n_ahus)
        biases_p = np.array([ahu.pressure_bias_pa for ahu in self.ahus])
        biases_a = np.array([ahu.airflow_bias_cfm for ahu in self.ahus])
        for day in range(n_days):
            pressure_state = 0.9 * pressure_state + rng.normal(0.0, 0.4, n_ahus)
            airflow_state = 0.9 * airflow_state + rng.normal(0.0, 25.0, n_ahus)
            self.pressure_pa[day] = (NOMINAL_PRESSURE_PA + biases_p
                                     + pressure_state)
            self.airflow_cfm[day] = (NOMINAL_AIRFLOW_CFM + biases_a
                                     + airflow_state)

        self._rack_to_ahu = self._map_racks(fleet)

    def _map_racks(self, fleet: Fleet) -> np.ndarray:
        arrays = fleet.arrays()
        lookup: dict[tuple[str, int], int] = {}
        for index, ahu in enumerate(self.ahus):
            for row in ahu.rows:
                lookup[(ahu.dc_name, row)] = index
        mapping = np.empty(arrays.n_racks, dtype=np.int64)
        for rack_index in range(arrays.n_racks):
            dc_name = arrays.dc_names[int(arrays.dc_code[rack_index])]
            row = int(arrays.row[rack_index])
            if (dc_name, row) not in lookup:
                raise ConfigError(f"rack row {row} of {dc_name} has no AHU")
            mapping[rack_index] = lookup[(dc_name, row)]
        return mapping

    @property
    def n_ahus(self) -> int:
        """Number of air handlers across the fleet."""
        return len(self.ahus)

    def ahu_of_rack(self, rack_index: int) -> AhuSpec:
        """The AHU serving a given rack."""
        return self.ahus[int(self._rack_to_ahu[rack_index])]

    def rack_pressure(self) -> np.ndarray:
        """(n_days, n_racks): each rack's serving-AHU pressure."""
        return self.pressure_pa[:, self._rack_to_ahu]

    def rack_airflow(self) -> np.ndarray:
        """(n_days, n_racks): each rack's serving-AHU airflow."""
        return self.airflow_cfm[:, self._rack_to_ahu]


def attach_ahu_telemetry(table, result, rngs: RngRegistry | None = None):
    """Add ``pressure_pa`` and ``airflow_cfm`` columns to a rack-day table.

    Uses the same seed stream as the run so repeated calls attach
    identical telemetry.  Returns a new table.
    """
    from ..telemetry.schema import FeatureKind, FeatureSpec

    rngs = rngs or RngRegistry(result.config.seed)
    system = AhuSystem(result.fleet, result.n_days, rngs)
    racks = table.column("rack_index").astype(np.int64)
    days = table.column("day_index").astype(np.int64)
    pressure = system.rack_pressure()[days, racks]
    airflow = system.rack_airflow()[days, racks]
    return table.with_column(
        "pressure_pa", pressure,
        spec=FeatureSpec("pressure_pa", FeatureKind.CONTINUOUS),
    ).with_column(
        "airflow_cfm", airflow,
        spec=FeatureSpec("airflow_cfm", FeatureKind.CONTINUOUS),
    )
