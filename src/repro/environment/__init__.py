"""Environmental substrate: site weather, cooling plants, sensors, BMS."""

from .airflow import (
    NOMINAL_AIRFLOW_CFM,
    NOMINAL_PRESSURE_PA,
    AhuSpec,
    AhuSystem,
    attach_ahu_telemetry,
)
from .bms import (
    Alarm,
    AlarmThresholds,
    BmsLog,
    BuildingManagementSystem,
)
from .conditions import EnvironmentSeries
from .cooling import (
    AdiabaticCoolingPlant,
    ChilledWaterPlant,
    CoolingPlant,
    SupplyAir,
    plant_for,
)
from .sensors import (
    DEFAULT_NOISE_SD,
    Sensor,
    SensorKind,
    SensorLevel,
    ahu_pressure_sensor,
    rack_sensor_pair,
)
from .weather import (
    SiteClimate,
    WeatherDay,
    WeatherSeries,
    dc1_site_climate,
    dc2_site_climate,
    wet_bulb_estimate_f,
)

__all__ = [
    "DEFAULT_NOISE_SD",
    "NOMINAL_AIRFLOW_CFM",
    "NOMINAL_PRESSURE_PA",
    "AdiabaticCoolingPlant",
    "AhuSpec",
    "AhuSystem",
    "Alarm",
    "AlarmThresholds",
    "BmsLog",
    "BuildingManagementSystem",
    "ChilledWaterPlant",
    "CoolingPlant",
    "EnvironmentSeries",
    "Sensor",
    "SensorKind",
    "SensorLevel",
    "SiteClimate",
    "SupplyAir",
    "WeatherDay",
    "WeatherSeries",
    "ahu_pressure_sensor",
    "attach_ahu_telemetry",
    "dc1_site_climate",
    "dc2_site_climate",
    "plant_for",
    "rack_sensor_pair",
    "wet_bulb_estimate_f",
]
