"""Outdoor weather models for the two datacenter sites.

The paper's DCs "differ in their external environment (weather,
altitude)" (§I).  DC1 sits in a warm, dry climate — the regime where
adiabatic cooling "proves effective" (§IV footnote) — while DC2 sits in
a temperate, more humid one.  Weather only matters to the analysis
through the *inlet* conditions the cooling plant produces, but modelling
it explicitly lets the seasonal effect (Fig 4) and the low-humidity
effect (Fig 5) emerge from physics-shaped inputs rather than being
painted directly onto failure rates.

The model is a standard sinusoidal climate: an annual temperature cycle,
a diurnal cycle, auto-correlated day-to-day anomalies (AR(1) weather
fronts), and relative humidity anti-correlated with temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import DAYS_PER_YEAR, clamp


@dataclass(frozen=True)
class SiteClimate:
    """Parameters of one site's climate.

    Attributes:
        name: site label for diagnostics.
        mean_temp_f: annual mean outdoor temperature (°F).
        seasonal_amplitude_f: half peak-to-trough of the annual cycle.
        diurnal_amplitude_f: half peak-to-trough of the daily cycle.
        peak_day_of_year: day-of-year of the seasonal maximum
            (~213 = early August for northern-hemisphere sites).
        anomaly_sd_f: standard deviation of day-to-day anomalies.
        anomaly_persistence: AR(1) coefficient of the anomaly process.
        mean_rh: annual mean outdoor relative humidity (%).
        rh_temp_slope: RH change per °F of temperature anomaly+season
            (negative: hot days are dry days).
        rh_noise_sd: day-to-day RH noise (%).
    """

    name: str
    mean_temp_f: float
    seasonal_amplitude_f: float
    diurnal_amplitude_f: float
    peak_day_of_year: int
    anomaly_sd_f: float
    anomaly_persistence: float
    mean_rh: float
    rh_temp_slope: float
    rh_noise_sd: float

    def __post_init__(self) -> None:
        if not 0 <= self.peak_day_of_year < DAYS_PER_YEAR:
            raise ConfigError(f"{self.name}: peak_day_of_year out of range")
        if not 0.0 <= self.anomaly_persistence < 1.0:
            raise ConfigError(f"{self.name}: anomaly_persistence must be in [0,1)")
        if not 0.0 < self.mean_rh < 100.0:
            raise ConfigError(f"{self.name}: mean_rh must be a valid RH percentage")


def dc1_site_climate() -> SiteClimate:
    """Warm, dry (semi-arid) site hosting DC1."""
    return SiteClimate(
        name="DC1-site",
        mean_temp_f=68.0,
        seasonal_amplitude_f=21.0,
        diurnal_amplitude_f=9.0,
        peak_day_of_year=213,
        anomaly_sd_f=4.0,
        anomaly_persistence=0.75,
        mean_rh=38.0,
        rh_temp_slope=-0.7,
        rh_noise_sd=10.0,
    )


def dc2_site_climate() -> SiteClimate:
    """Temperate, humid site hosting DC2."""
    return SiteClimate(
        name="DC2-site",
        mean_temp_f=54.0,
        seasonal_amplitude_f=16.0,
        diurnal_amplitude_f=7.0,
        peak_day_of_year=205,
        anomaly_sd_f=5.0,
        anomaly_persistence=0.7,
        mean_rh=62.0,
        rh_temp_slope=-0.6,
        rh_noise_sd=7.0,
    )


@dataclass(frozen=True)
class WeatherDay:
    """Outdoor conditions for one day (daily means)."""

    day_index: int
    temp_f: float
    rh: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rh <= 100.0:
            raise ConfigError(f"day {self.day_index}: RH {self.rh} outside [0, 100]")


class WeatherSeries:
    """Pre-sampled outdoor weather for every day of the observation window.

    The whole series is generated up-front (it is tiny: two floats per
    day) so the failure engine and the BMS see identical weather, and so
    repeated analyses over the same run are consistent.
    """

    def __init__(self, climate: SiteClimate, n_days: int, rng: np.random.Generator,
                 start_day_of_year: int = 0):
        if n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {n_days}")
        if not 0 <= start_day_of_year < DAYS_PER_YEAR:
            raise ConfigError(f"start_day_of_year out of range: {start_day_of_year}")
        self.climate = climate
        self.n_days = n_days

        days = np.arange(n_days)
        day_of_year = (start_day_of_year + days) % DAYS_PER_YEAR
        phase = 2.0 * np.pi * (day_of_year - climate.peak_day_of_year) / DAYS_PER_YEAR
        seasonal = climate.seasonal_amplitude_f * np.cos(phase)

        anomalies = np.empty(n_days)
        innovation_sd = climate.anomaly_sd_f * np.sqrt(
            1.0 - climate.anomaly_persistence**2
        )
        current = rng.normal(0.0, climate.anomaly_sd_f)
        for day in range(n_days):
            anomalies[day] = current
            current = (climate.anomaly_persistence * current
                       + rng.normal(0.0, innovation_sd))

        self.temp_f = climate.mean_temp_f + seasonal + anomalies
        raw_rh = (climate.mean_rh
                  + climate.rh_temp_slope * (seasonal + anomalies)
                  + rng.normal(0.0, climate.rh_noise_sd, size=n_days))
        self.rh = np.clip(raw_rh, 2.0, 99.0)

    def day(self, day_index: int) -> WeatherDay:
        """Outdoor conditions (daily means) for ``day_index``."""
        if not 0 <= day_index < self.n_days:
            raise ConfigError(f"day_index {day_index} outside [0, {self.n_days})")
        return WeatherDay(
            day_index=day_index,
            temp_f=float(self.temp_f[day_index]),
            rh=float(self.rh[day_index]),
        )

    def hourly_temp_f(self, day_index: int) -> np.ndarray:
        """Hour-of-day temperature profile for ``day_index`` (24 values).

        A cosine diurnal cycle peaking mid-afternoon (15:00) around the
        daily mean; used when the simulation runs at hourly resolution.
        """
        base = self.day(day_index).temp_f
        hours = np.arange(24)
        return base + self.climate.diurnal_amplitude_f * np.cos(
            2.0 * np.pi * (hours - 15) / 24.0
        )


def wet_bulb_estimate_f(temp_f: float, rh: float) -> float:
    """Approximate wet-bulb temperature (°F) from dry-bulb and RH.

    Uses Stull's 2011 empirical fit (valid for 5-99% RH), converted to
    Fahrenheit.  Adiabatic cooling output approaches the wet-bulb
    temperature, so this sets the supply-air floor for DC1's plant.
    """
    if not 0.0 < rh <= 100.0:
        raise ConfigError(f"RH must be in (0, 100], got {rh}")
    temp_c = (temp_f - 32.0) * 5.0 / 9.0
    wet_c = (
        temp_c * np.arctan(0.151977 * np.sqrt(rh + 8.313659))
        + np.arctan(temp_c + rh)
        - np.arctan(rh - 1.676331)
        + 0.00391838 * rh**1.5 * np.arctan(0.023101 * rh)
        - 4.686035
    )
    wet_f = wet_c * 9.0 / 5.0 + 32.0
    # A wet bulb can never exceed the dry bulb; guard the fit's edges.
    return float(clamp(wet_f, -40.0, temp_f))
