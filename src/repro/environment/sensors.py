"""Environmental sensors and their placement hierarchy.

Per §IV, "sensors are placed across each DC ... at multiple levels of the
spatial hierarchy (server row, rack, etc.)": temperature and relative
humidity at rack level, pressure at air-handler-unit (AHU) level, with
separate inlet/outlet measurement points.  The analysis layer only ever
sees *sensor readings* — noisy, occasionally-dropped observations of the
true conditions — which is exactly the situation a real operator is in.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import ConfigError


class SensorKind(Enum):
    """What a sensor measures."""

    INLET_TEMP = "inlet-temp"
    OUTLET_TEMP = "outlet-temp"
    RELATIVE_HUMIDITY = "relative-humidity"
    PRESSURE = "pressure"
    AIRFLOW = "airflow"


class SensorLevel(Enum):
    """Where in the spatial hierarchy a sensor is mounted."""

    DATACENTER = "datacenter"
    ROW = "row"
    RACK = "rack"
    AHU = "ahu"


# Default measurement noise (standard deviation) per sensor kind, in the
# sensor's native unit (°F, %RH, Pa, CFM).
DEFAULT_NOISE_SD: dict[SensorKind, float] = {
    SensorKind.INLET_TEMP: 0.6,
    SensorKind.OUTLET_TEMP: 1.0,
    SensorKind.RELATIVE_HUMIDITY: 2.0,
    SensorKind.PRESSURE: 1.5,
    SensorKind.AIRFLOW: 25.0,
}


@dataclass(frozen=True)
class Sensor:
    """One physical sensor.

    Attributes:
        sensor_id: unique label, e.g. ``DC1-R017/inlet-temp``.
        kind: measured quantity.
        level: mounting level in the spatial hierarchy.
        location: identifier of the mounted entity (rack id, row, AHU id).
        noise_sd: Gaussian measurement noise standard deviation.
        dropout_rate: probability a reading is missing on a given day
            (dead battery, network blip); the BMS records NaN then.
    """

    sensor_id: str
    kind: SensorKind
    level: SensorLevel
    location: str
    noise_sd: float
    dropout_rate: float = 0.002

    def __post_init__(self) -> None:
        if self.noise_sd < 0:
            raise ConfigError(f"{self.sensor_id}: noise_sd must be >= 0")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ConfigError(f"{self.sensor_id}: dropout_rate must be in [0, 1)")

    def read(self, true_value: float, rng: np.random.Generator) -> float:
        """One observation of ``true_value``; NaN when the reading drops."""
        if rng.random() < self.dropout_rate:
            return float("nan")
        return float(true_value + rng.normal(0.0, self.noise_sd))


def rack_sensor_pair(rack_id: str) -> tuple[Sensor, Sensor]:
    """The standard per-rack instrumentation: inlet temp + RH."""
    return (
        Sensor(
            sensor_id=f"{rack_id}/inlet-temp",
            kind=SensorKind.INLET_TEMP,
            level=SensorLevel.RACK,
            location=rack_id,
            noise_sd=DEFAULT_NOISE_SD[SensorKind.INLET_TEMP],
        ),
        Sensor(
            sensor_id=f"{rack_id}/rh",
            kind=SensorKind.RELATIVE_HUMIDITY,
            level=SensorLevel.RACK,
            location=rack_id,
            noise_sd=DEFAULT_NOISE_SD[SensorKind.RELATIVE_HUMIDITY],
        ),
    )


def ahu_pressure_sensor(dc_name: str, ahu_index: int) -> Sensor:
    """Pressure instrumentation for one air-handler unit."""
    if ahu_index < 0:
        raise ConfigError(f"ahu_index must be >= 0, got {ahu_index}")
    return Sensor(
        sensor_id=f"{dc_name}/AHU{ahu_index}/pressure",
        kind=SensorKind.PRESSURE,
        level=SensorLevel.AHU,
        location=f"{dc_name}/AHU{ahu_index}",
        noise_sd=DEFAULT_NOISE_SD[SensorKind.PRESSURE],
    )
