"""Cooling-plant models: adiabatic (DC1) and chilled-water HVAC (DC2).

Table I gives the two plants; the paper's §IV footnote describes the
trade-off: adiabatic cooling is energy-efficient and "effective in warm,
dry climates, but has a major drawback of the need for a large amount of
water"; chilled-water HVAC holds conditions tightly at higher OpEx.

The key reproduction target is Fig 18's regime: DC1 racks sometimes see
inlet air **above 78 °F with RH below 25%**, while DC2 essentially never
leaves its setpoint band.  In an adiabatic plant that hot-and-dry regime
occurs exactly when the site is hot and dry *and* the plant limits
evaporation to conserve water — so we model a water-conservation mode
that throttles evaporative effectiveness on the driest days.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..errors import ConfigError
from ..units import clamp
from .weather import WeatherDay, wet_bulb_estimate_f


@dataclass(frozen=True)
class SupplyAir:
    """Conditions of the air a cooling plant delivers to the IT space."""

    temp_f: float
    rh: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rh <= 100.0:
            raise ConfigError(f"supply RH {self.rh} outside [0, 100]")


class CoolingPlant:
    """Interface: turn outdoor weather into supply-air conditions."""

    def supply_air(self, weather: WeatherDay) -> SupplyAir:
        """Supply-air conditions for the day's outdoor weather."""
        raise NotImplementedError


class AdiabaticCoolingPlant(CoolingPlant):
    """Evaporative (adiabatic) cooling, as in DC1.

    Supply temperature approaches the outdoor wet-bulb temperature with
    some effectiveness < 1; evaporation raises supply RH.  On very dry
    days the plant enters water-conservation mode and throttles
    effectiveness, letting supply air run hot *and* dry — the regime the
    paper's MF model flags as detrimental to disks.

    Args:
        effectiveness: fraction of the dry-bulb→wet-bulb gap removed at
            full water flow (typical media: 0.7-0.9).
        conservation_rh_threshold: outdoor RH (%) below which water
            conservation starts throttling evaporation.
        min_effectiveness: effectiveness floor in full conservation mode.
        min_supply_f / max_supply_f: mechanical trim limits; the plant
            mixes return air on cold days and concedes on extreme days
            (Table III observes 56-90 °F at the racks).
    """

    def __init__(
        self,
        effectiveness: float = 0.80,
        conservation_rh_threshold: float = 30.0,
        min_effectiveness: float = 0.18,
        min_supply_f: float = 58.0,
        max_supply_f: float = 88.0,
    ):
        if not 0.0 < effectiveness <= 1.0:
            raise ConfigError(f"effectiveness must be in (0, 1], got {effectiveness}")
        if not 0.0 <= min_effectiveness <= effectiveness:
            raise ConfigError("min_effectiveness must be in [0, effectiveness]")
        if min_supply_f >= max_supply_f:
            raise ConfigError("min_supply_f must be below max_supply_f")
        self.effectiveness = effectiveness
        self.conservation_rh_threshold = conservation_rh_threshold
        self.min_effectiveness = min_effectiveness
        self.min_supply_f = min_supply_f
        self.max_supply_f = max_supply_f

    def effective_effectiveness(self, outdoor_rh: float) -> float:
        """Evaporative effectiveness after water-conservation throttling."""
        if outdoor_rh >= self.conservation_rh_threshold:
            return self.effectiveness
        # Linear throttle: at 0% outdoor RH the plant runs at the floor.
        fraction = outdoor_rh / self.conservation_rh_threshold
        return self.min_effectiveness + fraction * (
            self.effectiveness - self.min_effectiveness
        )

    def supply_air(self, weather: WeatherDay) -> SupplyAir:
        """Evaporatively cooled supply air for the day."""
        eff = self.effective_effectiveness(weather.rh)
        wet_bulb = wet_bulb_estimate_f(weather.temp_f, max(weather.rh, 1.0))
        raw_temp = weather.temp_f - eff * (weather.temp_f - wet_bulb)
        temp = clamp(raw_temp, self.min_supply_f, self.max_supply_f)

        # Evaporation adds moisture roughly in proportion to the cooling
        # achieved; throttled days add little moisture.
        cooling_achieved = max(0.0, weather.temp_f - raw_temp)
        rh = clamp(weather.rh + 2.4 * cooling_achieved * (eff / self.effectiveness),
                   3.0, 95.0)
        return SupplyAir(temp_f=temp, rh=rh)


class ChilledWaterPlant(CoolingPlant):
    """Traditional chilled-water HVAC, as in DC2.

    Holds supply air at a setpoint with a small regulation error that
    grows mildly with outdoor heat load; humidity is actively managed
    into a band.  DC2's racks therefore never see the hot-dry regime.
    """

    def __init__(
        self,
        setpoint_f: float = 66.0,
        regulation_sd_f: float = 1.2,
        heat_load_slope: float = 0.04,
        rh_setpoint: float = 45.0,
        rh_band: float = 6.0,
    ):
        if not 40.0 <= setpoint_f <= 90.0:
            raise ConfigError(f"implausible setpoint {setpoint_f} °F")
        if regulation_sd_f < 0 or rh_band < 0:
            raise ConfigError("regulation spreads must be >= 0")
        self.setpoint_f = setpoint_f
        self.regulation_sd_f = regulation_sd_f
        self.heat_load_slope = heat_load_slope
        self.rh_setpoint = rh_setpoint
        self.rh_band = rh_band

    def supply_air(self, weather: WeatherDay) -> SupplyAir:
        """Tightly regulated supply air; drifts slightly on hot days."""
        heat_excess = max(0.0, weather.temp_f - 80.0)
        temp = self.setpoint_f + self.heat_load_slope * heat_excess
        # Deterministic daily value; per-rack noise is added by sensors
        # and region offsets.  RH nudges toward outdoor moisture within
        # the managed band.
        rh_nudge = clamp((weather.rh - 50.0) / 50.0, -1.0, 1.0) * self.rh_band
        return SupplyAir(
            temp_f=clamp(temp, self.setpoint_f - 2.0, self.setpoint_f + 6.0),
            rh=clamp(self.rh_setpoint + rh_nudge, 25.0, 65.0),
        )


def plant_for(cooling_kind: "CoolingKindLike") -> CoolingPlant:
    """Instantiate the default plant model for a Table I cooling kind."""
    from ..datacenter.topology import CoolingKind

    if cooling_kind == CoolingKind.ADIABATIC:
        return AdiabaticCoolingPlant()
    if cooling_kind == CoolingKind.CHILLED_WATER:
        return ChilledWaterPlant()
    raise ConfigError(f"unknown cooling kind: {cooling_kind!r}")


CoolingKindLike = object  # documentation alias; see plant_for
