"""Building Management System (BMS): sensor collection and alarms.

Per §IV, "a building management system (BMS) is responsible for the
collection and monitoring of the sensor data, and triggering specific
actions like alarms, when any of the sensor values exceed the normal
threshold range."

The BMS is the *only* source of environmental data for the analysis
layer: it turns the true per-rack conditions of
:class:`~repro.environment.conditions.EnvironmentSeries` into noisy
per-rack-day readings (with occasional dropouts) and raises threshold
alarms.  Analyses therefore work from observed telemetry, like a real
operator, not from simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.topology import Fleet
from ..errors import ConfigError
from ..rng import RngRegistry
from .conditions import EnvironmentSeries
from .sensors import DEFAULT_NOISE_SD, SensorKind, rack_sensor_pair


@dataclass(frozen=True)
class AlarmThresholds:
    """Normal operating band; readings outside it raise alarms.

    Defaults follow ASHRAE-style allowable envelopes: the paper's DCs
    observe 56-90 °F and 5-87% RH at the racks (Table III), with alarms
    marking the excursions operators would investigate.
    """

    temp_low_f: float = 59.0
    temp_high_f: float = 86.0
    rh_low: float = 10.0
    rh_high: float = 80.0

    def __post_init__(self) -> None:
        if self.temp_low_f >= self.temp_high_f:
            raise ConfigError("temp_low_f must be below temp_high_f")
        if not 0.0 <= self.rh_low < self.rh_high <= 100.0:
            raise ConfigError("RH thresholds must satisfy 0 <= low < high <= 100")


@dataclass(frozen=True)
class Alarm:
    """One threshold-excursion alarm raised by the BMS."""

    day_index: int
    rack_index: int
    kind: SensorKind
    value: float
    threshold: float
    direction: str  # "high" or "low"


class BmsLog:
    """Observed environmental telemetry for a whole run.

    Attributes:
        temp_f: (n_days, n_racks) observed inlet temperature; NaN where
            the reading dropped out.
        rh: (n_days, n_racks) observed relative humidity; NaN likewise.
        alarms: list of :class:`Alarm` in chronological order.
    """

    def __init__(self, temp_f: np.ndarray, rh: np.ndarray, alarms: list[Alarm]):
        if temp_f.shape != rh.shape:
            raise ConfigError(f"shape mismatch: temp {temp_f.shape} vs rh {rh.shape}")
        self.temp_f = temp_f
        self.rh = rh
        self.alarms = alarms

    @property
    def n_days(self) -> int:
        """Number of observed days."""
        return self.temp_f.shape[0]

    @property
    def n_racks(self) -> int:
        """Number of instrumented racks."""
        return self.temp_f.shape[1]

    def dropout_fraction(self) -> float:
        """Fraction of readings lost to sensor dropouts."""
        total = self.temp_f.size + self.rh.size
        missing = int(np.isnan(self.temp_f).sum() + np.isnan(self.rh).sum())
        return missing / total

    def filled_temp_f(self) -> np.ndarray:
        """Temperature with dropouts filled by per-rack interpolation."""
        return _fill_nans_along_days(self.temp_f)

    def filled_rh(self) -> np.ndarray:
        """RH with dropouts filled by per-rack interpolation."""
        return _fill_nans_along_days(self.rh)


def _fill_nans_along_days(values: np.ndarray) -> np.ndarray:
    """Fill NaNs per column via linear interpolation over the day axis."""
    filled = values.copy()
    days = np.arange(values.shape[0])
    for rack in range(values.shape[1]):
        column = filled[:, rack]
        missing = np.isnan(column)
        if not missing.any():
            continue
        if missing.all():
            raise ConfigError(f"rack column {rack} has no valid readings to interpolate")
        column[missing] = np.interp(days[missing], days[~missing], column[~missing])
    return filled


class BuildingManagementSystem:
    """Collects per-rack sensor readings and raises threshold alarms.

    Args:
        fleet: instrumented fleet (one temp + one RH sensor per rack).
        thresholds: alarm band; defaults per :class:`AlarmThresholds`.
    """

    def __init__(self, fleet: Fleet, thresholds: AlarmThresholds | None = None):
        self.fleet = fleet
        self.thresholds = thresholds or AlarmThresholds()
        self.sensors = [rack_sensor_pair(rack.rack_id) for rack in fleet.racks]

    def collect(self, environment: EnvironmentSeries, rngs: RngRegistry) -> BmsLog:
        """Observe the whole run: noisy readings plus alarms.

        Sensor noise and dropouts are applied vectorized for speed but
        with the same per-kind noise magnitudes as the individual
        :class:`~repro.environment.sensors.Sensor` objects.
        """
        rng = rngs.stream("bms")
        n_days, n_racks = environment.temp_f.shape
        if n_racks != len(self.sensors):
            raise ConfigError(
                f"environment covers {n_racks} racks but BMS instruments {len(self.sensors)}"
            )

        temp_noise_sd = DEFAULT_NOISE_SD[SensorKind.INLET_TEMP]
        rh_noise_sd = DEFAULT_NOISE_SD[SensorKind.RELATIVE_HUMIDITY]
        dropout = self.sensors[0][0].dropout_rate

        observed_temp = environment.temp_f + rng.normal(
            0.0, temp_noise_sd, size=(n_days, n_racks)
        )
        observed_rh = np.clip(
            environment.rh + rng.normal(0.0, rh_noise_sd, size=(n_days, n_racks)),
            0.0, 100.0,
        )
        observed_temp[rng.random((n_days, n_racks)) < dropout] = np.nan
        observed_rh[rng.random((n_days, n_racks)) < dropout] = np.nan

        alarms = self._scan_alarms(observed_temp, observed_rh)
        return BmsLog(temp_f=observed_temp, rh=observed_rh, alarms=alarms)

    def rebuild_log(self, temp_f: np.ndarray, rh: np.ndarray) -> BmsLog:
        """Reassemble a :class:`BmsLog` from previously observed readings.

        Used by the run cache: the noisy readings come from disk, and the
        (deterministic) alarm scan is re-run over them, giving a log
        identical to the original :meth:`collect` output.
        """
        return BmsLog(temp_f=temp_f, rh=rh, alarms=self._scan_alarms(temp_f, rh))

    def _scan_alarms(self, temp_f: np.ndarray, rh: np.ndarray) -> list[Alarm]:
        """Threshold scan over all observed readings."""
        thresholds = self.thresholds
        alarms: list[Alarm] = []
        checks = [
            (temp_f, SensorKind.INLET_TEMP, thresholds.temp_high_f, "high"),
            (temp_f, SensorKind.INLET_TEMP, thresholds.temp_low_f, "low"),
            (rh, SensorKind.RELATIVE_HUMIDITY, thresholds.rh_high, "high"),
            (rh, SensorKind.RELATIVE_HUMIDITY, thresholds.rh_low, "low"),
        ]
        for values, kind, threshold, direction in checks:
            if direction == "high":
                days, racks = np.where(values > threshold)
            else:
                days, racks = np.where(values < threshold)
            for day, rack in zip(days.tolist(), racks.tolist()):
                alarms.append(Alarm(
                    day_index=day, rack_index=rack, kind=kind,
                    value=float(values[day, rack]),
                    threshold=threshold, direction=direction,
                ))
        alarms.sort(key=lambda alarm: (alarm.day_index, alarm.rack_index, alarm.kind.value))
        return alarms
