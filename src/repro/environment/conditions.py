"""Vectorized per-rack environmental conditions over the whole run.

This is the bridge between the weather/cooling substrate and the failure
engine: for every simulated day it produces the *true* inlet temperature
and relative humidity at every rack, as

    rack condition = plant supply air (per DC)
                   + region offset (hot spots, Fig 2's intra-DC spread)
                   + persistent per-rack micro-climate offset
                   + small day-to-day local noise.

Both the failure engine (hazards react to true conditions) and the BMS
(sensors observe true conditions with noise) read from here, so they are
guaranteed to be consistent.
"""

from __future__ import annotations

import numpy as np

from ..datacenter.topology import Fleet
from ..errors import ConfigError
from ..rng import RngRegistry
from .cooling import plant_for
from .weather import SiteClimate, WeatherSeries, dc1_site_climate, dc2_site_climate


class EnvironmentSeries:
    """True daily inlet conditions for every rack.

    Args:
        fleet: the fleet whose racks we condition.
        n_days: observation-window length.
        rngs: RNG registry (uses the ``"weather"`` and ``"microclimate"``
            streams).
        climates: optional per-DC site climates keyed by DC name;
            defaults to the DC1/DC2 site models in catalog order.
        start_day_of_year: calendar alignment of day 0.

    Attributes:
        temp_f: array of shape (n_days, n_racks) — true inlet °F.
        rh: array of shape (n_days, n_racks) — true inlet %RH.
        weather: per-DC outdoor :class:`WeatherSeries`, keyed by DC name.
    """

    def __init__(
        self,
        fleet: Fleet,
        n_days: int,
        rngs: RngRegistry,
        climates: dict[str, SiteClimate] | None = None,
        start_day_of_year: int = 0,
    ):
        if n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {n_days}")
        arrays = fleet.arrays()
        self.n_days = n_days
        self.n_racks = arrays.n_racks

        if climates is None:
            defaults = [dc1_site_climate(), dc2_site_climate()]
            climates = {}
            for index, dc in enumerate(fleet.datacenters):
                climates[dc.name] = defaults[min(index, len(defaults) - 1)]
        for dc in fleet.datacenters:
            if dc.name not in climates:
                raise ConfigError(f"no site climate supplied for {dc.name}")

        weather_rng = rngs.stream("weather")
        micro_rng = rngs.stream("microclimate")

        excursion_rng = rngs.stream("plant-excursions")
        self.weather: dict[str, WeatherSeries] = {}
        supply_temp = np.empty((n_days, len(fleet.datacenters)))
        supply_rh = np.empty((n_days, len(fleet.datacenters)))
        for dc_index, dc in enumerate(fleet.datacenters):
            series = WeatherSeries(
                climates[dc.name], n_days, weather_rng,
                start_day_of_year=start_day_of_year,
            )
            self.weather[dc.name] = series
            plant = plant_for(dc.spec.cooling)
            for day in range(n_days):
                air = plant.supply_air(series.day(day))
                supply_temp[day, dc_index] = air.temp_f
                supply_rh[day, dc_index] = air.rh
            # Chilled-water plants occasionally run degraded (chiller
            # failover, maintenance on a loop): supply air spikes for a
            # day.  These excursions are what let Fig 18 compare DC2's
            # hot rack-days at all — and find its disks unaffected.
            from ..datacenter.topology import CoolingKind

            if dc.spec.cooling == CoolingKind.CHILLED_WATER:
                excursions = excursion_rng.random(n_days) < 0.03
                spikes = excursion_rng.uniform(8.0, 16.0, size=n_days)
                supply_temp[:, dc_index] += np.where(excursions, spikes, 0.0)

        # Persistent per-rack micro-climate: a rack near a perforated
        # tile differs from one at a row end, day after day.
        rack_temp_offset = micro_rng.normal(0.0, 1.3, size=self.n_racks)
        rack_rh_offset = micro_rng.normal(0.0, 2.2, size=self.n_racks)

        dc_code = arrays.dc_code
        base_temp = supply_temp[:, dc_code]  # (n_days, n_racks)
        base_rh = supply_rh[:, dc_code]
        daily_temp_noise = micro_rng.normal(0.0, 0.6, size=(n_days, self.n_racks))
        daily_rh_noise = micro_rng.normal(0.0, 1.2, size=(n_days, self.n_racks))

        self.temp_f = (
            base_temp
            + arrays.region_thermal_offset[np.newaxis, :]
            + rack_temp_offset[np.newaxis, :]
            + daily_temp_noise
        )
        self.rh = np.clip(
            base_rh
            + arrays.region_humidity_offset[np.newaxis, :]
            + rack_rh_offset[np.newaxis, :]
            + daily_rh_noise,
            2.0, 99.0,
        )

    @classmethod
    def from_arrays(
        cls,
        fleet: Fleet,
        temp_f: np.ndarray,
        rh: np.ndarray,
        weather: "dict[str, WeatherSeries] | None" = None,
    ) -> "EnvironmentSeries":
        """Restore a series from previously computed condition matrices.

        Used by the run cache: conditions are loaded from disk instead of
        re-deriving them from weather/cooling models.  ``weather`` is
        optional — cached bundles do not persist the outdoor series.
        """
        arrays = fleet.arrays()
        temp_f = np.asarray(temp_f, dtype=float)
        rh = np.asarray(rh, dtype=float)
        if temp_f.shape != rh.shape:
            raise ConfigError(f"shape mismatch: temp {temp_f.shape} vs rh {rh.shape}")
        if temp_f.ndim != 2 or temp_f.shape[1] != arrays.n_racks:
            raise ConfigError(
                f"condition matrices must be (n_days, {arrays.n_racks}), "
                f"got {temp_f.shape}"
            )
        series = cls.__new__(cls)
        series.n_days = temp_f.shape[0]
        series.n_racks = arrays.n_racks
        series.weather = weather or {}
        series.temp_f = temp_f
        series.rh = rh
        return series

    def day_conditions(self, day_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(temp_f, rh) arrays over racks for one day."""
        if not 0 <= day_index < self.n_days:
            raise ConfigError(f"day_index {day_index} outside [0, {self.n_days})")
        return self.temp_f[day_index], self.rh[day_index]

    def shift_setpoints(
        self,
        start_day: int,
        temp_delta_f: float = 0.0,
        rh_delta: float = 0.0,
        rack_indices: "np.ndarray | list[int] | None" = None,
    ) -> None:
        """Shift true conditions from ``start_day`` on — the sanctioned
        mutation point for autonomics setpoint moves.

        Models the cooling plant retargeting its supply-air setpoints:
        every affected rack's inlet temperature (and/or humidity) moves
        by the given delta for all days at or after ``start_day``.  RH
        stays clipped to the physical [2, 99] band.  Callers (the
        simulation session) must only shift days whose failure draws
        have not yet been realized.
        """
        if not 0 <= start_day <= self.n_days:
            raise ConfigError(
                f"start_day {start_day} outside [0, {self.n_days}]"
            )
        cols: "np.ndarray | slice"
        if rack_indices is None:
            cols = slice(None)
        else:
            cols = np.asarray(rack_indices, dtype=np.int64)
            if cols.size and (cols.min() < 0 or cols.max() >= self.n_racks):
                raise ConfigError(
                    f"rack_indices outside [0, {self.n_racks})"
                )
        self.temp_f[start_day:, cols] += temp_delta_f
        self.rh[start_day:, cols] = np.clip(
            self.rh[start_day:, cols] + rh_delta, 2.0, 99.0,
        )
