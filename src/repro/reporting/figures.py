"""Reproductions of the paper's Figures 1-18 as data series.

Every function takes an :class:`~repro.reporting.context.AnalysisContext`
and returns a :class:`FigureSeries` — labels plus one or more named
value series, with a text renderer — so benchmarks, tests and examples
all share one implementation per figure.

Values follow the paper's conventions: failure rates are per rack-day,
and (like the paper's plots) series can be normalized to their maximum
via :meth:`FigureSeries.normalized`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decisions.availability import PAPER_SLAS, AvailabilitySla
from ..decisions.climate import (
    FIG16_TEMP_BINS,
    climate_group_rates,
    temperature_binned_rates,
)
from ..decisions.sku_ranking import FIG14_SKUS, compare_skus
from ..errors import DataError
from ..telemetry.aggregate import mean_rate_by
from ..telemetry.stats import BinSpec, binned_mean_sd, make_range_bins
from .context import AnalysisContext
from .render import render_bars, render_cdf


@dataclass(frozen=True)
class FigureSeries:
    """One reproduced figure: labels and named value series.

    Attributes:
        figure_id: e.g. ``"fig06"``.
        title: what the paper's figure shows.
        labels: x-axis categories.
        series: name → values (aligned with ``labels``).
        notes: free-form reproduction notes.
    """

    figure_id: str
    title: str
    labels: tuple[str, ...]
    series: dict[str, np.ndarray]
    notes: str = ""

    def values(self, name: str) -> np.ndarray:
        """One named series."""
        if name not in self.series:
            raise DataError(f"{self.figure_id}: unknown series {name!r}")
        return self.series[name]

    def normalized(self, name: str) -> np.ndarray:
        """A series scaled to its maximum (the paper's normalization)."""
        values = self.values(name).astype(float)
        finite = values[np.isfinite(values)]
        peak = finite.max() if finite.size else 0.0
        if peak <= 0:
            raise DataError(f"{self.figure_id}: series {name!r} has no positive values")
        return values / peak

    def render(self) -> str:
        """Text rendering of all series as bar charts."""
        parts = [f"{self.figure_id}: {self.title}"]
        for name, values in self.series.items():
            parts.append(render_bars(list(self.labels), values, title=f"[{name}]"))
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


def _rate_figure(
    context: AnalysisContext,
    figure_id: str,
    title: str,
    factor: str,
    label_order: list[str] | None = None,
) -> FigureSeries:
    """Shared builder for the Figs 2-9 family: mean/sd λ by one factor."""
    stats = mean_rate_by(context.all_failures, factor)
    labels = label_order or sorted(stats)
    missing = [label for label in labels if label not in stats]
    if missing:
        raise DataError(f"{figure_id}: no data for {missing}")
    means = np.array([stats[label][0] for label in labels])
    sds = np.array([stats[label][1] for label in labels])
    return FigureSeries(
        figure_id=figure_id, title=title, labels=tuple(labels),
        series={"mean": means, "sd": sds},
    )


# -- §V-B evidence figures ------------------------------------------------

def fig02_spatial(context: AnalysisContext) -> FigureSeries:
    """Fig 2: mean failure rate by DC region (inter/intra-DC)."""
    regions = context.result.fleet.region_names
    return _rate_figure(context, "fig02", "Inter-DC and Intra-DC failure rate",
                        "region", label_order=regions)


def _per_year_series(
    context: AnalysisContext,
    factor: str,
    labels: list[str],
) -> dict[str, np.ndarray]:
    """Mean-rate series split by observation year (the paper's Figs 3-4
    plot 2012 and 2013 as separate, mutually confirming series)."""
    table = context.all_failures
    years = table.column("year").astype(int)
    series: dict[str, np.ndarray] = {}
    for year in np.unique(years):
        subset = table.filter(years == year)
        if subset.n_rows < 100:
            continue
        stats = mean_rate_by(subset, factor)
        series[f"year{year}"] = np.array([
            stats[label][0] if label in stats else np.nan for label in labels
        ])
    return series


def fig03_day_of_week(context: AnalysisContext) -> FigureSeries:
    """Fig 3: mean failure rate by day of week (overall + per year)."""
    labels = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"]
    figure = _rate_figure(
        context, "fig03", "Failure rate by day of week", "day_of_week",
        label_order=labels,
    )
    figure.series.update(_per_year_series(context, "day_of_week", labels))
    return figure


def fig04_month(context: AnalysisContext) -> FigureSeries:
    """Fig 4: mean failure rate by month of year (overall + per year)."""
    labels = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
              "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
    figure = _rate_figure(
        context, "fig04", "Failure rate by month of year", "month",
        label_order=labels,
    )
    figure.series.update(_per_year_series(context, "month", labels))
    return figure


def fig05_humidity(context: AnalysisContext) -> FigureSeries:
    """Fig 5: mean failure rate by relative-humidity bin."""
    bins = make_range_bins([20.0, 30.0, 40.0, 50.0, 60.0, 70.0])
    table = context.all_failures
    bin_index = bins.assign(table.column("rh").astype(float))
    means, sds, counts = binned_mean_sd(
        bin_index, table.column("failures").astype(float), bins.n_bins
    )
    return FigureSeries(
        figure_id="fig05", title="Failure rate by relative humidity (%)",
        labels=bins.labels, series={"mean": means, "sd": sds,
                                    "count": counts.astype(float)},
    )


def fig06_workload(context: AnalysisContext) -> FigureSeries:
    """Fig 6: mean failure rate by workload W1-W7."""
    return _rate_figure(
        context, "fig06", "Failure rate by workload", "workload",
        label_order=[f"W{i}" for i in range(1, 8)],
    )


def fig07_sku(context: AnalysisContext) -> FigureSeries:
    """Fig 7: mean failure rate by SKU S1-S4."""
    return _rate_figure(context, "fig07", "Failure rate by SKU",
                        "sku", label_order=["S1", "S2", "S3", "S4"])


def fig08_power(context: AnalysisContext) -> FigureSeries:
    """Fig 8: mean failure rate by rack power rating."""
    table = context.all_failures
    rated = table.column("rated_power_kw").astype(float)
    levels = sorted(np.unique(rated).tolist())
    means, sds = [], []
    failures = table.column("failures").astype(float)
    for level in levels:
        group = failures[rated == level]
        means.append(group.mean())
        sds.append(group.std())
    return FigureSeries(
        figure_id="fig08", title="Failure rate by rack power rating (kW)",
        labels=tuple(f"{level:g}" for level in levels),
        series={"mean": np.array(means), "sd": np.array(sds)},
    )


def fig09_age(context: AnalysisContext) -> FigureSeries:
    """Fig 9: mean failure rate by equipment age (months)."""
    bins = BinSpec(
        edges=(5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0),
        labels=("0-5", "5-10", "10-15", "15-20", "20-25",
                "25-30", "30-35", "35-40", ">40"),
    )
    table = context.all_failures
    bin_index = bins.assign(table.column("age_months").astype(float))
    means, sds, counts = binned_mean_sd(
        bin_index, table.column("failures").astype(float), bins.n_bins
    )
    return FigureSeries(
        figure_id="fig09", title="Failure rate by equipment age (months)",
        labels=bins.labels, series={"mean": means, "sd": sds,
                                    "count": counts.astype(float)},
    )


# -- Q1 figures -------------------------------------------------------------

def fig01_cdf_concept(
    context: AnalysisContext,
    workload: str = "W6",
    sla_level: float = 0.95,
) -> dict[str, np.ndarray]:
    """Fig 1: aggregate CDF vs per-group CDFs of spare requirements.

    Returns the pooled per-rack requirement-fraction sample plus the
    calmest and the most demanding MF cluster's samples — the e / g1 /
    g2 construction of the illustrative figure, from real (simulated)
    data.
    """
    provisioner = context.provisioner(24.0)
    sla = AvailabilitySla(sla_level)
    plan = provisioner.multi_factor(workload, sla)
    if plan.clusters is None or len(plan.clusters) < 2:
        raise DataError("need at least two clusters for the Fig 1 construction")
    racks = plan.rack_indices
    capacity = provisioner.arrays.n_servers[racks].astype(float)
    requirements = np.array([
        provisioner.rack_requirement(rack, sla) for rack in racks
    ]) / capacity
    clusters = sorted(plan.clusters, key=lambda cluster: cluster.fraction)
    rack_position = {rack: i for i, rack in enumerate(racks.tolist())}
    low = np.array([requirements[rack_position[r]]
                    for r in clusters[0].rack_indices.tolist()])
    high = np.array([requirements[rack_position[r]]
                     for r in clusters[-1].rack_indices.tolist()])
    return {"all": requirements, "group_low": low, "group_high": high}


def render_fig01(samples: dict[str, np.ndarray]) -> str:
    """Text rendering of Fig 1's three CDFs."""
    parts = ["fig01: requirement CDFs (aggregate vs groups)"]
    for name, sample in samples.items():
        parts.append(render_cdf(sample, title=f"[{name}] n={len(sample)}"))
    return "\n".join(parts)


def fig10_overprovision(
    context: AnalysisContext,
    window_hours: float = 24.0,
    workloads: tuple[str, ...] = ("W1", "W6"),
) -> FigureSeries:
    """Figs 10/12: over-provisioned capacity, LB/MF/SF × SLA × workload.

    ``window_hours=24`` reproduces Fig 10 (daily), ``1.0`` Fig 12
    (hourly).
    """
    provisioner = context.provisioner(window_hours)
    daily = context.provisioner(24.0) if window_hours < 24.0 else None
    labels = []
    data: dict[str, list[float]] = {"LB": [], "MF": [], "SF": []}
    for workload in workloads:
        for level in PAPER_SLAS:
            sla = AvailabilitySla(level)
            plans = {
                "LB": provisioner.lower_bound(workload, sla),
                "SF": provisioner.single_factor(workload, sla),
            }
            if daily is not None:
                # Hourly provisioning reuses the daily deployment-time
                # clusters; only the window granularity changes.
                daily_plan = daily.multi_factor(workload, sla)
                plans["MF"] = provisioner.multi_factor(
                    workload, sla, clusters_from=daily_plan,
                )
            else:
                plans["MF"] = provisioner.multi_factor(workload, sla)
            labels.append(f"{workload}@{level * 100:g}%")
            for approach in ("LB", "MF", "SF"):
                data[approach].append(100.0 * plans[approach].overprovision)
    figure_id = "fig10" if window_hours >= 24.0 else "fig12"
    return FigureSeries(
        figure_id=figure_id,
        title=f"Over-provisioning %, {'daily' if window_hours >= 24 else 'hourly'} granularity",
        labels=tuple(labels),
        series={name: np.array(values) for name, values in data.items()},
    )


def fig11_cluster_cdfs(
    context: AnalysisContext,
    workload: str,
    sla_level: float = 1.0,
) -> dict[str, np.ndarray]:
    """Fig 11: per-cluster over-provision requirement samples.

    Returns ``{"SF": pooled samples, "Cluster1": ..., ...}`` in
    ascending cluster-fraction order (percent of rack capacity).
    """
    provisioner = context.provisioner(24.0)
    sla = AvailabilitySla(sla_level)
    plan = provisioner.multi_factor(workload, sla)
    assert plan.clusters is not None
    pooled = provisioner.pooled_fractions(plan.rack_indices)
    output: dict[str, np.ndarray] = {"SF": 100.0 * pooled}
    for index, cluster in enumerate(
        sorted(plan.clusters, key=lambda c: c.fraction), start=1
    ):
        output[f"Cluster{index}"] = 100.0 * cluster.requirement_samples
    return output


def fig13_component_spares(
    context: AnalysisContext,
    sla_level: float = 1.0,
    workloads: tuple[str, ...] = ("W1", "W6"),
) -> FigureSeries:
    """Fig 13: component-level vs server-level spare cost (100% SLA).

    Values are costs normalized to the maximum bar, matching the
    figure's "% cost of overprovisioning" axis.
    """
    provisioner = context.component_provisioner(24.0)
    sla = AvailabilitySla(sla_level)
    labels = []
    data: dict[str, list[float]] = {"LB": [], "MF": [], "SF": []}
    for workload in workloads:
        plans = provisioner.compare(workload, sla)
        for kind in ("component", "server"):
            labels.append(f"{workload}/{kind}")
            for approach in ("LB", "MF", "SF"):
                plan = plans[approach]
                cost = (plan.component_cost if kind == "component"
                        else plan.server_cost)
                data[approach].append(cost)
    series = {}
    peak = max(max(values) for values in data.values())
    for name, values in data.items():
        series[name] = 100.0 * np.array(values) / peak
    return FigureSeries(
        figure_id="fig13",
        title="Component vs server-level spare cost (100% SLA, daily)",
        labels=tuple(labels),
        series=series,
    )


# -- Q2 figures -------------------------------------------------------------

def fig14_fig15_sku(context: AnalysisContext):
    """Figs 14-15: SKU reliability via SF and MF.

    Returns the full :class:`~repro.decisions.sku_ranking.SkuComparison`;
    use :func:`render_fig14` / :func:`render_fig15` for text output.
    """
    return compare_skus(context.result, table=context.hardware_failures)


def render_fig14(comparison) -> str:
    """Fig 14 text: normalized SF peak and average rates for S1-S4."""
    labels = list(FIG14_SKUS)
    peak = comparison.normalized_sf(statistic="peak")
    mean = comparison.normalized_sf(statistic="mean")
    parts = ["fig14: SKU comparison (single factor, normalized to peak SKU)"]
    parts.append(render_bars(labels, [peak[s] for s in labels], title="[peak rate]"))
    parts.append(render_bars(labels, [mean[s] for s in labels], title="[avg rate]"))
    return "\n".join(parts)


def render_fig15(comparison) -> str:
    """Fig 15 text: MF-adjusted peak and average rates for S2 vs S4.

    Uses the common-support statistics (both SKUs standardized over the
    strata they share) when available, so the bars and the printed
    ratio agree.
    """
    labels = ["S2", "S4"]
    peak_stats = comparison.mf_pair_peak or comparison.mf_peak
    mean_stats = comparison.mf_pair or comparison.mf_mean
    peaks = [peak_stats[s].peak for s in labels]
    means = [mean_stats[s].mean for s in labels]
    parts = ["fig15: SKU comparison (multi factor, stratum-standardized)"]
    parts.append(render_bars(labels, peaks, title="[peak rate]"))
    parts.append(render_bars(labels, means, title="[avg rate]"))
    parts.append(
        f"S2/S4 average-rate ratio: SF {comparison.sf_ratio('S2', 'S4'):.1f}X "
        f"vs MF {comparison.mf_ratio('S2', 'S4'):.1f}X"
    )
    return "\n".join(parts)


# -- Q3 figures -------------------------------------------------------------

def fig16_temperature_all(context: AnalysisContext) -> FigureSeries:
    """Fig 16: all failures vs operating-temperature bin."""
    binned = temperature_binned_rates(
        context.result, table=context.all_failures, bins=FIG16_TEMP_BINS,
    )
    return FigureSeries(
        figure_id="fig16", title="All failures vs temperature (F)",
        labels=binned.bins.labels,
        series={"mean": binned.means, "sd": binned.sds,
                "count": binned.counts.astype(float)},
    )


def fig17_temperature_disk(context: AnalysisContext) -> FigureSeries:
    """Fig 17: hard-disk failures vs operating-temperature bin."""
    binned = temperature_binned_rates(
        context.result, table=context.disk_failures, bins=FIG16_TEMP_BINS,
    )
    return FigureSeries(
        figure_id="fig17", title="Hard disk failures vs temperature (F)",
        labels=binned.bins.labels,
        series={"mean": binned.means, "sd": binned.sds,
                "count": binned.counts.astype(float)},
    )


def fig18_climate_mf(context: AnalysisContext) -> FigureSeries:
    """Fig 18: HDD failures vs T/RH groups per DC (MF view).

    Bars are normalized to DC1's hot-and-dry subgroup, as the paper's
    y-axis note specifies.
    """
    groups = {
        dc.name: climate_group_rates(
            context.result, dc.name, table=context.disk_failures,
        )
        for dc in context.result.fleet.datacenters
    }
    dc1 = context.result.fleet.datacenters[0].name
    reference = groups[dc1].hot_dry
    if not np.isfinite(reference) or reference <= 0:
        raise DataError("DC1 hot-and-dry group is empty; cannot normalize Fig 18")
    labels, values = [], []
    for dc_name, group in groups.items():
        for name, value in (("T<=78F", group.cool), ("T>=78.8F", group.hot),
                            ("T>=78.8+RH<=25.5", group.hot_dry), ("All", group.overall)):
            labels.append(f"{dc_name}:{name}")
            values.append(value / reference if np.isfinite(value) else np.nan)
    return FigureSeries(
        figure_id="fig18",
        title="HDD failures vs temperature and RH (normalized to DC1 hot+dry)",
        labels=tuple(labels),
        series={"rate": np.array(values)},
        notes="within-rack-normalized rates; NaN = regime never observed",
    )
