"""Full-report writer: every reproduced artifact into one markdown file."""

from __future__ import annotations

import pathlib

from ..errors import DataError
from .context import AnalysisContext
from .experiments import EXPERIMENTS


def write_report(
    context: AnalysisContext,
    path: str | pathlib.Path,
    experiment_ids: list[str] | None = None,
    title: str = "Reproduced evaluation — Rain or Shine? (ICDCS 2017)",
    jobs: int | None = 1,
    cache_dir: str | None = None,
) -> pathlib.Path:
    """Render the selected experiments into a markdown report.

    Args:
        context: analysis context over a simulation run.
        path: output ``.md`` file.
        experiment_ids: subset to include (default: all, sorted).
        title: report heading.
        jobs: worker processes for rendering experiments (``<= 1`` is
            serial).  Workers reload the run through the cache when
            ``cache_dir`` is set, otherwise each re-simulates once.
        cache_dir: run-cache directory used by parallel workers.

    Returns:
        The written path.
    """
    ids = sorted(EXPERIMENTS) if experiment_ids is None else experiment_ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise DataError(f"unknown experiments: {unknown}")

    from ..parallel import run_experiments

    rendered = run_experiments(
        ids, context=context, config=context.result.config,
        jobs=jobs, cache_dir=cache_dir,
    )

    result = context.result
    lines = [
        f"# {title}",
        "",
        f"Run: {result.summary()}",
        "",
        "All values come from the simulated fleet (see DESIGN.md for the",
        "substitution rationale); compare shapes, not absolute numbers.",
        "",
    ]
    for experiment_id, text, error in rendered:
        experiment = EXPERIMENTS[experiment_id]
        lines.append(f"## {experiment_id} — {experiment.description}")
        lines.append("")
        lines.append("```")
        if text is not None:
            lines.append(text)
        else:
            # Miniature runs can lack the statistics an artifact needs
            # (e.g. too few racks for the Fig 1 cluster construction);
            # report that instead of aborting the whole document.
            lines.append(f"(not computable on this run: {error})")
        lines.append("```")
        lines.append("")

    output = pathlib.Path(path)
    output.write_text("\n".join(lines))
    return output
