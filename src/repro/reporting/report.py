"""Full-report writer: every reproduced artifact into one markdown file."""

from __future__ import annotations

import pathlib
from typing import Any, Callable

from ..errors import ConfigError, DataError
from .context import AnalysisContext
from .experiments import EXPERIMENTS


def write_report(
    context: AnalysisContext | None,
    path: str | pathlib.Path,
    experiment_ids: list[str] | None = None,
    title: str = "Reproduced evaluation — Rain or Shine? (ICDCS 2017)",
    jobs: int | None = 1,
    cache_dir: str | None = None,
    pipeline: Any = None,
    executions_sink: Callable[[list], None] | None = None,
    summary: str | None = None,
) -> pathlib.Path:
    """Render the selected experiments into a markdown report.

    Args:
        context: analysis context over a simulation run; may be None
            when ``pipeline`` (plus ``summary``) covers everything, in
            which case a fully warm artifact store renders the report
            without ever materializing the run.
        path: output ``.md`` file.
        experiment_ids: subset to include (default: all, sorted).
        title: report heading.
        jobs: worker processes for rendering experiments (``<= 1`` is
            serial).  Workers share the artifact store when
            ``cache_dir`` is set, otherwise each re-simulates once.
        cache_dir: artifact-store directory used by parallel workers.
        pipeline: report pipeline to resolve render artifacts through
            (see :func:`repro.parallel.run_experiments`).
        executions_sink: receives worker-process provenance records.
        summary: the run's one-line summary for the header (default:
            ``context.result.summary()``).

    Returns:
        The written path.
    """
    ids = sorted(EXPERIMENTS) if experiment_ids is None else experiment_ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise DataError(f"unknown experiments: {unknown}")
    if summary is None:
        if context is None:
            raise ConfigError("write_report needs a context or a summary")
        summary = context.result.summary()
    config = context.result.config if context is not None else (
        pipeline.stage("simulate").runtime.get("config")
        if pipeline is not None else None
    )

    from ..parallel import run_experiments

    rendered = run_experiments(
        ids, context=context, config=config,
        jobs=jobs, cache_dir=cache_dir,
        pipeline=pipeline, executions_sink=executions_sink,
    )

    lines = [
        f"# {title}",
        "",
        f"Run: {summary}",
        "",
        "All values come from the simulated fleet (see DESIGN.md for the",
        "substitution rationale); compare shapes, not absolute numbers.",
        "",
    ]
    for experiment_id, text, error in rendered:
        experiment = EXPERIMENTS[experiment_id]
        lines.append(f"## {experiment_id} — {experiment.description}")
        lines.append("")
        lines.append("```")
        if text is not None:
            lines.append(text)
        else:
            # Miniature runs can lack the statistics an artifact needs
            # (e.g. too few racks for the Fig 1 cluster construction);
            # report that instead of aborting the whole document.
            lines.append(f"(not computable on this run: {error})")
        lines.append("```")
        lines.append("")

    output = pathlib.Path(path)
    output.write_text("\n".join(lines))
    return output
