"""Plain-text rendering helpers for tables and bar series.

Every figure in the paper is a bar chart or CDF; these helpers render
the reproduced series as aligned text so benchmarks and examples can
print something a human can compare against the paper directly.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Fixed-width text table."""
    if not rows:
        raise DataError("cannot render an empty table")
    for row in rows:
        if len(row) != len(headers):
            raise DataError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: list[str],
    values: list[float] | np.ndarray,
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal ASCII bar chart, scaled to the maximum value."""
    values = np.asarray(values, dtype=float)
    if len(labels) != len(values):
        raise DataError("labels and values must be aligned")
    if len(values) == 0:
        raise DataError("cannot render an empty bar chart")
    finite = values[np.isfinite(values)]
    peak = finite.max() if finite.size and finite.max() > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if not np.isfinite(value):
            lines.append(f"{label.ljust(label_width)} | (no data)")
            continue
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def render_cdf(
    values: np.ndarray,
    title: str | None = None,
    n_points: int = 11,
    value_format: str = "{:.3f}",
) -> str:
    """Textual CDF summary: value at evenly spaced probability levels."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise DataError("cannot summarize an empty sample")
    lines = [title] if title else []
    for q in np.linspace(0.0, 1.0, n_points):
        lines.append(f"  p{q * 100:5.1f}: " + value_format.format(np.quantile(values, q)))
    return "\n".join(lines)
