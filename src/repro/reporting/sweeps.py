"""Multi-seed robustness sweeps over the headline conclusions.

Everything the paper measures is one realization of a stochastic
process; conclusions drawn from a single dataset (as the paper
necessarily did) carry sampling variance.  Because our substrate can be
re-simulated, this module quantifies that variance: it re-runs the
headline analyses over several seeds and reports the spread of each
metric — the reproduction analogue of error bars the paper could not
have.
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..config import SimulationConfig
from ..datacenter.builder import FleetConfig
from ..decisions.availability import AvailabilitySla
from ..decisions.climate import climate_group_rates, discover_climate_thresholds
from ..decisions.sku_ranking import compare_skus
from ..decisions.spares import SpareProvisioner
from ..errors import DataError, ReproError
from ..failures.engine import SimulationResult


@dataclass(frozen=True)
class MetricSummary:
    """Distribution of one headline metric across seeds.

    Attributes:
        name: metric label.
        values: one value per completed seed (NaN = not computable).
        paper_value: the paper's reported number, when it has one.
    """

    name: str
    values: np.ndarray
    paper_value: float | None = None

    @property
    def mean(self) -> float:
        """Mean over computable seeds (NaN if none)."""
        if self.n_computable == 0:
            return float("nan")
        return float(np.nanmean(self.values))

    @property
    def spread(self) -> float:
        """Standard deviation over computable seeds (NaN if none)."""
        if self.n_computable == 0:
            return float("nan")
        return float(np.nanstd(self.values))

    @property
    def n_computable(self) -> int:
        """Seeds for which the metric could be computed."""
        return int(np.isfinite(self.values).sum())

    def render(self) -> str:
        """One summary line."""
        paper = f"  (paper: {self.paper_value:g})" if self.paper_value is not None else ""
        return (f"{self.name:38s} {self.mean:8.3f} ± {self.spread:.3f} "
                f"[n={self.n_computable}]{paper}")


# Metric extractors: name → (callable(result) -> float, paper value).
def _sf_sku_ratio(result: SimulationResult) -> float:
    return compare_skus(result).sf_ratio("S2", "S4", "mean")


def _mf_sku_ratio(result: SimulationResult) -> float:
    return compare_skus(result).mf_ratio("S2", "S4", "mean")


def _mf_overprovision_w6(result: SimulationResult) -> float:
    provisioner = SpareProvisioner(result, window_hours=24.0)
    return 100.0 * provisioner.multi_factor("W6", AvailabilitySla(1.0)).overprovision


def _sf_overprovision_w6(result: SimulationResult) -> float:
    provisioner = SpareProvisioner(result, window_hours=24.0)
    return 100.0 * provisioner.single_factor("W6", AvailabilitySla(1.0)).overprovision


def _dc1_temp_threshold(result: SimulationResult) -> float:
    found = discover_climate_thresholds(result, "DC1")
    if found.temp_threshold_f is None:
        raise DataError("no significant DC1 temperature split")
    return found.temp_threshold_f


def _dc1_hot_cool_ratio(result: SimulationResult) -> float:
    group = climate_group_rates(result, "DC1")
    return group.hot / group.cool


HEADLINE_METRICS: dict[str, tuple[Callable[[SimulationResult], float], float | None]] = {
    "Q2 SF S2/S4 average-rate ratio": (_sf_sku_ratio, 10.0),
    "Q2 MF S2/S4 average-rate ratio": (_mf_sku_ratio, 4.0),
    "Q1 SF over-provision W6@100% (%)": (_sf_overprovision_w6, None),
    "Q1 MF over-provision W6@100% (%)": (_mf_overprovision_w6, None),
    "Q3 DC1 temperature split (F)": (_dc1_temp_threshold, 78.0),
    "Q3 DC1 hot/cool disk-rate ratio": (_dc1_hot_cool_ratio, 1.5),
}


def _seed_config(seed: int, scale: float, n_days: int) -> SimulationConfig:
    return SimulationConfig(
        seed=seed, n_days=n_days,
        fleet=FleetConfig(scale=scale, observation_days=n_days),
    )


def _metrics_stage(
    metrics: dict[str, tuple[Callable[[SimulationResult], float], float | None]],
):
    """The ``sweep:metrics`` stage: every extractor over one run.

    Keyed by the extractors' qualified names plus this module's source
    fingerprint, so editing an extractor re-runs the metrics (but not
    the simulation) for every cached seed.
    """
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..pipeline import Stage

    def run(inputs: dict, ctx) -> dict[str, float]:
        result = inputs["simulate"]
        values: dict[str, float] = {}
        for name, (extractor, _) in metrics.items():
            try:
                values[name] = float(extractor(result))
            except ReproError:
                values[name] = float("nan")
        return values

    qualnames = {
        name: f"{extractor.__module__}.{extractor.__qualname__}"
        for name, (extractor, _) in metrics.items()
    }
    return Stage(
        "sweep:metrics", run,
        deps=("simulate",),
        fingerprint_inputs={"metrics": qualnames},
        code=("repro.reporting.sweeps",),
        codec="json",
    )


def _sweep_worker(
    seed: int,
    scale: float,
    n_days: int,
    metrics: dict[str, tuple[Callable[[SimulationResult], float], float | None]],
    cache_dir: str | None = None,
) -> dict[str, float]:
    """One seed's simulation and metric extraction (picklable for pools)."""
    from ..pipeline import ArtifactStore, Pipeline, simulate_stage

    config = _seed_config(seed, scale, n_days)
    store = ArtifactStore(cache_dir) if cache_dir else None
    pipeline = Pipeline(
        [simulate_stage(config), _metrics_stage(metrics)], store=store,
    )
    return pipeline.get("sweep:metrics")


def run_sweep(
    seeds: list[int],
    scale: float = 0.3,
    n_days: int = 540,
    metrics: dict[str, tuple[Callable[[SimulationResult], float], float | None]]
        | None = None,
    jobs: int | None = 1,
    cache_dir: str | None = None,
) -> list[MetricSummary]:
    """Re-run the headline analyses over several seeds.

    Metrics that a particular realization cannot support (e.g. no
    significant climate split) record NaN for that seed rather than
    failing the sweep.  ``jobs > 1`` distributes seeds over a process
    pool (each seed is independent); custom ``metrics`` must then be
    picklable, i.e. built from module-level extractor functions.  With
    ``cache_dir`` each seed becomes a small sub-DAG over a shared
    artifact store, so repeated sweeps (and the noise sweep, and
    ``repro report`` for the same config) reuse the simulate artifacts.
    """
    if not seeds:
        raise DataError("need at least one seed")
    metrics = metrics or HEADLINE_METRICS
    from ..parallel import map_seeds

    per_seed = map_seeds(
        functools.partial(_sweep_worker, scale=scale, n_days=n_days,
                          metrics=metrics, cache_dir=cache_dir),
        seeds, jobs=jobs,
    )
    collected = {name: [row[name] for row in per_seed] for name in metrics}
    return [
        MetricSummary(
            name=name,
            values=np.array(collected[name]),
            paper_value=metrics[name][1],
        )
        for name in metrics
    ]


def render_sweep(summaries: list[MetricSummary], seeds: list[int]) -> str:
    """Text report of a sweep."""
    lines = [f"Robustness sweep over seeds {seeds}:"]
    lines.extend(summary.render() for summary in summaries)
    return "\n".join(lines)


def _noise_sweep_worker(
    seed: int,
    scale: float,
    n_days: int,
    severities: tuple[float, ...],
    cache_dir: str | None,
) -> dict[float, dict[str, float]]:
    """One seed's degrade→clean→re-analyze chain (picklable for pools).

    Each seed is a sub-DAG: one simulate stage shared by one
    ``fielddata:sev=…`` payload stage per severity — the same stages the
    report's ``fielddata`` experiment resolves, so with a shared
    ``cache_dir`` the two drivers reuse each other's artifacts.
    (Severity 0's degrade→clean loop is bit-identical to analyzing the
    pristine run directly; see :mod:`repro.fielddata.robustness`.)
    """
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..pipeline import (
        ArtifactStore, Pipeline, fielddata_payload_stage, simulate_stage,
    )
    from .context import fielddata_stage

    config = _seed_config(seed, scale, n_days)
    store = ArtifactStore(cache_dir) if cache_dir else None
    stages = [simulate_stage(config)]
    stages.extend(fielddata_payload_stage(severity) for severity in severities)
    pipeline = Pipeline(stages, store=store)
    return {
        severity: pipeline.get(fielddata_stage(severity))["metrics"]
        for severity in severities
    }


def run_noise_sweep(
    seeds: list[int],
    severities: Sequence[float],
    scale: float = 0.3,
    n_days: int = 540,
    jobs: int | None = 1,
    cache_dir: str | None = None,
) -> dict[float, list[MetricSummary]]:
    """Noise-robustness sweep: seeds × corruption severities.

    For every seed, the run's field data is degraded through
    :func:`repro.fielddata.corruption.standard_pipeline` at each
    severity, cleaned, and re-analyzed; the result maps severity →
    per-metric summaries across seeds.  Severity 0 reproduces
    :func:`run_sweep`'s numbers exactly.
    """
    if not seeds:
        raise DataError("need at least one seed")
    severities = tuple(dict.fromkeys(float(level) for level in severities))
    for level in severities:
        if not 0.0 <= level <= 1.0:
            raise DataError(f"severity must be in [0, 1], got {level}")
    if not severities:
        raise DataError("need at least one severity level")
    from ..parallel import map_seeds

    per_seed = map_seeds(
        functools.partial(_noise_sweep_worker, scale=scale, n_days=n_days,
                          severities=severities, cache_dir=cache_dir),
        seeds, jobs=jobs,
    )
    return {
        severity: [
            MetricSummary(
                name=name,
                values=np.array([row[severity][name] for row in per_seed]),
                paper_value=paper_value,
            )
            for name, (_, paper_value) in HEADLINE_METRICS.items()
        ]
        for severity in severities
    }


def render_noise_sweep(
    by_severity: dict[float, list[MetricSummary]],
    seeds: list[int],
) -> str:
    """Text table of a noise sweep: metrics × severities, mean ± sd."""
    severities = sorted(by_severity)
    lines = [
        f"Noise-robustness sweep over seeds {seeds} "
        f"(mean ± sd across seeds, after cleaning):",
        f"{'metric':38s}" + "".join(f"  {'sev=' + format(s, '.2f'):>16s}"
                                    for s in severities),
    ]
    names = [summary.name for summary in by_severity[severities[0]]]
    for index, name in enumerate(names):
        cells = []
        for severity in severities:
            summary = by_severity[severity][index]
            cells.append(f"  {summary.mean:8.3f} ±{summary.spread:6.3f}")
        lines.append(f"{name:38s}" + "".join(cells))
    return "\n".join(lines)
