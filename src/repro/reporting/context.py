"""Shared analysis context: caches the expensive intermediate products.

Reproducing all 18 figures needs the same handful of derived datasets
(rack-day tables, μ matrices, provisioners) over and over; the context
builds each once per simulation run.
"""

from __future__ import annotations

from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from ..telemetry.aggregate import build_rack_day_table
from ..telemetry.table import Table


class AnalysisContext:
    """Caches derived datasets for one simulation run."""

    def __init__(self, result: SimulationResult):
        self.result = result
        self._all_table: Table | None = None
        self._hardware_table: Table | None = None
        self._disk_table: Table | None = None
        self._provisioners: dict[float, object] = {}
        self._component_provisioners: dict[float, object] = {}

    @property
    def all_failures(self) -> Table:
        """Rack-day table over all fault types (Figs 2-9, 16)."""
        if self._all_table is None:
            self._all_table = build_rack_day_table(self.result)
        return self._all_table

    @property
    def hardware_failures(self) -> Table:
        """Rack-day table over hardware faults, with μ columns (Q2)."""
        if self._hardware_table is None:
            self._hardware_table = build_rack_day_table(
                self.result, faults=list(HARDWARE_FAULTS), include_mu=True,
            )
        return self._hardware_table

    @property
    def disk_failures(self) -> Table:
        """Rack-day table over disk faults only (Figs 17-18)."""
        if self._disk_table is None:
            self._disk_table = build_rack_day_table(
                self.result, faults=[FaultType.DISK],
            )
        return self._disk_table

    def provisioner(self, window_hours: float = 24.0):
        """Cached :class:`~repro.decisions.spares.SpareProvisioner`."""
        from ..decisions.spares import SpareProvisioner

        if window_hours not in self._provisioners:
            self._provisioners[window_hours] = SpareProvisioner(
                self.result, window_hours=window_hours,
            )
        return self._provisioners[window_hours]

    def component_provisioner(self, window_hours: float = 24.0):
        """Cached :class:`~repro.decisions.component_spares.ComponentProvisioner`."""
        from ..decisions.component_spares import ComponentProvisioner

        if window_hours not in self._component_provisioners:
            self._component_provisioners[window_hours] = ComponentProvisioner(
                self.result, window_hours=window_hours,
            )
        return self._component_provisioners[window_hours]
