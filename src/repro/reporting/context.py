"""Shared analysis context: caches the expensive intermediate products.

Reproducing all 18 figures needs the same handful of derived datasets
(rack-day tables, μ matrices, provisioners) over and over; the context
builds each once per simulation run.

Since the pipeline refactor the context is also a *lazy view* over a
:class:`~repro.pipeline.core.Pipeline`: constructed with ``artifacts=``,
each derived dataset is first looked up as a pipeline stage (so it is
cached, content-keyed and provenance-tracked there) and only computed
locally when the pipeline does not carry that stage.  The stage-name
helpers below are the single naming convention shared by the context,
the experiment registry's declared dependencies and the pipeline's
stage catalogue — they live here, at the bottom of that import chain,
so every user imports them downward.
"""

from __future__ import annotations

from typing import Any

from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from ..telemetry.aggregate import build_rack_day_table
from ..telemetry.table import Table

#: Stage holding the :class:`SimulationResult` itself.
SIMULATE_STAGE = "simulate"

#: Stage holding the run's one-line summary text.
SUMMARY_STAGE = "summary"


def rack_day_stage(kind: str) -> str:
    """Stage name of a rack-day table: ``kind`` ∈ all/hardware/disk."""
    return f"rack_day:{kind}"


def provisioner_stage(window_hours: float) -> str:
    """Stage name of the server-level spare provisioner for a window."""
    return f"provisioner:{window_hours:g}h"


def component_provisioner_stage(window_hours: float) -> str:
    """Stage name of the component-level provisioner for a window."""
    return f"component_provisioner:{window_hours:g}h"


def fielddata_stage(severity: float) -> str:
    """Stage name of one field-data degradation payload."""
    return f"fielddata:sev={severity:g}"


def predict_stage(step: str) -> str:
    """Stage name of one failure-prediction step: features/train/score."""
    return f"predict:{step}"


def autonomics_stage(step: str) -> str:
    """Stage name of one closed-loop autonomics step (e.g. compare)."""
    return f"autonomics:{step}"


class AnalysisContext:
    """Caches derived datasets for one simulation run.

    Args:
        result: the simulation run under analysis.
        artifacts: optional pipeline (anything with ``has_stage(name)``
            and ``get(name)``) to source derived datasets from before
            computing them locally.
    """

    def __init__(self, result: SimulationResult, artifacts: Any = None):
        self.result = result
        self.artifacts = artifacts
        self._all_table: Table | None = None
        self._hardware_table: Table | None = None
        self._disk_table: Table | None = None
        self._provisioners: dict[float, object] = {}
        self._component_provisioners: dict[float, object] = {}

    def _from_artifacts(self, stage_name: str) -> Any:
        """The pipeline artifact for ``stage_name``, or None."""
        if self.artifacts is not None and self.artifacts.has_stage(stage_name):
            return self.artifacts.get(stage_name)
        return None

    @property
    def all_failures(self) -> Table:
        """Rack-day table over all fault types (Figs 2-9, 16)."""
        if self._all_table is None:
            table = self._from_artifacts(rack_day_stage("all"))
            if table is None:
                table = build_rack_day_table(self.result)
            self._all_table = table
        return self._all_table

    @property
    def hardware_failures(self) -> Table:
        """Rack-day table over hardware faults, with μ columns (Q2)."""
        if self._hardware_table is None:
            table = self._from_artifacts(rack_day_stage("hardware"))
            if table is None:
                table = build_rack_day_table(
                    self.result, faults=list(HARDWARE_FAULTS), include_mu=True,
                )
            self._hardware_table = table
        return self._hardware_table

    @property
    def disk_failures(self) -> Table:
        """Rack-day table over disk faults only (Figs 17-18)."""
        if self._disk_table is None:
            table = self._from_artifacts(rack_day_stage("disk"))
            if table is None:
                table = build_rack_day_table(
                    self.result, faults=[FaultType.DISK],
                )
            self._disk_table = table
        return self._disk_table

    def provisioner(self, window_hours: float = 24.0):
        """Cached :class:`~repro.decisions.spares.SpareProvisioner`."""
        if window_hours not in self._provisioners:
            built = self._from_artifacts(provisioner_stage(window_hours))
            if built is None:
                from ..decisions.spares import SpareProvisioner

                built = SpareProvisioner(self.result, window_hours=window_hours)
            self._provisioners[window_hours] = built
        return self._provisioners[window_hours]

    def component_provisioner(self, window_hours: float = 24.0):
        """Cached :class:`~repro.decisions.component_spares.ComponentProvisioner`."""
        if window_hours not in self._component_provisioners:
            built = self._from_artifacts(
                component_provisioner_stage(window_hours))
            if built is None:
                from ..decisions.component_spares import ComponentProvisioner

                built = ComponentProvisioner(
                    self.result, window_hours=window_hours,
                )
            self._component_provisioners[window_hours] = built
        return self._component_provisioners[window_hours]
