"""Reproductions of the paper's Tables I-IV."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decisions.availability import PAPER_SLAS, AvailabilitySla
from ..decisions.tco import TcoModel
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FAULT_CATEGORY, FAULT_CODE, FAULT_TYPES, FaultType
from ..telemetry.aggregate import fleet_schema
from .context import AnalysisContext
from .render import render_table

# Table II's row order (category, fault type).
TABLE_II_ROWS: tuple[FaultType, ...] = (
    FaultType.TIMEOUT, FaultType.DEPLOYMENT, FaultType.CRASH,
    FaultType.PXE_BOOT, FaultType.REBOOT,
    FaultType.DISK, FaultType.MEMORY, FaultType.POWER,
    FaultType.SERVER, FaultType.NETWORK,
    FaultType.OTHER,
)

# Paper-reported percentages for qualitative comparison.
PAPER_TABLE_II = {
    "DC1": {
        FaultType.TIMEOUT: 31.27, FaultType.DEPLOYMENT: 13.95,
        FaultType.CRASH: 2.89, FaultType.PXE_BOOT: 10.53,
        FaultType.REBOOT: 1.25, FaultType.DISK: 18.42,
        FaultType.MEMORY: 5.29, FaultType.POWER: 1.59,
        FaultType.SERVER: 2.84, FaultType.NETWORK: 2.52,
        FaultType.OTHER: 9.41,
    },
    "DC2": {
        FaultType.TIMEOUT: 38.84, FaultType.DEPLOYMENT: 14.56,
        FaultType.CRASH: 3.05, FaultType.PXE_BOOT: 13.81,
        FaultType.REBOOT: 0.19, FaultType.DISK: 11.23,
        FaultType.MEMORY: 1.85, FaultType.POWER: 3.83,
        FaultType.SERVER: 1.21, FaultType.NETWORK: 0.65,
        FaultType.OTHER: 10.77,
    },
}


def table_i(result: SimulationResult) -> str:
    """Table I: DC properties (packaging / availability / cooling)."""
    rows = []
    for dc in result.fleet.datacenters:
        spec = dc.spec
        rows.append([
            spec.name,
            spec.packaging.value,
            f"{spec.availability_nines} nines",
            spec.cooling.value,
        ])
    return render_table(
        ["Facility", "Packaging", "Design Availability", "Cooling"],
        rows, title="Table I: DC properties",
    )


@dataclass(frozen=True)
class TicketMix:
    """Per-DC ticket-type percentages (Table II)."""

    percentages: dict[str, dict[FaultType, float]]

    def category_share(self, dc: str, category_name: str) -> float:
        """Summed percentage of one top-level category in one DC."""
        if dc not in self.percentages:
            raise DataError(f"unknown DC {dc!r}")
        return sum(
            pct for fault, pct in self.percentages[dc].items()
            if FAULT_CATEGORY[fault].value == category_name
        )


def ticket_mix(result: SimulationResult) -> TicketMix:
    """Compute Table II's percentages from the run's ticket log.

    Batch events count as one filed RMA; false positives are included
    (Table II classifies all tickets — only the downstream analyses
    restrict to true positives).
    """
    arrays = result.fleet.arrays()
    log = result.tickets
    keep = log.batch_dedupe_mask()
    dc_of_ticket = arrays.dc_code[log.rack_index]
    percentages: dict[str, dict[FaultType, float]] = {}
    for dc_index, dc_name in enumerate(arrays.dc_names):
        mask = keep & (dc_of_ticket == dc_index)
        total = int(mask.sum())
        if total == 0:
            raise DataError(f"no tickets for {dc_name}")
        codes = log.fault_code[mask]
        percentages[dc_name] = {
            fault: 100.0 * float((codes == FAULT_CODE[fault]).sum()) / total
            for fault in FAULT_TYPES
        }
    return TicketMix(percentages=percentages)


def table_ii(result: SimulationResult, include_paper: bool = True) -> str:
    """Render Table II (measured vs paper percentages)."""
    mix = ticket_mix(result)
    dc_names = list(mix.percentages)
    headers = ["Category", "Failure Type"]
    for dc in dc_names:
        headers.append(f"{dc}%")
        if include_paper and dc in PAPER_TABLE_II:
            headers.append(f"{dc}% (paper)")
    rows = []
    for fault in TABLE_II_ROWS:
        row = [FAULT_CATEGORY[fault].value, fault.value]
        for dc in dc_names:
            row.append(f"{mix.percentages[dc][fault]:.2f}")
            if include_paper and dc in PAPER_TABLE_II:
                row.append(f"{PAPER_TABLE_II[dc][fault]:.2f}")
        rows.append(row)
    return render_table(headers, rows, title="Table II: Classification of failure tickets")


def table_iii(result: SimulationResult) -> str:
    """Table III: candidate features with types and observed ranges."""
    schema = fleet_schema(result)
    table = AnalysisContext(result).all_failures
    kind_letter = {"continuous": "C", "nominal": "N", "ordinal": "O"}
    rows = []
    for feature in schema:
        if feature.is_categorical:
            assert feature.categories is not None
            observed = np.unique(table.column(feature.name).astype(int))
            labels = [feature.categories[i] for i in observed[:6]]
            value_range = ", ".join(labels) + (", ..." if len(observed) > 6 else "")
        else:
            column = table.column(feature.name).astype(float)
            value_range = f"{column.min():.3g} - {column.max():.3g}"
        rows.append([
            feature.name,
            kind_letter[feature.kind.value],
            value_range,
            feature.description,
        ])
    return render_table(
        ["Feature", "Type", "Observed range", "Description"],
        rows, title="Table III: Candidate features",
    )


# Table IV reference values from the paper (relative TCO savings, %).
PAPER_TABLE_IV = {
    (0.90, "daily", "W1"): 0.52, (0.90, "daily", "W6"): 3.77,
    (0.95, "daily", "W1"): 2.60, (0.95, "daily", "W6"): 11.23,
    (1.00, "daily", "W1"): 14.60, (1.00, "daily", "W6"): 35.66,
    (0.90, "hourly", "W1"): 5.00, (0.90, "hourly", "W6"): 2.70,
    (0.95, "hourly", "W1"): 7.23, (0.95, "hourly", "W6"): 8.60,
    (1.00, "hourly", "W1"): 22.23, (1.00, "hourly", "W6"): 36.37,
}


@dataclass(frozen=True)
class TcoSavingsCell:
    """One Table IV cell: MF-over-SF TCO savings for one configuration."""

    sla_level: float
    granularity: str
    workload: str
    savings_percent: float
    sf_fraction: float
    mf_fraction: float


def table_iv_savings(
    context: AnalysisContext,
    workloads: tuple[str, ...] = ("W1", "W6"),
    tco: TcoModel | None = None,
) -> list[TcoSavingsCell]:
    """Compute Table IV: relative TCO savings of MF over SF."""
    tco = tco or TcoModel()
    cells = []
    daily_provisioner = context.provisioner(24.0)
    for granularity, window_hours in (("daily", 24.0), ("hourly", 1.0)):
        provisioner = context.provisioner(window_hours)
        for level in PAPER_SLAS:
            sla = AvailabilitySla(level)
            for workload in workloads:
                sf = provisioner.single_factor(workload, sla)
                if granularity == "hourly":
                    daily_plan = daily_provisioner.multi_factor(workload, sla)
                    mf = provisioner.multi_factor(
                        workload, sla, clusters_from=daily_plan,
                    )
                else:
                    mf = provisioner.multi_factor(workload, sla)
                savings = tco.relative_savings(
                    n_servers=10_000,
                    spare_fraction_baseline=sf.overprovision,
                    spare_fraction_improved=mf.overprovision,
                )
                cells.append(TcoSavingsCell(
                    sla_level=level,
                    granularity=granularity,
                    workload=workload,
                    savings_percent=100.0 * savings,
                    sf_fraction=sf.overprovision,
                    mf_fraction=mf.overprovision,
                ))
    return cells


def table_iv(context: AnalysisContext) -> str:
    """Render Table IV (measured vs paper savings)."""
    cells = table_iv_savings(context)
    by_key = {
        (cell.sla_level, cell.granularity, cell.workload): cell for cell in cells
    }
    rows = []
    for level in PAPER_SLAS:
        row = [f"{level * 100:g}%"]
        for granularity in ("daily", "hourly"):
            for workload in ("W1", "W6"):
                cell = by_key[(level, granularity, workload)]
                paper = PAPER_TABLE_IV.get((level, granularity, workload))
                row.append(f"{cell.savings_percent:.2f} (paper {paper:.2f})")
        rows.append(row)
    return render_table(
        ["SLA", "Daily-W1", "Daily-W6", "Hourly-W1", "Hourly-W6"],
        rows, title="Table IV: Relative savings in TCO by using MF over SF (%)",
    )
