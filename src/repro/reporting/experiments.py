"""Experiment registry: every table and figure, addressable by id.

Maps each of the paper's evaluation artifacts to the function that
regenerates it, so examples, tests and the benchmark harness can iterate
over the full set uniformly.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import DataError
from . import figures, tables
from .context import AnalysisContext


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact.

    Attributes:
        experiment_id: e.g. ``"table2"`` or ``"fig10"``.
        description: what the artifact shows.
        produce: callable mapping an AnalysisContext to a renderable
            result (a str, FigureSeries, or object with ``render()``).
    """

    experiment_id: str
    description: str
    produce: Callable[[AnalysisContext], object]

    def render(self, context: AnalysisContext) -> str:
        """Produce and render the artifact as text."""
        output = self.produce(context)
        if isinstance(output, str):
            return output
        render = getattr(output, "render", None)
        if callable(render):
            return render()
        raise DataError(f"{self.experiment_id}: result is not renderable")


def _fielddata_robustness(context: AnalysisContext) -> str:
    # Imported lazily: fielddata sits above reporting in the layering.
    from ..fielddata.robustness import fielddata_experiment

    return fielddata_experiment(context)


def _streaming(context: AnalysisContext) -> str:
    # Imported lazily: stream sits above reporting in the layering.
    from ..stream.experiment import streaming_experiment

    return streaming_experiment(context)


def _registry() -> list[Experiment]:
    return [
        Experiment("table1", "DC properties",
                   lambda ctx: tables.table_i(ctx.result)),
        Experiment("table2", "Classification of failure tickets",
                   lambda ctx: tables.table_ii(ctx.result)),
        Experiment("table3", "Candidate features",
                   lambda ctx: tables.table_iii(ctx.result)),
        Experiment("table4", "TCO savings of MF over SF",
                   tables.table_iv),
        Experiment("fig01", "Aggregate vs group requirement CDFs",
                   lambda ctx: figures.render_fig01(figures.fig01_cdf_concept(ctx))),
        Experiment("fig02", "Failure rate by DC region", figures.fig02_spatial),
        Experiment("fig03", "Failure rate by day of week", figures.fig03_day_of_week),
        Experiment("fig04", "Failure rate by month", figures.fig04_month),
        Experiment("fig05", "Failure rate by relative humidity", figures.fig05_humidity),
        Experiment("fig06", "Failure rate by workload", figures.fig06_workload),
        Experiment("fig07", "Failure rate by SKU", figures.fig07_sku),
        Experiment("fig08", "Failure rate by rack power rating", figures.fig08_power),
        Experiment("fig09", "Failure rate by equipment age", figures.fig09_age),
        Experiment("fig10", "Over-provisioning, daily",
                   lambda ctx: figures.fig10_overprovision(ctx, 24.0)),
        Experiment("fig11", "Per-cluster requirement CDFs (W1, W6)",
                   lambda ctx: "\n\n".join(
                       f"[{workload}]\n" + "\n".join(
                           f"  {name}: n={len(sample)}, max={sample.max():.1f}%"
                           for name, sample in
                           figures.fig11_cluster_cdfs(ctx, workload).items()
                       )
                       for workload in ("W1", "W6")
                   )),
        Experiment("fig12", "Over-provisioning, hourly",
                   lambda ctx: figures.fig10_overprovision(ctx, 1.0)),
        Experiment("fig13", "Component vs server-level spare cost",
                   figures.fig13_component_spares),
        Experiment("fig14", "SKU comparison, single factor",
                   lambda ctx: figures.render_fig14(figures.fig14_fig15_sku(ctx))),
        Experiment("fig15", "SKU comparison, multi factor",
                   lambda ctx: figures.render_fig15(figures.fig14_fig15_sku(ctx))),
        Experiment("fig16", "All failures vs temperature", figures.fig16_temperature_all),
        Experiment("fig17", "Disk failures vs temperature", figures.fig17_temperature_disk),
        Experiment("fig18", "Disk failures vs T/RH groups per DC", figures.fig18_climate_mf),
        Experiment("fielddata", "Headline metrics vs field-data corruption severity",
                   _fielddata_robustness),
        Experiment("streaming", "Online streaming vs batch: equivalence, "
                   "checkpoint/resume, live SLA triggers",
                   _streaming),
    ]


EXPERIMENTS: dict[str, Experiment] = {
    experiment.experiment_id: experiment for experiment in _registry()
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises DataError for unknown ids)."""
    if experiment_id not in EXPERIMENTS:
        raise DataError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_all(context: AnalysisContext) -> dict[str, str]:
    """Render every registered experiment (expensive at paper scale)."""
    return {
        experiment_id: experiment.render(context)
        for experiment_id, experiment in EXPERIMENTS.items()
    }
