"""Experiment registry: every table and figure, addressable by id.

Maps each of the paper's evaluation artifacts to the function that
regenerates it, so examples, tests and the benchmark harness can iterate
over the full set uniformly.  Each entry also *declares* which pipeline
stages it reads (``stages``) and which source modules its rendering
depends on (``code``); the pipeline builds per-experiment render stages
from these declarations, and ``repro report --jobs N`` groups
experiments with identical stage signatures onto the same worker so a
shared intermediate (e.g. the all-faults rack-day table) is built once.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import DataError
from . import figures, tables
from .context import (
    AnalysisContext,
    autonomics_stage,
    component_provisioner_stage,
    fielddata_stage,
    predict_stage,
    provisioner_stage,
    rack_day_stage,
)

#: Severities of the registered ``fielddata`` experiment's payload
#: stages.  Must match ``repro.fielddata.robustness.DEFAULT_SEVERITIES``
#: (cross-checked by tests); spelled literally here because reporting
#: must not import the higher fielddata layer at module scope.
FIELDDATA_SEVERITIES = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact.

    Attributes:
        experiment_id: e.g. ``"table2"`` or ``"fig10"``.
        description: what the artifact shows.
        produce: callable mapping an AnalysisContext to a renderable
            result (a str, FigureSeries, or object with ``render()``).
        stages: pipeline stages (beyond the simulation itself) whose
            artifacts the experiment reads via the context.
        code: dotted module names whose source content should
            invalidate this experiment's cached rendering.
    """

    experiment_id: str
    description: str
    produce: Callable[[AnalysisContext], object]
    stages: tuple[str, ...] = ()
    code: tuple[str, ...] = ()

    def render(self, context: AnalysisContext) -> str:
        """Produce and render the artifact as text."""
        output = self.produce(context)
        if isinstance(output, str):
            return output
        render = getattr(output, "render", None)
        if callable(render):
            return render()
        raise DataError(f"{self.experiment_id}: result is not renderable")


def _fielddata_robustness(context: AnalysisContext) -> str:
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..fielddata.robustness import fielddata_experiment

    return fielddata_experiment(context)


def _streaming(context: AnalysisContext) -> str:
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..stream.experiment import streaming_experiment

    return streaming_experiment(context)


def _predict(context: AnalysisContext) -> str:
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..predict.experiment import predict_experiment

    return predict_experiment(context)


def _autonomics(context: AnalysisContext) -> str:
    # Function-level import of a higher layer, allowed by the explicit
    # exception list in staticcheck.contract.LAYERING_EXCEPTIONS.
    from ..autonomics.experiment import autonomics_experiment

    return autonomics_experiment(context)


_TABLES = ("repro.reporting.tables",)
_FIGURES = ("repro.reporting.figures",)
_RACK_DAY_ALL = (rack_day_stage("all"),)


def _registry() -> list[Experiment]:
    return [
        Experiment("table1", "DC properties",
                   lambda ctx: tables.table_i(ctx.result),
                   code=_TABLES),
        Experiment("table2", "Classification of failure tickets",
                   lambda ctx: tables.table_ii(ctx.result),
                   code=_TABLES),
        Experiment("table3", "Candidate features",
                   lambda ctx: tables.table_iii(ctx.result),
                   code=_TABLES),
        Experiment("table4", "TCO savings of MF over SF",
                   tables.table_iv,
                   stages=(provisioner_stage(24.0), provisioner_stage(1.0)),
                   code=_TABLES),
        Experiment("fig01", "Aggregate vs group requirement CDFs",
                   lambda ctx: figures.render_fig01(figures.fig01_cdf_concept(ctx)),
                   stages=(provisioner_stage(24.0),),
                   code=_FIGURES),
        Experiment("fig02", "Failure rate by DC region", figures.fig02_spatial,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig03", "Failure rate by day of week", figures.fig03_day_of_week,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig04", "Failure rate by month", figures.fig04_month,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig05", "Failure rate by relative humidity", figures.fig05_humidity,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig06", "Failure rate by workload", figures.fig06_workload,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig07", "Failure rate by SKU", figures.fig07_sku,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig08", "Failure rate by rack power rating", figures.fig08_power,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig09", "Failure rate by equipment age", figures.fig09_age,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig10", "Over-provisioning, daily",
                   lambda ctx: figures.fig10_overprovision(ctx, 24.0),
                   stages=(provisioner_stage(24.0),),
                   code=_FIGURES),
        Experiment("fig11", "Per-cluster requirement CDFs (W1, W6)",
                   lambda ctx: "\n\n".join(
                       f"[{workload}]\n" + "\n".join(
                           f"  {name}: n={len(sample)}, max={sample.max():.1f}%"
                           for name, sample in
                           figures.fig11_cluster_cdfs(ctx, workload).items()
                       )
                       for workload in ("W1", "W6")
                   ),
                   stages=(provisioner_stage(24.0),),
                   code=_FIGURES),
        Experiment("fig12", "Over-provisioning, hourly",
                   lambda ctx: figures.fig10_overprovision(ctx, 1.0),
                   stages=(provisioner_stage(1.0), provisioner_stage(24.0)),
                   code=_FIGURES),
        Experiment("fig13", "Component vs server-level spare cost",
                   figures.fig13_component_spares,
                   stages=(component_provisioner_stage(24.0),),
                   code=_FIGURES),
        Experiment("fig14", "SKU comparison, single factor",
                   lambda ctx: figures.render_fig14(figures.fig14_fig15_sku(ctx)),
                   stages=(rack_day_stage("hardware"),),
                   code=_FIGURES),
        Experiment("fig15", "SKU comparison, multi factor",
                   lambda ctx: figures.render_fig15(figures.fig14_fig15_sku(ctx)),
                   stages=(rack_day_stage("hardware"),),
                   code=_FIGURES),
        Experiment("fig16", "All failures vs temperature", figures.fig16_temperature_all,
                   stages=_RACK_DAY_ALL, code=_FIGURES),
        Experiment("fig17", "Disk failures vs temperature", figures.fig17_temperature_disk,
                   stages=(rack_day_stage("disk"),), code=_FIGURES),
        Experiment("fig18", "Disk failures vs T/RH groups per DC", figures.fig18_climate_mf,
                   stages=(rack_day_stage("disk"),), code=_FIGURES),
        Experiment("fielddata", "Headline metrics vs field-data corruption severity",
                   _fielddata_robustness,
                   stages=tuple(fielddata_stage(s) for s in FIELDDATA_SEVERITIES),
                   code=("repro.fielddata.robustness",)),
        Experiment("streaming", "Online streaming vs batch: equivalence, "
                   "checkpoint/resume, live SLA triggers",
                   _streaming,
                   code=("repro.stream.experiment",)),
        Experiment("predict", "Online failure prediction scored against "
                   "planted ground truth, with proactive Q1",
                   _predict,
                   stages=tuple(
                       predict_stage(s) for s in ("features", "train", "score")
                   ),
                   code=("repro.predict.experiment",)),
        Experiment("autonomics", "Closed-loop policy shootout: reactive "
                   "vs predictive controllers on one seed",
                   _autonomics,
                   stages=(autonomics_stage("compare"),),
                   code=("repro.autonomics.experiment",)),
    ]


EXPERIMENTS: dict[str, Experiment] = {
    experiment.experiment_id: experiment for experiment in _registry()
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises DataError for unknown ids)."""
    if experiment_id not in EXPERIMENTS:
        raise DataError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_all(context: AnalysisContext) -> dict[str, str]:
    """Render every registered experiment (expensive at paper scale)."""
    return {
        experiment_id: experiment.render(context)
        for experiment_id, experiment in EXPERIMENTS.items()
    }
